#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

# The GitHub workflow runs fmt+clippy in a dedicated lint job; its
# test+golden job sets CI_SKIP_LINT=1 so the lint pass isn't duplicated.
# Local runs (no env) always lint.
if [ -n "${CI_SKIP_LINT:-}" ]; then
  echo "==> lint skipped (CI_SKIP_LINT set; the lint job covers fmt+clippy)"
else
  echo "==> cargo fmt --check"
  cargo fmt --all -- --check

  echo "==> cargo clippy (deny warnings)"
  cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
# Compile (but do not execute) the criterion benches and the hotpath
# harness so bench-only code can never rot out of sync with the library.
cargo bench --workspace --no-run

echo "==> allocation-regression gate"
# Fast steady-state allocation budgets (single-test files so the global
# counting allocator sees no cross-thread noise). These fail loudly if a
# per-event allocation sneaks back into the simulator or scheduler hot path.
# For the full throughput/peak-queue record, run ./bench_hotpath.sh.
cargo test -p simcore --release --test alloc_budget -- --quiet
cargo test -p altocumulus --release --test alloc_budget -- --quiet

echo "==> golden figure gate (quick configs)"
# The --quick figure sweeps are small enough for CI and their stdout is
# pinned by sha256 fixtures: any determinism break (event ordering, RNG
# stream leakage, fault-layer perturbation of healthy runs) fails here
# before a reviewer ever diffs numbers. To bless an intentional change:
#   cargo run -q -p bench --release --bin <fig> -- --quick \
#     | sha256sum | awk '{print $1}' > ci/golden/<fig>_quick.sha256
for pair in fig10_comparison:fig10_quick fig13a_scalability:fig13a_quick \
            rack_sweep:rack_sweep_quick; do
  bin=${pair%%:*} name=${pair##*:}
  cargo run -q -p bench --release --bin "$bin" -- --quick > "target/$name.txt"
  got=$(sha256sum < "target/$name.txt" | awk '{print $1}')
  want=$(cat "ci/golden/$name.sha256")
  if [ "$got" != "$want" ]; then
    echo "GOLDEN MISMATCH: $bin --quick stdout digest $got != pinned $want" >&2
    echo "(see target/$name.txt; regenerate via scripts/regen_golden.sh if intentional)" >&2
    # Turn "the digest changed" into "which event changed": replay the
    # golden run trace for this figure (if one exists) so the first
    # divergent (time, seq) event and its surrounding window land in the
    # log and in target/replay-diff/ for the CI artifact upload.
    if [ -f "ci/golden/$name.trace.jsonl" ]; then
      mkdir -p target/replay-diff
      echo "==> replaying ci/golden/$name.trace.jsonl to locate the divergence" >&2
      cargo run -q -p bench --release --bin replay -- "ci/golden/$name.trace.jsonl" \
        > "target/replay-diff/$name.diff.txt" || true
      cat "target/replay-diff/$name.diff.txt" >&2
    fi
    exit 1
  fi
done

echo "==> golden run-trace gate (record/replay contract)"
# The TRACE/1.0 run artifacts pin the simulation at the event level, not
# just the formatted stdout: provenance (seed, config and workload
# fingerprints, per-stream RNG draw counts) plus a rolling digest of every
# (time, seq, kind, group, payload) event record. First prove the blessed
# goldens are intact (hash pin + schema version), then that a fresh
# recording is byte-identical, then that the golden replays divergence-free
# against a full-granularity re-execution.
./scripts/check_golden_traces.sh
for pair in fig10_comparison:fig10_quick fault_sweep:fault_sweep_quick \
            rack_sweep:rack_sweep_quick; do
  bin=${pair%%:*} name=${pair##*:}
  cargo run -q -p bench --release --bin "$bin" -- --quick \
    --record-out="target/$name.trace.jsonl" > /dev/null 2> /dev/null
  if ! cmp "ci/golden/$name.trace.jsonl" "target/$name.trace.jsonl"; then
    echo "GOLDEN TRACE MISMATCH: fresh $bin --quick recording differs from blessed" >&2
    mkdir -p target/replay-diff
    cargo run -q -p bench --release --bin replay -- "ci/golden/$name.trace.jsonl" \
      > "target/replay-diff/$name.diff.txt" || true
    cat "target/replay-diff/$name.diff.txt" >&2
    exit 1
  fi
done
cargo run -q -p bench --release --bin replay -- ci/golden/fig10_quick.trace.jsonl
cargo run -q -p bench --release --bin replay -- ci/golden/fault_sweep_quick.trace.jsonl
cargo run -q -p bench --release --bin replay -- ci/golden/rack_sweep_quick.trace.jsonl
# The contract's own test suites (root `cargo test -q` covers only the
# root package): the simcore writer/parser/differ unit tests, then the
# property suite — engine-invariant round-trips, corruption caught at the
# exact index, the AC_TRACE_PERTURB seeded-mutation demo.
cargo test -q -p simcore --release --lib trace::
cargo test -q -p altocumulus --release --test prop_replay

echo "==> worker-plane elision gates"
# The root `cargo test -q` above only covers the root package, so the
# differential proptests (Elided vs EventDriven oracle, fault-downgrade
# identity) are gated explicitly; the d-FCFS scheduler carries its own
# elision and differential tests in-crate.
cargo test -q -p altocumulus --release --test prop_workerplane
cargo test -q -p schedulers --release dfcfs
# Engine smoke at the stdout level: the per-event oracle must reproduce the
# golden fig10 byte stream the elided default just matched above.
WORKER_PLANE=event_driven cargo run -q -p bench --release --bin fig10_comparison -- --quick \
  > target/fig10_wp_event_driven.txt
cmp target/fig10_quick.txt target/fig10_wp_event_driven.txt
rm -f target/fig10_wp_event_driven.txt

echo "==> fault-injection smoke (determinism)"
# A faulted sweep must be byte-identical across invocations *and* across
# sweep-executor thread counts — faults are part of the deterministic
# simulation, not noise.
cargo run -q -p bench --release --bin fault_sweep -- --quick > target/fault_sweep_quick.txt
cargo run -q -p bench --release --bin fault_sweep -- --quick > target/fault_sweep_b.txt
SWEEP_THREADS=4 cargo run -q -p bench --release --bin fault_sweep -- --quick > target/fault_sweep_c.txt
cmp target/fault_sweep_quick.txt target/fault_sweep_b.txt
cmp target/fault_sweep_quick.txt target/fault_sweep_c.txt
rm -f target/fault_sweep_b.txt target/fault_sweep_c.txt

echo "==> rack determinism smoke (repeats + SWEEP_THREADS)"
# The rack tier's contract: byte-identical across repeated runs and across
# sweep-executor thread counts. target/rack_sweep_quick.txt is the output
# the golden gate pinned above; the quick sweep's death cell runs every
# server under a non-empty per-server fault plan, so faulted-rack routing
# and whole-server takeover are inside the byte-identity check too.
cargo run -q -p bench --release --bin rack_sweep -- --quick > target/rack_sweep_b.txt
SWEEP_THREADS=4 cargo run -q -p bench --release --bin rack_sweep -- --quick \
  > target/rack_sweep_c.txt
cmp target/rack_sweep_quick.txt target/rack_sweep_b.txt
cmp target/rack_sweep_quick.txt target/rack_sweep_c.txt
rm -f target/rack_sweep_b.txt target/rack_sweep_c.txt

echo "==> parallel-engine determinism (PAR_THREADS=4 vs serial)"
# The quiet-window parallel engine must match the serial engine byte for
# byte: the same stdout the golden gate pinned above, reproduced with the
# mesh partitioned across 4 worker threads. The faulted sweep additionally
# proves the downgrade guard (non-empty fault plans run serially) keeps
# byte-identity under a PAR_THREADS request.
PAR_THREADS=4 cargo run -q -p bench --release --bin fig10_comparison -- --quick \
  > target/fig10_par.txt
cmp target/fig10_quick.txt target/fig10_par.txt
PAR_THREADS=4 cargo run -q -p bench --release --bin fault_sweep -- --quick \
  > target/fault_sweep_par.txt
cmp target/fault_sweep_quick.txt target/fault_sweep_par.txt
rm -f target/fig10_par.txt target/fault_sweep_par.txt

echo "==> telemetry-export smoke"
# Export a real trace from the hotpath harness and lint it: the Chrome-trace
# JSON must parse with well-nested per-request spans, and every probe JSONL
# line must match the schema. The third argument is the fresh TRACE/1.0 run
# artifact from the golden gate above, schema-validated by the same linter.
# Guards the exporters end-to-end, not just the in-process recorders.
SMOKE=target/telemetry-smoke
mkdir -p "$SMOKE"
cargo run -q -p bench --release --bin hotpath -- --trace-out "$SMOKE/trace.json" \
  > /dev/null 2> /dev/null
cp target/fig10_quick.trace.jsonl "$SMOKE/run.trace.jsonl"
cargo run -q -p bench --release --bin trace_lint -- \
  "$SMOKE/trace.json" "$SMOKE/trace.probes.jsonl" "$SMOKE/run.trace.jsonl"

echo "CI OK"
