#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI OK"
