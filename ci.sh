#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
# Compile (but do not execute) the criterion benches and the hotpath
# harness so bench-only code can never rot out of sync with the library.
cargo bench --workspace --no-run

echo "==> allocation-regression gate"
# Fast steady-state allocation budgets (single-test files so the global
# counting allocator sees no cross-thread noise). These fail loudly if a
# per-event allocation sneaks back into the simulator or scheduler hot path.
# For the full throughput/peak-queue record, run ./bench_hotpath.sh.
cargo test -p simcore --release --test alloc_budget -- --quiet
cargo test -p altocumulus --release --test alloc_budget -- --quiet

echo "==> telemetry-export smoke"
# Export a real trace from the hotpath harness and lint it: the Chrome-trace
# JSON must parse with well-nested per-request spans, and every probe JSONL
# line must match the schema. Guards the exporters end-to-end, not just the
# in-process recorder.
SMOKE=target/telemetry-smoke
mkdir -p "$SMOKE"
cargo run -q -p bench --release --bin hotpath -- --trace-out "$SMOKE/trace.json" \
  > /dev/null 2> /dev/null
cargo run -q -p bench --release --bin trace_lint -- \
  "$SMOKE/trace.json" "$SMOKE/trace.probes.jsonl"

echo "CI OK"
