#!/usr/bin/env bash
# Warn-only bench drift check: re-measure the hotpath harness and compare
# wall times against the committed BENCH_hotpath.json baseline. A
# configuration more than 25% slower annotates the GitHub job summary (and
# prints a ::warning:: line) but never fails the job — CI runners are too
# noisy for a hard perf gate; the committed baseline is refreshed
# deliberately via ./bench_hotpath.sh.
#
# PAR_THREADS rows are compared only when both the baseline row and the
# fresh run were measured with real hardware parallelism (hw_threads > 1):
# on a single hardware thread the quiet-window engine rows measure engine
# overhead, not speedup, and drifting overhead against a parallel baseline
# (or vice versa) is noise by construction.
#
# Usage: ./scripts/bench_drift.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin hotpath
FRESH=target/bench_drift_fresh.json
./target/release/hotpath > "$FRESH"

python3 - "$FRESH" BENCH_hotpath.json <<'PY'
import json
import os
import sys

fresh = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
KEYS = [
    "altocumulus_int_4x16",
    "altocumulus_int_16x16_elided",
    "altocumulus_int_16x16_elided_par4",
    "altocumulus_int_32x32_elided",
    "altocumulus_int_32x32_elided_par4",
    "altocumulus_int_16x16_wp_event_driven",
    "altocumulus_int_32x32_wp_event_driven",
    "altocumulus_int_16x16_event_driven",
    "rack_4x16_ac",
    "nebula_jbsq",
]
THRESHOLD = 1.25


def hw_threads(doc, row):
    # Per-row hw_threads (preferred) with the run-global value as fallback
    # for baselines written before rows carried it.
    return row.get("hw_threads", doc.get("hw_threads", 1))


rows, drifted = [], []
for k in KEYS:
    if k not in base or k not in fresh:
        # Missing-key guard: a key silently dropping out of either side is
        # itself drift (a renamed row or a stale baseline) — warn, never
        # fail, like every other drift here.
        where = "baseline" if k not in base else "fresh run"
        rows.append(f"| {k} | - | - | missing from {where} |")
        drifted.append(f"{k}: missing from {where} (refresh BENCH_hotpath.json)")
        continue
    if "_par" in k:
        hw = min(hw_threads(base, base[k]), hw_threads(fresh, fresh[k]))
        if hw <= 1:
            rows.append(f"| {k} | - | - | skipped (hw_threads={hw}) |")
            continue
    b, f = base[k]["wall_ms"], fresh[k]["wall_ms"]
    ratio = f / b
    mark = " **drift**" if ratio > THRESHOLD else ""
    rows.append(f"| {k} | {b:.2f} | {f:.2f} | {(ratio - 1) * 100:+.1f}%{mark} |")
    if ratio > THRESHOLD:
        drifted.append(f"{k}: {b:.2f} ms -> {f:.2f} ms ({(ratio - 1) * 100:+.1f}%)")
    # Per-event rate regression: wall time can drift for benign reasons
    # (event counts change when engines are redesigned), but events/sec
    # dropping >25% on the same key means the per-event hot path got
    # slower. Rows without a rate (e.g. nebula_jbsq) are skipped.
    be, fe = base[k].get("events_per_sec"), fresh[k].get("events_per_sec")
    if be and fe and be / fe > THRESHOLD:
        drifted.append(
            f"{k}: events/sec {be:.0f} -> {fe:.0f} ({(fe / be - 1) * 100:+.1f}%)"
        )

table = "\n".join(
    [
        "### Hotpath bench drift (warn-only, threshold +25%)",
        "",
        "| config | baseline ms | fresh ms | delta |",
        "|---|---|---|---|",
    ]
    + rows
)
print(table)

if drifted:
    for d in drifted:
        print(f"::warning title=Hotpath bench drift::{d}")
summary = os.environ.get("GITHUB_STEP_SUMMARY")
if summary and drifted:
    with open(summary, "a") as f:
        f.write(table + "\n")
PY
exit 0
