#!/usr/bin/env bash
# Guard for the golden run traces: before any gate *uses* a golden
# artifact, prove it is the one that was blessed (sha256 pin) and that it
# is schema-valid at the supported TRACE version. A tampered, truncated, or
# stale-version golden must fail here with a clear message, never surface
# as a confusing replay divergence.
#
# Usage: ./scripts/check_golden_traces.sh
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for name in fig10_quick fault_sweep_quick rack_sweep_quick; do
  trace="ci/golden/$name.trace.jsonl"
  pin="ci/golden/$name.trace.sha256"
  if [ ! -f "$trace" ] || [ ! -f "$pin" ]; then
    echo "GOLDEN TRACE MISSING: $trace or $pin (run scripts/regen_golden.sh)" >&2
    status=1
    continue
  fi
  got=$(sha256sum < "$trace" | awk '{print $1}')
  want=$(cat "$pin")
  if [ "$got" != "$want" ]; then
    echo "GOLDEN TRACE HASH MISMATCH: $trace digest $got != pinned $want" >&2
    echo "(the artifact was modified without re-blessing; run scripts/regen_golden.sh)" >&2
    status=1
    continue
  fi
  if ! head -1 "$trace" | grep -q '"artifact":"TRACE/1.0"'; then
    echo "GOLDEN TRACE VERSION MISMATCH: $trace is not TRACE/1.0" >&2
    echo "(re-bless with scripts/regen_golden.sh after a schema migration)" >&2
    status=1
    continue
  fi
  echo "$trace: hash + version OK"
done
exit "$status"
