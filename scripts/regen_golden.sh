#!/usr/bin/env bash
# Regenerates every golden fixture under ci/golden/ from the current build:
#
#   - <fig>_quick.sha256            pinned sha256 of the --quick stdout
#   - <name>_quick.trace.jsonl      TRACE/1.0 run artifact (summary granularity)
#   - <name>_quick.trace.sha256     pinned sha256 of that artifact
#   - README.md                     provenance of the blessing build
#
# Run this only to bless an intentional behavior change, then commit the
# diff under ci/golden/ together with the change that caused it. The
# artifacts are timestamp-free and byte-deterministic, so an unchanged
# simulator regenerates identical files.
#
# Usage: ./scripts/regen_golden.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> release build"
cargo build --release -p bench

echo "==> stdout digests"
for pair in fig10_comparison:fig10_quick fig13a_scalability:fig13a_quick \
            rack_sweep:rack_sweep_quick; do
  bin=${pair%%:*} name=${pair##*:}
  cargo run -q -p bench --release --bin "$bin" -- --quick \
    | sha256sum | awk '{print $1}' > "ci/golden/$name.sha256"
  echo "    ci/golden/$name.sha256 = $(cat "ci/golden/$name.sha256")"
done

echo "==> golden run traces (summary granularity)"
for pair in fig10_comparison:fig10_quick fault_sweep:fault_sweep_quick \
            rack_sweep:rack_sweep_quick; do
  bin=${pair%%:*} name=${pair##*:}
  cargo run -q -p bench --release --bin "$bin" -- --quick \
    --record-out="ci/golden/$name.trace.jsonl" > /dev/null 2> /dev/null
  sha256sum < "ci/golden/$name.trace.jsonl" | awk '{print $1}' \
    > "ci/golden/$name.trace.sha256"
  echo "    ci/golden/$name.trace.jsonl ($(wc -c < "ci/golden/$name.trace.jsonl") bytes)"
  echo "    ci/golden/$name.trace.sha256 = $(cat "ci/golden/$name.trace.sha256")"
done

echo "==> verify fresh goldens replay clean"
for name in fig10_quick fault_sweep_quick rack_sweep_quick; do
  cargo run -q -p bench --release --bin replay -- "ci/golden/$name.trace.jsonl" \
    > /dev/null
done

echo "==> provenance"
{
  echo "# Golden fixtures"
  echo
  echo "Blessed by \`scripts/regen_golden.sh\`; regenerate only to record an"
  echo "*intentional* behavior change, and commit the diff together with the"
  echo "change that caused it."
  echo
  echo "- \`<fig>_quick.sha256\` — sha256 of the figure binary's \`--quick\`"
  echo "  stdout, enforced by the golden figure gate in \`ci.sh\`."
  echo "- \`<name>_quick.trace.jsonl\` — \`TRACE/1.0\` run artifact recorded"
  echo "  with \`--record-out\` at summary granularity: run provenance (seed,"
  echo "  config/workload fingerprints, engine, RNG draw counts) plus a"
  echo "  rolling event digest checkpointed every 512 events. When the"
  echo "  stdout gate fails, \`ci.sh\` replays this artifact to turn \"the"
  echo "  digest changed\" into the first divergent \`(time, seq)\` event."
  echo "- \`<name>_quick.trace.sha256\` — sha256 of that artifact, checked by"
  echo "  \`scripts/check_golden_traces.sh\` before any replay uses it."
  echo
  echo "Pinned stdout digests: \`fig10_quick\`, \`fig13a_quick\`,"
  echo "\`rack_sweep_quick\`. Pinned run traces: \`fig10_quick\`,"
  echo "\`fault_sweep_quick\`, \`rack_sweep_quick\` — the rack trace records"
  echo "one run section per AC server sub-run, each carrying its"
  echo "\`rack:<servers>x<cores>:<system>/fp<fingerprint>/srv<i>\` topology"
  echo "string, so a replay against a drifted rack shape fails at"
  echo "provenance before any event comparison."
  echo
  echo "## Provenance of the current blessing"
  echo
  echo "- toolchain: $(rustc --version)"
  echo "- commit: $(git rev-parse --short HEAD 2>/dev/null || echo 'uncommitted')"
  echo "- host: $(uname -sm)"
} > ci/golden/README.md

echo "golden fixtures regenerated"
