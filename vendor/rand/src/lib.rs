//! Offline vendored subset of the `rand` 0.9 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the surface the workspace uses: the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through the
//! splitmix64 finalizer — statistically solid and fully deterministic, which
//! is all the simulations require (they never depend on upstream `rand`'s
//! exact stream, only on seed-reproducibility).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`], producing values of type `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Uniform draw in `[0, span)` (`span == 0` means the full 64-bit domain)
/// using Lemire's widening-multiply method with rejection for exactness.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Rejection zone keeps the draw exactly uniform.
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone || zone == 0 {
            return (m >> 64) as u64;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Seeded from a `u64` through repeated splitmix64 steps, so nearby
    /// seeds yield decorrelated streams.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.random::<u64>(), b.random::<u64>());
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro forbids the all-zero state; splitmix64 of any seed
            // cannot produce four zero words, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        let zs: Vec<u64> = (0..32).map(|_| c.random()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let z = r.random_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&z));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(4);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            match r.random_range(0u8..=1) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn fill_is_deterministic_and_varied() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut ba = [0u8; 37];
        let mut bb = [0u8; 37];
        a.fill(&mut ba[..]);
        b.fill(&mut bb[..]);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != ba[0]), "bytes all identical");
    }

    #[test]
    fn random_bool_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "hits={hits}");
    }
}
