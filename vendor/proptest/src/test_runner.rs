//! The deterministic case runner behind [`crate::proptest!`].

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies while generating a case.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// Underlying generator (public so strategies can draw from it).
    pub rng: StdRng,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assume!` failed; the case is discarded, not failed.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Attaches the generated input's debug rendering to a failure.
    pub fn with_input(self, input: &str) -> Self {
        match self {
            TestCaseError::Reject => TestCaseError::Reject,
            TestCaseError::Fail(msg) => TestCaseError::Fail(format!("{msg}\n    input: {input}")),
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Runs `case` until `config.cases` successes, a failure, or the rejection
/// budget is exhausted. Seeding is deterministic per test name so failures
/// reproduce; set `PROPTEST_SEED` to explore a different stream or
/// `PROPTEST_CASES` to override the case count globally.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = env_u64("PROPTEST_CASES")
        .map(|c| c.max(1) as u32)
        .unwrap_or(config.cases);
    let seed = env_u64("PROPTEST_SEED").unwrap_or_else(|| {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        h.finish()
    });
    let mut rng = TestRng::from_seed(seed);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let reject_budget = cases as u64 * 64;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > reject_budget {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected} rejects for {passed}/{cases} cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed after {passed} passing case(s) \
                     (seed {seed}):\n    {msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run_cases(ProptestConfig::with_cases(17), "counting", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn rejections_do_not_count() {
        let mut total = 0u32;
        let mut passed = 0u32;
        run_cases(ProptestConfig::with_cases(10), "rejecting", |_| {
            total += 1;
            if total.is_multiple_of(2) {
                Err(TestCaseError::Reject)
            } else {
                passed += 1;
                Ok(())
            }
        });
        assert_eq!(passed, 10);
        assert!(total > 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_message() {
        run_cases(ProptestConfig::with_cases(5), "failing", |_| {
            Err(TestCaseError::fail("boom".into()))
        });
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = Vec::new();
        run_cases(ProptestConfig::with_cases(5), "stream", |rng| {
            a.push(rand::Rng::random::<u64>(&mut rng.rng));
            Ok(())
        });
        let mut b = Vec::new();
        run_cases(ProptestConfig::with_cases(5), "stream", |rng| {
            b.push(rand::Rng::random::<u64>(&mut rng.rng));
            Ok(())
        });
        assert_eq!(a, b);
    }
}
