//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `elem` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.min + 1 >= self.size.max_excl {
            self.size.min
        } else {
            rng.rng.random_range(self.size.min..self.size.max_excl)
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(0u32..10, 3..7);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()), "len={}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn fixed_length() {
        let mut rng = TestRng::from_seed(6);
        let s = vec(0u8..5, 4usize);
        assert_eq!(s.generate(&mut rng).len(), 4);
    }

    #[test]
    fn nested_vectors() {
        let mut rng = TestRng::from_seed(7);
        let s = vec(vec(0u8..3, 1..3), 2..4);
        let v = s.generate(&mut rng);
        assert!((2..4).contains(&v.len()));
        assert!(v.iter().all(|inner| (1..3).contains(&inner.len())));
    }
}
