//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value covering the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias toward boundary values, as upstream proptest does.
                match rng.rng.random_range(0u32..32) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.rng.random::<$t>(),
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite full-range doubles; specials are rarely useful for the
        // numeric properties tested in this workspace.
        let mag: f64 = rng.rng.random_range(-1.0e12f64..1.0e12);
        mag
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_boundaries_eventually() {
        let mut rng = TestRng::from_seed(9);
        let vals: Vec<u8> = (0..600).map(|_| any::<u8>().generate(&mut rng)).collect();
        assert!(vals.contains(&0));
        assert!(vals.contains(&u8::MAX));
    }

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::from_seed(10);
        let vals: Vec<bool> = (0..100).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
