//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is simply a
/// deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Bias a sixteenth of draws to the boundaries, where bugs live.
                match rng.rng.random_range(0u32..32) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => rng.rng.random_range(self.clone()),
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                match rng.rng.random_range(0u32..32) {
                    0 => *self.start(),
                    1 => *self.end(),
                    _ => rng.rng.random_range(self.clone()),
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        rng.rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident $v:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A a);
tuple_strategy!(A a, B b);
tuple_strategy!(A a, B b, C c);
tuple_strategy!(A a, B b, C c, D d);
tuple_strategy!(A a, B b, C c, D d, E e);
tuple_strategy!(A a, B b, C c, D d, E e, F f);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h, I i);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h, I i, J j);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h, I i, J j, K k);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h, I i, J j, K k, L l);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..2_000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn boundary_bias_hits_edges() {
        let mut rng = TestRng::from_seed(2);
        let vals: Vec<u32> = (0..500).map(|_| (10u32..20).generate(&mut rng)).collect();
        assert!(vals.contains(&10));
        assert!(vals.contains(&19));
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = (1u32..5).prop_map(|x| x * 100);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 100 == 0 && (100..500).contains(&v));
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::from_seed(4);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let vals: Vec<u8> = (0..200).map(|_| u.generate(&mut rng)).collect();
        assert!(vals.contains(&1) && vals.contains(&2));
    }
}
