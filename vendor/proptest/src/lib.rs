//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! exact property-testing surface the workspace uses: the [`proptest!`]
//! macro, `prop_assert*` / `prop_assume!`, [`strategy::Strategy`] with
//! `prop_map`, range / tuple / [`collection::vec`] / [`arbitrary::any`] /
//! `prop_oneof!` strategies, and a deterministic case runner.
//!
//! Differences from upstream: no shrinking (failures report the raw input),
//! and generation is seeded deterministically from the test name (override
//! with `PROPTEST_SEED`; case count with `PROPTEST_CASES`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..) { .. }`
/// item becomes a normal test that runs its body across many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(__config, stringify!($name), |__rng| {
                let __values = ($($crate::strategy::Strategy::generate(&($strat), __rng),)+);
                let __input = format!("{:?}", __values);
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let ($($pat,)+) = __values;
                        $body
                        ::core::result::Result::Ok(())
                    })();
                __result.map_err(|e| e.with_input(&__input))
            });
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// its generated input reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?} == {:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?} == {:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{:?} != {:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{:?} != {:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Discards the current case (without counting it as run) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
