//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this crate implements
//! the measurement surface the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: a short warm-up, then `sample_size` samples, each of
//! an iteration count auto-tuned so one sample takes a meaningful slice of
//! wall-clock. Results print as `min / median / max` nanoseconds per
//! iteration plus iterations-per-second, which is what `CHANGES.md` quotes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much per-iteration state [`Bencher::iter_batched`] should assume.
/// Only affects batching granularity; all variants measure correctly here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values: batch many per timing window.
    SmallInput,
    /// Large setup values: batch few per timing window.
    LargeInput,
    /// Re-run setup for every single iteration.
    PerIteration,
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    target_sample: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            target_sample: Duration::from_millis(60),
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(settings: &Settings, id: &str, mut f: F) {
    // Warm up and estimate per-iteration cost with geometrically growing
    // iteration counts.
    let mut iters = 1u64;
    let mut per_iter_ns;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns = b.elapsed.as_nanos() as f64 / iters as f64;
        if warm_start.elapsed() >= settings.warm_up {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 30);
    }
    let sample_iters = ((settings.target_sample.as_nanos() as f64 / per_iter_ns.max(0.1)).ceil()
        as u64)
        .clamp(1, 1 << 30);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / sample_iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
    let min = samples_ns[0];
    let median = samples_ns[samples_ns.len() / 2];
    let max = samples_ns[samples_ns.len() - 1];
    println!(
        "{id:<44} time: [{} {} {}]  ({:.0} iters/s)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        1e9 / median
    );
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Upstream parses CLI args here; this stub accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&self.settings, id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            _parent: self,
        }
    }

    /// Upstream prints a summary here; measurements already printed inline.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing settings and an id prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&self.settings, &format!("{}/{id}", self.name), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 25,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 25);
        assert!(b.elapsed > Duration::ZERO || calls == 25);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 10);
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2.0e9).ends_with('s'));
    }
}
