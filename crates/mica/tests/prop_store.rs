//! Property-based tests: the MICA store behaves like a map (modulo log
//! eviction, which a large-enough log rules out).

use mica::store::Mica;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Set(u16, Vec<u8>),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Set(k, v)),
        any::<u16>().prop_map(Op::Get),
    ]
}

proptest! {
    /// With a log big enough to never wrap, the store is exactly a map.
    #[test]
    fn behaves_like_a_map(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut store = Mica::new(4, 256, 1 << 20); // 1MB: never wraps here
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Set(k, v) => {
                    prop_assert!(store.set(&k.to_le_bytes(), &v));
                    model.insert(k, v);
                }
                Op::Get(k) => {
                    let got = store.get(&k.to_le_bytes());
                    let want = model.get(&k).cloned();
                    prop_assert_eq!(got, want, "key {}", k);
                }
            }
        }
        prop_assert_eq!(store.len(), model.len() as u64);
    }

    /// Partition ownership is a pure function of the key.
    #[test]
    fn ownership_stable(keys in proptest::collection::vec(any::<u32>(), 1..100), parts in 1usize..16) {
        let kv = Mica::new(parts, 16, 4096);
        for k in keys {
            let key = k.to_le_bytes();
            let p1 = kv.partition_of(&key);
            let p2 = kv.partition_of(&key);
            prop_assert_eq!(p1, p2);
            prop_assert!(p1 < parts);
        }
    }

    /// After a wrap-heavy write storm, the *latest* values that still fit in
    /// the window read back correctly or are reported missing — never a
    /// wrong value.
    #[test]
    fn wraps_never_return_wrong_values(
        writes in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 8..32)), 10..200),
    ) {
        let mut store = Mica::new(1, 64, 512); // tiny log: wraps constantly
        let mut latest: HashMap<u8, Vec<u8>> = HashMap::new();
        for (k, v) in &writes {
            store.set(&[*k], v);
            latest.insert(*k, v.clone());
        }
        for (k, want) in &latest {
            if let Some(got) = store.get(&[*k]) {
                prop_assert_eq!(&got, want, "stale/corrupt read for key {}", k);
            } // None (evicted) is acceptable for a lossy log
        }
    }
}
