//! # mica — a MICA-like in-memory key-value store substrate
//!
//! The end-to-end application of the paper's §IX: a partitioned,
//! log-structured KVS in the style of MICA [Lim et al., NSDI'14], used in
//! EREW mode (each partition owned by one manager thread).
//!
//! - [`log`]: the circular value log with wrap-around eviction.
//! - [`store`]: bucketed hash index over the log, partitioned EREW store.
//! - [`service`]: handler service-time model from memory-hierarchy costs
//!   (GET > SET; SCAN is the ~50 µs long class of Fig. 14).
//! - [`workload`]: dataset population and GET/SET/SCAN trace synthesis.
//!
//! The store is *functional* (real bytes in, real bytes out) while the
//! simulation charges modeled memory latencies — see `DESIGN.md`.
//!
//! # Examples
//!
//! ```
//! use mica::store::Mica;
//! use mica::workload::KvsWorkload;
//!
//! let w = KvsWorkload { keys: 1_000, ..KvsWorkload::default() };
//! let mut store = Mica::new(2, 1024, 4 << 20);
//! w.populate(&mut store, 42);
//! assert_eq!(store.len(), 1_000);
//! assert!(store.get(&w.key(7)).is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod keys;
pub mod log;
pub mod service;
pub mod store;
pub mod workload;

pub use keys::{KeyDistribution, KeySampler};
pub use log::CircularLog;
pub use service::{ServiceModel, ValueSource};
pub use store::{Mica, Partition};
pub use workload::KvsWorkload;
