//! Partitioned key-value store (MICA's EREW mode, paper §IX-B).
//!
//! Keys are hashed to partitions; in EREW mode each partition is owned by
//! exactly one thread (here: one Altocumulus manager), so there is no
//! concurrency control. Each partition is a bucketed hash index over a
//! [`CircularLog`]: buckets hold `(tag, offset)` pairs, values live in the
//! log, and overwrites simply append and repoint — exactly MICA's lossy,
//! log-structured design.

use crate::log::CircularLog;

/// FNV-1a, the classic cheap hash for short keys.
fn hash64(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One EREW partition: a bucketed hash index plus a circular value log.
#[derive(Debug, Clone)]
pub struct Partition {
    buckets: Vec<Vec<(u64, u64)>>, // (key hash, log offset)
    log: CircularLog,
    entries: u64,
}

impl Partition {
    /// Creates a partition with `buckets` hash buckets and a `log_bytes`
    /// circular log.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize, log_bytes: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        Partition {
            buckets: vec![Vec::new(); buckets],
            log: CircularLog::new(log_bytes),
            entries: 0,
        }
    }

    fn bucket_of(&self, h: u64) -> usize {
        (h % self.buckets.len() as u64) as usize
    }

    /// Inserts or overwrites `key`.
    ///
    /// Returns `false` if the value cannot fit in the log at all.
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> bool {
        let h = hash64(key);
        // The log entry stores key-length, key, value so GETs can verify.
        let mut entry = Vec::with_capacity(2 + key.len() + value.len());
        entry.extend_from_slice(&(key.len() as u16).to_le_bytes());
        entry.extend_from_slice(key);
        entry.extend_from_slice(value);
        let Some(offset) = self.log.append(&entry) else {
            return false;
        };
        let b = self.bucket_of(h);
        if let Some(slot) = self.buckets[b].iter_mut().find(|(kh, _)| *kh == h) {
            slot.1 = offset;
        } else {
            self.buckets[b].push((h, offset));
            self.entries += 1;
        }
        true
    }

    /// Looks up `key`, returning its value if present and not evicted.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let h = hash64(key);
        let b = self.bucket_of(h);
        let (_, offset) = self.buckets[b].iter().find(|(kh, _)| *kh == h)?;
        let entry = self.log.read(*offset)?;
        if entry.len() < 2 {
            return None;
        }
        let klen = u16::from_le_bytes([entry[0], entry[1]]) as usize;
        if entry.len() < 2 + klen || &entry[2..2 + klen] != key {
            return None; // hash collision with a different key, or lapped
        }
        Some(entry[2 + klen..].to_vec())
    }

    /// Number of live index entries (including ones whose log value may have
    /// been lapped — MICA's index is lossy by design).
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True iff no keys were ever inserted.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// The partitioned store: `partitions` EREW partitions, keys hashed across
/// them.
///
/// # Examples
///
/// ```
/// use mica::store::Mica;
///
/// let mut kv = Mica::new(4, 1024, 1 << 16);
/// kv.set(b"key", b"value");
/// assert_eq!(kv.get(b"key").as_deref(), Some(&b"value"[..]));
/// ```
#[derive(Debug, Clone)]
pub struct Mica {
    partitions: Vec<Partition>,
}

impl Mica {
    /// Creates a store with `partitions` partitions, each with
    /// `buckets_per_partition` buckets and a `log_bytes_per_partition` log.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(
        partitions: usize,
        buckets_per_partition: usize,
        log_bytes_per_partition: usize,
    ) -> Self {
        assert!(partitions > 0, "need at least one partition");
        Mica {
            partitions: (0..partitions)
                .map(|_| Partition::new(buckets_per_partition, log_bytes_per_partition))
                .collect(),
        }
    }

    /// The paper's configuration scaled to one manager: 2 M buckets and a
    /// 4 GB log are the defaults in MICA; tests use [`Mica::new`] with small
    /// sizes. This constructor uses 64 K buckets and a 64 MB log per
    /// partition to stay laptop-friendly while preserving structure.
    pub fn paper_scaled(partitions: usize) -> Self {
        Self::new(partitions, 1 << 16, 64 << 20)
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition that owns `key` (EREW ownership).
    pub fn partition_of(&self, key: &[u8]) -> usize {
        // Use the upper hash bits for partitioning so bucket selection
        // (lower bits) stays independent.
        ((hash64(key) >> 32) % self.partitions.len() as u64) as usize
    }

    /// Inserts or overwrites `key` in its owning partition.
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> bool {
        let p = self.partition_of(key);
        self.partitions[p].set(key, value)
    }

    /// Looks up `key` in its owning partition.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let p = self.partition_of(key);
        self.partitions[p].get(key)
    }

    /// Direct access to a partition (the simulation maps one partition per
    /// manager thread).
    pub fn partition(&self, idx: usize) -> &Partition {
        &self.partitions[idx]
    }

    /// Mutable access to a partition.
    pub fn partition_mut(&mut self, idx: usize) -> &mut Partition {
        &mut self.partitions[idx]
    }

    /// Total live index entries across partitions.
    pub fn len(&self) -> u64 {
        self.partitions.iter().map(Partition::len).sum()
    }

    /// True iff nothing was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut kv = Mica::new(4, 64, 4096);
        assert!(kv.set(b"alpha", b"1"));
        assert!(kv.set(b"beta", b"2"));
        assert_eq!(kv.get(b"alpha").unwrap(), b"1");
        assert_eq!(kv.get(b"beta").unwrap(), b"2");
        assert_eq!(kv.get(b"gamma"), None);
    }

    #[test]
    fn overwrite_returns_latest() {
        let mut kv = Mica::new(2, 64, 4096);
        kv.set(b"k", b"old");
        kv.set(b"k", b"new");
        assert_eq!(kv.get(b"k").unwrap(), b"new");
        assert_eq!(kv.len(), 1, "overwrite must not grow the index");
    }

    #[test]
    fn partition_ownership_is_stable_and_spread() {
        let kv = Mica::new(8, 64, 4096);
        let mut used = std::collections::HashSet::new();
        for i in 0..256u32 {
            let key = i.to_le_bytes();
            let p = kv.partition_of(&key);
            assert_eq!(p, kv.partition_of(&key), "ownership must be stable");
            used.insert(p);
        }
        assert_eq!(used.len(), 8, "256 keys should cover all partitions");
    }

    #[test]
    fn eviction_after_log_wrap() {
        // Tiny log: writing many values laps the first one.
        let mut kv = Mica::new(1, 16, 256);
        kv.set(b"first", b"payload-first");
        for i in 0..50u32 {
            kv.set(&i.to_le_bytes(), &[0xAB; 16]);
        }
        assert_eq!(kv.get(b"first"), None, "lapped value must disappear");
    }

    #[test]
    fn many_keys_survive() {
        let mut kv = Mica::new(4, 1024, 1 << 20);
        for i in 0..10_000u32 {
            assert!(kv.set(&i.to_le_bytes(), &i.to_be_bytes()));
        }
        for i in 0..10_000u32 {
            assert_eq!(
                kv.get(&i.to_le_bytes()).unwrap(),
                i.to_be_bytes(),
                "key {i}"
            );
        }
        assert_eq!(kv.len(), 10_000);
    }

    #[test]
    fn values_of_paper_sizes() {
        // 16B keys, 512B values (the paper's dataset shape).
        let mut kv = Mica::new(2, 256, 1 << 20);
        let key = [7u8; 16];
        let value = [9u8; 512];
        kv.set(&key, &value);
        assert_eq!(kv.get(&key).unwrap(), value);
    }

    #[test]
    fn empty_store() {
        let kv = Mica::new(2, 4, 64);
        assert!(kv.is_empty());
        assert_eq!(kv.partitions(), 2);
    }
}
