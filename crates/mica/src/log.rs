//! Circular append-only log (MICA's value store).
//!
//! MICA stores values in a DRAM-resident circular log; the hash index holds
//! offsets into it. When the log wraps, the oldest entries are implicitly
//! evicted — reads of stale offsets must detect this. The paper deploys a
//! 4 GB log per store; tests use small logs to exercise wrap-around.

/// An append-only circular log over a fixed byte buffer.
///
/// Offsets are *absolute* (monotonically increasing); an entry is readable
/// while `head − offset ≤ capacity`, i.e. until the writer laps it.
///
/// # Examples
///
/// ```
/// use mica::log::CircularLog;
///
/// let mut log = CircularLog::new(1024);
/// let off = log.append(b"hello").unwrap();
/// assert_eq!(log.read(off).as_deref(), Some(&b"hello"[..]));
/// ```
#[derive(Debug, Clone)]
pub struct CircularLog {
    buf: Vec<u8>,
    /// Absolute offset of the next append.
    head: u64,
}

/// Length prefix per entry (u32 little-endian).
const LEN_BYTES: usize = 4;

impl CircularLog {
    /// Creates a log of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is smaller than one length prefix + 1 byte.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > LEN_BYTES, "log capacity too small");
        CircularLog {
            buf: vec![0; capacity],
            head: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Absolute offset of the next append.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Appends `value`, returning its absolute offset, or `None` if the
    /// entry (prefix + payload) cannot fit in the log at all.
    pub fn append(&mut self, value: &[u8]) -> Option<u64> {
        let total = LEN_BYTES + value.len();
        if total > self.buf.len() {
            return None;
        }
        let offset = self.head;
        let len = (value.len() as u32).to_le_bytes();
        self.write_wrapped(offset, &len);
        self.write_wrapped(offset + LEN_BYTES as u64, value);
        self.head = offset + total as u64;
        Some(offset)
    }

    /// Reads the entry at absolute `offset`, or `None` if it has been lapped
    /// (evicted) or never written.
    pub fn read(&self, offset: u64) -> Option<Vec<u8>> {
        if offset >= self.head {
            return None; // never written
        }
        // Read the length prefix first, then validate the whole entry is
        // still within the un-lapped window.
        let mut len_bytes = [0u8; LEN_BYTES];
        self.read_wrapped(offset, &mut len_bytes);
        let len = u32::from_le_bytes(len_bytes) as usize;
        let total = (LEN_BYTES + len) as u64;
        if len > self.buf.len() || offset + total > self.head {
            return None; // corrupted by lapping
        }
        if self.head - offset > self.buf.len() as u64 {
            return None; // evicted
        }
        let mut out = vec![0u8; len];
        self.read_wrapped(offset + LEN_BYTES as u64, &mut out);
        Some(out)
    }

    /// True iff the entry at `offset` is still resident.
    pub fn contains(&self, offset: u64) -> bool {
        offset < self.head && self.head - offset <= self.buf.len() as u64
    }

    fn write_wrapped(&mut self, offset: u64, data: &[u8]) {
        let cap = self.buf.len();
        let start = (offset % cap as u64) as usize;
        let first = data.len().min(cap - start);
        self.buf[start..start + first].copy_from_slice(&data[..first]);
        if first < data.len() {
            self.buf[..data.len() - first].copy_from_slice(&data[first..]);
        }
    }

    fn read_wrapped(&self, offset: u64, out: &mut [u8]) {
        let cap = self.buf.len();
        let start = (offset % cap as u64) as usize;
        let first = out.len().min(cap - start);
        out[..first].copy_from_slice(&self.buf[start..start + first]);
        if first < out.len() {
            let rest = out.len() - first;
            out[first..].copy_from_slice(&self.buf[..rest]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut log = CircularLog::new(256);
        let a = log.append(b"alpha").unwrap();
        let b = log.append(b"beta").unwrap();
        assert_eq!(log.read(a).unwrap(), b"alpha");
        assert_eq!(log.read(b).unwrap(), b"beta");
    }

    #[test]
    fn never_written_offsets() {
        let log = CircularLog::new(64);
        assert_eq!(log.read(0), None);
        assert!(!log.contains(0));
    }

    #[test]
    fn wrap_around_evicts_oldest() {
        let mut log = CircularLog::new(64);
        let first = log.append(&[1u8; 20]).unwrap();
        let mut last = 0;
        for i in 0..10 {
            last = log.append(&[i as u8; 20]).unwrap();
        }
        assert_eq!(log.read(first), None, "lapped entry must be evicted");
        assert_eq!(log.read(last).unwrap(), [9u8; 20]);
    }

    #[test]
    fn entry_spanning_the_boundary() {
        let mut log = CircularLog::new(40);
        log.append(&[7u8; 25]).unwrap(); // head at 29
        let off = log.append(&[9u8; 20]).unwrap(); // wraps past 40
        assert_eq!(log.read(off).unwrap(), [9u8; 20]);
    }

    #[test]
    fn oversized_rejected() {
        let mut log = CircularLog::new(32);
        assert_eq!(log.append(&[0u8; 64]), None);
        assert!(log.append(&[0u8; 28]).is_some());
    }

    #[test]
    fn head_advances_monotonically() {
        let mut log = CircularLog::new(128);
        let mut prev = log.head();
        for _ in 0..20 {
            log.append(b"xyz").unwrap();
            assert!(log.head() > prev);
            prev = log.head();
        }
    }
}
