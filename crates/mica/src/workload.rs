//! KVS workload generation: datasets, key popularity and trace synthesis.
//!
//! Builds the end-to-end MICA experiment inputs (paper §IX): a dataset of
//! 16 B keys / 512 B values, a 50/50 GET/SET query mix with a configurable
//! SCAN fraction, and service times drawn from the [`ServiceModel`] so the
//! simulated handler cost matches what the functional store would do.

use crate::service::ServiceModel;
use crate::store::Mica;
use rand::Rng;
use simcore::rng::{stream_rng, streams};
use simcore::time::SimTime;
use workload::arrival::ArrivalProcess;
use workload::request::{ConnectionId, Request, RequestId, RequestKind};
use workload::trace::Trace;

/// Parameters of the MICA workload (paper defaults where given).
#[derive(Debug, Clone)]
pub struct KvsWorkload {
    /// Number of distinct keys (paper: 1.6 M per manager).
    pub keys: u32,
    /// Key size in bytes (paper: 16 B).
    pub key_bytes: u32,
    /// Value size in bytes (paper: 512 B).
    pub value_bytes: u32,
    /// Fraction of SCAN requests (Fig. 14: 0.5%).
    pub scan_fraction: f64,
    /// GET fraction among non-SCANs (paper: 50/50 GET/SET).
    pub get_fraction: f64,
    /// Number of client connections.
    pub connections: u32,
    /// Service-time model.
    pub service: ServiceModel,
}

impl Default for KvsWorkload {
    fn default() -> Self {
        KvsWorkload {
            keys: 100_000, // scaled-down default; paper uses 1.6M
            key_bytes: 16,
            value_bytes: 512,
            scan_fraction: 0.005,
            get_fraction: 0.5,
            connections: 256,
            service: ServiceModel::default(),
        }
    }
}

impl KvsWorkload {
    /// The Fig. 14 mix on the nanoRPC stack: tiny values so GET/SET land
    /// near ~100 ns handler time, 0.5% SCANs as the long class. SCANs are
    /// sized at ~5 µs: the figure's throughput axis (up to 700 MRPS on 64
    /// cores) is only feasible when 0.5% SCANs consume well under the whole
    /// machine, which bounds them near 5 µs rather than the text's "~50 µs".
    pub fn fig14() -> Self {
        KvsWorkload {
            value_bytes: 64,
            service: crate::service::ServiceModel {
                scan_keys: 83, // ~5us per SCAN over 64B values
                ..crate::service::ServiceModel::default()
            },
            ..Self::default()
        }
    }

    /// Materializes the byte key for key index `i`.
    pub fn key(&self, i: u32) -> Vec<u8> {
        let mut k = vec![0u8; self.key_bytes as usize];
        k[..4].copy_from_slice(&i.to_le_bytes());
        k
    }

    /// Pre-populates a store with every key (the paper deploys the dataset
    /// before measuring).
    pub fn populate(&self, store: &mut Mica, seed: u64) {
        let mut rng = stream_rng(seed, streams::KEYS);
        let mut value = vec![0u8; self.value_bytes as usize];
        for i in 0..self.keys {
            rng.fill(&mut value[..]);
            assert!(
                store.set(&self.key(i), &value),
                "dataset value must fit the log"
            );
        }
    }

    /// Generates a trace of `n` requests using `arrivals`, with service
    /// times from the [`ServiceModel`] and kinds drawn from the mix.
    pub fn trace<A: ArrivalProcess>(&self, arrivals: A, n: usize, seed: u64) -> Trace {
        self.trace_in_conn_range(arrivals, n, seed, 0, self.connections)
    }

    /// Like [`Self::trace`] but confined to connections
    /// `[conn_offset, conn_offset + conn_count)` — the building block for
    /// per-cluster bursty streams.
    pub fn trace_in_conn_range<A: ArrivalProcess>(
        &self,
        mut arrivals: A,
        n: usize,
        seed: u64,
        conn_offset: u32,
        conn_count: u32,
    ) -> Trace {
        assert!(conn_count > 0, "need at least one connection");
        let mut arr_rng = stream_rng(seed, streams::ARRIVALS);
        let mut mix_rng = stream_rng(seed, streams::SERVICE);
        let mut key_rng = stream_rng(seed, streams::KEYS);
        let mut now = SimTime::ZERO;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            now += arrivals.next_gap(&mut arr_rng);
            let kind = if mix_rng.random::<f64>() < self.scan_fraction {
                RequestKind::Scan
            } else if mix_rng.random::<f64>() < self.get_fraction {
                RequestKind::Get
            } else {
                RequestKind::Set
            };
            let service = self.service.service_time(kind, self.value_bytes);
            out.push(Request {
                id: RequestId(i as u64),
                arrival: now,
                service,
                kind,
                conn: ConnectionId(conn_offset + key_rng.random_range(0..conn_count)),
                size_bytes: self.key_bytes + 32,
            });
        }
        Trace::new(out)
    }

    /// "Real-world" KVS traffic: `clusters` independent bursty (MMPP)
    /// streams on disjoint connection ranges, merged by arrival time, with
    /// aggregate rate `total_rate`. Bursts hit different receive queues at
    /// different times — the temporal imbalance of the paper's Fig. 9.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or exceeds the connection budget.
    pub fn trace_clustered(&self, total_rate: f64, clusters: u32, n: usize, seed: u64) -> Trace {
        use workload::arrival::MmppProcess;
        assert!(clusters > 0, "need at least one cluster");
        assert!(
            clusters <= self.connections,
            "more clusters than connections"
        );
        let per_cluster_conns = self.connections / clusters;
        let per_cluster_n = n / clusters as usize;
        assert!(
            per_cluster_n > 0,
            "too few requests for {clusters} clusters"
        );
        let mut parts = Vec::with_capacity(clusters as usize);
        for c in 0..clusters {
            let arrivals = MmppProcess::bursty(total_rate / clusters as f64);
            parts.push(self.trace_in_conn_range(
                arrivals,
                per_cluster_n,
                simcore::rng::derive_seed(seed, c as u64 + 1),
                c * per_cluster_conns,
                per_cluster_conns,
            ));
        }
        Trace::merge(parts)
    }

    /// Mean handler time of the mix (for load calculations).
    pub fn mean_service(&self) -> simcore::time::SimDuration {
        let get = self.service.get_time(self.value_bytes).as_ns_f64();
        let set = self.service.set_time(self.value_bytes).as_ns_f64();
        let scan = self.service.scan_time(self.value_bytes).as_ns_f64();
        let short = self.get_fraction * get + (1.0 - self.get_fraction) * set;
        simcore::time::SimDuration::from_ns_f64(
            (1.0 - self.scan_fraction) * short + self.scan_fraction * scan,
        )
    }
}

/// Executes a trace's operations against a functional store, verifying that
/// every GET after the populate phase finds its key — the end-to-end "the
/// store actually works" check used by integration tests.
///
/// Returns `(hits, misses)` over GET requests.
pub fn execute_against_store(
    workload: &KvsWorkload,
    store: &mut Mica,
    trace: &Trace,
    seed: u64,
) -> (u64, u64) {
    let mut rng = stream_rng(seed, streams::KEYS);
    let mut hits = 0;
    let mut misses = 0;
    let mut value = vec![0u8; workload.value_bytes as usize];
    for req in trace {
        let key_idx = rng.random_range(0..workload.keys);
        let key = workload.key(key_idx);
        match req.kind {
            RequestKind::Get | RequestKind::Generic => {
                if store.get(&key).is_some() {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            RequestKind::Set => {
                rng.fill(&mut value[..]);
                store.set(&key, &value);
            }
            RequestKind::Scan => {
                // Walk a small range.
                for off in 0..16u32 {
                    let k = workload.key((key_idx + off) % workload.keys);
                    let _ = store.get(&k);
                }
            }
        }
    }
    (hits, misses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::arrival::PoissonProcess;

    #[test]
    fn trace_mix_matches_fractions() {
        let w = KvsWorkload::default();
        let t = w.trace(PoissonProcess::new(1e6), 100_000, 1);
        let scans = t.iter().filter(|r| r.kind == RequestKind::Scan).count();
        let gets = t.iter().filter(|r| r.kind == RequestKind::Get).count();
        let sets = t.iter().filter(|r| r.kind == RequestKind::Set).count();
        let p_scan = scans as f64 / t.len() as f64;
        assert!((p_scan - 0.005).abs() < 0.002, "p_scan={p_scan}");
        let ratio = gets as f64 / sets as f64;
        assert!((0.93..1.07).contains(&ratio), "get/set={ratio}");
    }

    #[test]
    fn service_times_by_kind() {
        let w = KvsWorkload::default();
        let t = w.trace(PoissonProcess::new(1e6), 10_000, 2);
        for r in &t {
            let expect = w.service.service_time(r.kind, w.value_bytes);
            assert_eq!(r.service, expect, "kind {:?}", r.kind);
        }
    }

    #[test]
    fn populate_then_all_gets_hit() {
        let w = KvsWorkload {
            keys: 2_000,
            ..KvsWorkload::default()
        };
        let mut store = Mica::new(4, 4096, 8 << 20);
        w.populate(&mut store, 3);
        assert_eq!(store.len(), 2_000);
        let t = w.trace(PoissonProcess::new(1e6), 5_000, 3);
        let (hits, misses) = execute_against_store(&w, &mut store, &t, 4);
        assert!(hits > 0);
        assert_eq!(misses, 0, "all keys were populated; no GET may miss");
    }

    #[test]
    fn mean_service_between_short_and_scan() {
        let w = KvsWorkload::default();
        let mean = w.mean_service();
        assert!(mean > w.service.set_time(w.value_bytes));
        assert!(mean < w.service.scan_time(w.value_bytes));
    }

    #[test]
    fn clustered_trace_shape() {
        let w = KvsWorkload::default();
        let t = w.trace_clustered(10e6, 4, 20_000, 9);
        assert_eq!(t.len(), 20_000);
        // ids sequential in arrival order after the merge
        for (i, r) in t.iter().enumerate() {
            assert_eq!(r.id.0, i as u64);
        }
        // connection ranges disjoint per cluster
        let per = w.connections / 4;
        assert!(t.iter().all(|r| r.conn.0 < w.connections));
        let mut seen = [false; 4];
        for r in t.iter() {
            seen[(r.conn.0 / per) as usize % 4] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn fig14_values_are_small() {
        let w = KvsWorkload::fig14();
        assert_eq!(w.value_bytes, 64);
        // Short requests sub-microsecond.
        assert!(w.service.get_time(64) < simcore::time::SimDuration::from_us(1));
    }
}
