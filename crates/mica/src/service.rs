//! Service-time model for MICA request handlers (paper §IX-B).
//!
//! The paper charges: for a SET, loading the value from the LLC (remote
//! cache read) or main memory, then writing it to the DRAM-resident log;
//! for a GET, fetching the value from the log (DRAM) and writing it to the
//! response buffer (LLC) — "usually taking longer delay than SETs". SCANs
//! walk a key range and are the long-request class of Fig. 14.

use interconnect::offchip::MemoryModel;
use simcore::time::SimDuration;
use workload::request::RequestKind;

/// Where a SET's input value resides before being written to the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSource {
    /// The LLC (a remote cache read) — the Nebula-style configuration.
    Llc,
    /// Main memory (a DRAM access) — the DPDK-style configuration.
    Dram,
}

/// Computes handler service times from the memory hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct ServiceModel {
    /// Memory-latency constants.
    pub mem: MemoryModel,
    /// Where SET inputs come from.
    pub value_source: ValueSource,
    /// Bytes moved per cache line.
    pub line_bytes: u32,
    /// Keys visited by one SCAN.
    pub scan_keys: u32,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            mem: MemoryModel::default(),
            value_source: ValueSource::Llc,
            line_bytes: 64,
            scan_keys: 250, // ~50us per SCAN with 512B values (Fig. 14)
        }
    }
}

impl ServiceModel {
    fn lines(&self, bytes: u32) -> u64 {
        bytes.div_ceil(self.line_bytes).max(1) as u64
    }

    /// GET: index probe (L1+LLC), log fetch from DRAM (per line), response
    /// write into the LLC (per line).
    pub fn get_time(&self, value_bytes: u32) -> SimDuration {
        let lines = self.lines(value_bytes);
        // Hash+bucket probe: one L1 touch and one LLC touch; the first log
        // line is a full DRAM access, subsequent lines stream at ~1/4 cost;
        // the response is written line-by-line into the LLC buffer.
        let stream = SimDuration::from_ps(self.mem.dram.as_ps() / 4);
        self.mem.l1 + self.mem.llc + self.mem.dram + stream * (lines - 1) + self.mem.llc * lines
    }

    /// SET: load the input value (LLC or DRAM), append to the DRAM log.
    pub fn set_time(&self, value_bytes: u32) -> SimDuration {
        let lines = self.lines(value_bytes);
        let load = match self.value_source {
            ValueSource::Llc => self.mem.remote_cache,
            ValueSource::Dram => self.mem.dram,
        };
        let stream = SimDuration::from_ps(self.mem.dram.as_ps() / 4);
        self.mem.l1 + load + self.mem.dram + stream * (lines - 1)
    }

    /// SCAN: `scan_keys` sequential GET-like probes, dominated by streaming
    /// DRAM reads.
    pub fn scan_time(&self, value_bytes: u32) -> SimDuration {
        let per_key = self.mem.llc
            + SimDuration::from_ps(self.mem.dram.as_ps() / 2)
            + SimDuration::from_ps(self.mem.dram.as_ps() / 4) * (self.lines(value_bytes) - 1);
        per_key * self.scan_keys as u64
    }

    /// Service time for a request of `kind` over `value_bytes` values.
    pub fn service_time(&self, kind: RequestKind, value_bytes: u32) -> SimDuration {
        match kind {
            RequestKind::Get | RequestKind::Generic => self.get_time(value_bytes),
            RequestKind::Set => self.set_time(value_bytes),
            RequestKind::Scan => self.scan_time(value_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_longer_than_set() {
        // Paper: "GETs ... usually taking longer delay than SETs".
        let m = ServiceModel::default();
        assert!(m.get_time(512) > m.set_time(512));
    }

    #[test]
    fn scan_is_the_long_class() {
        let m = ServiceModel::default();
        let scan = m.scan_time(512);
        let get = m.get_time(512);
        assert!(scan > get * 100);
        // ~50us-scale with defaults (the Fig. 14 long class is ~50us).
        assert!((10.0..200.0).contains(&scan.as_us_f64()), "scan={}", scan);
    }

    #[test]
    fn small_get_is_sub_microsecond() {
        let m = ServiceModel::default();
        let t = m.get_time(64);
        assert!(t < SimDuration::from_us(1), "get={t}");
        assert!(t > SimDuration::from_ns(50));
    }

    #[test]
    fn larger_values_cost_more() {
        let m = ServiceModel::default();
        assert!(m.get_time(512) > m.get_time(64));
        assert!(m.set_time(2048) > m.set_time(64));
    }

    #[test]
    fn dram_sourced_sets_slower() {
        let llc = ServiceModel::default();
        let dram = ServiceModel {
            value_source: ValueSource::Dram,
            ..llc
        };
        assert!(dram.set_time(512) > llc.set_time(512));
    }

    #[test]
    fn dispatch_by_kind() {
        let m = ServiceModel::default();
        assert_eq!(m.service_time(RequestKind::Get, 64), m.get_time(64));
        assert_eq!(m.service_time(RequestKind::Set, 64), m.set_time(64));
        assert_eq!(m.service_time(RequestKind::Scan, 64), m.scan_time(64));
    }
}
