//! Key-popularity distributions for KVS workloads.
//!
//! MICA's evaluation (and the YCSB suite the paper's KVS lineage uses)
//! distinguishes *uniform* from *skewed* (Zipfian) key popularity: skew
//! concentrates traffic on the EREW partitions owning hot keys, which is
//! another source of the per-queue imbalance Altocumulus migrates around.

use rand::Rng;

/// How keys are drawn from the keyspace `[0, n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with exponent `theta` (YCSB default 0.99).
    Zipf {
        /// Skew exponent; 0 degenerates to uniform, ~0.99 is YCSB's default.
        theta: f64,
    },
}

/// A sampler over `n` keys with the given popularity distribution.
///
/// Zipf sampling uses the standard YCSB/Gray et al. rejection-free inverse
/// transform with precomputed constants — O(1) per sample.
///
/// # Examples
///
/// ```
/// use mica::keys::{KeyDistribution, KeySampler};
/// use rand::SeedableRng;
///
/// let sampler = KeySampler::new(10_000, KeyDistribution::Zipf { theta: 0.99 });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let k = sampler.sample(&mut rng);
/// assert!(k < 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct KeySampler {
    n: u32,
    dist: KeyDistribution,
    // Zipf constants (Gray et al., "Quickly generating billion-record
    // synthetic databases").
    zetan: f64,
    theta: f64,
    alpha: f64,
    eta: f64,
}

impl KeySampler {
    /// Creates a sampler over `n` keys.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or a Zipf `theta` is not in `[0, 1)∪(1, ∞)`
    /// (theta = 1 has a divergent normalizer in this form; use 0.99).
    pub fn new(n: u32, dist: KeyDistribution) -> Self {
        assert!(n > 0, "need at least one key");
        match dist {
            KeyDistribution::Uniform => KeySampler {
                n,
                dist,
                zetan: 0.0,
                theta: 0.0,
                alpha: 0.0,
                eta: 0.0,
            },
            KeyDistribution::Zipf { theta } => {
                assert!(
                    theta >= 0.0 && (theta - 1.0).abs() > 1e-9,
                    "bad theta {theta}"
                );
                let zetan = zeta(n, theta);
                let zeta2 = zeta(2.min(n), theta);
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                KeySampler {
                    n,
                    dist,
                    zetan,
                    theta,
                    alpha,
                    eta,
                }
            }
        }
    }

    /// Number of keys in the keyspace.
    pub fn keys(&self) -> u32 {
        self.n
    }

    /// The configured distribution.
    pub fn distribution(&self) -> KeyDistribution {
        self.dist
    }

    /// Draws a key index in `[0, n)`. For Zipf, key 0 is the hottest.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self.dist {
            KeyDistribution::Uniform => rng.random_range(0..self.n),
            KeyDistribution::Zipf { .. } => {
                let u: f64 = rng.random();
                let uz = u * self.zetan;
                if uz < 1.0 {
                    return 0;
                }
                if uz < 1.0 + 0.5f64.powf(self.theta) {
                    return 1;
                }
                let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u32;
                k.min(self.n - 1)
            }
        }
    }
}

/// Generalized harmonic number `H_{n,theta}`.
fn zeta(n: u32, theta: f64) -> f64 {
    (1..=n as u64).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(sampler: &KeySampler, draws: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; sampler.keys() as usize];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn uniform_is_flat() {
        let s = KeySampler::new(100, KeyDistribution::Uniform);
        let counts = frequencies(&s, 200_000, 1);
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.3, "uniform spread too wide: {min}..{max}");
    }

    #[test]
    fn zipf_concentrates_on_head() {
        let s = KeySampler::new(10_000, KeyDistribution::Zipf { theta: 0.99 });
        let counts = frequencies(&s, 500_000, 2);
        let head: u64 = counts[..100].iter().sum();
        let total: u64 = counts.iter().sum();
        let head_share = head as f64 / total as f64;
        // YCSB zipf 0.99 over 10k keys: top-1% of keys draw well over a
        // third of accesses.
        assert!(head_share > 0.35, "head share {head_share}");
        // And the hottest key dominates any mid-rank key.
        assert!(counts[0] > counts[5000] * 20);
    }

    #[test]
    fn zipf_ranks_monotone_ish() {
        let s = KeySampler::new(1000, KeyDistribution::Zipf { theta: 0.9 });
        let counts = frequencies(&s, 400_000, 3);
        // Compare decade aggregates to smooth noise.
        let d0: u64 = counts[..10].iter().sum();
        let d1: u64 = counts[10..100].iter().sum();
        let d2: u64 = counts[100..1000].iter().sum();
        assert!(d0 > d1 / 9, "head decade underweighted");
        assert!(d1 > d2 / 10, "middle decade underweighted");
    }

    #[test]
    fn all_samples_in_range() {
        for dist in [
            KeyDistribution::Uniform,
            KeyDistribution::Zipf { theta: 0.5 },
            KeyDistribution::Zipf { theta: 0.99 },
        ] {
            let s = KeySampler::new(7, dist);
            let mut rng = StdRng::seed_from_u64(4);
            for _ in 0..10_000 {
                assert!(s.sample(&mut rng) < 7);
            }
        }
    }

    #[test]
    fn theta_zero_near_uniform() {
        let s = KeySampler::new(50, KeyDistribution::Zipf { theta: 0.0 });
        let counts = frequencies(&s, 200_000, 5);
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(
            max / min < 1.4,
            "theta=0 should be near-uniform: {min}..{max}"
        );
    }

    #[test]
    #[should_panic(expected = "bad theta")]
    fn rejects_theta_one() {
        KeySampler::new(10, KeyDistribution::Zipf { theta: 1.0 });
    }
}
