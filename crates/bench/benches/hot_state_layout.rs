//! Criterion micro-benchmark for the compacted hot-state layout: per-event
//! cost of the elided engine at the small 4×16 mesh vs the 1024-core 32×32
//! mesh (64 groups × 16). The whole point of the SoA hot/cold split, the
//! slab request arena and the stage-hint staging bound is that this cost is
//! *flat* in mesh size — a tick touches the dense hot plane of the groups
//! it concerns, never O(groups) scattered structs.
//!
//! Setup runs a best-of-3 flatness sanity check before the measured
//! passes: the 32×32 per-event cost must stay within 2.5× of the 4×16
//! cost. That bound is deliberately loose (this can run on wildly noisy
//! machines); the tight ±25% gate lives in the recorded best-of-7
//! BENCH_hotpath.json refresh.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simcore::time::SimDuration;
use std::time::Instant;
use workload::{PoissonProcess, ServiceDistribution, Trace, TraceBuilder};

use altocumulus::{AcConfig, Altocumulus};

fn trace_for(cores: usize, requests: usize) -> Trace {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(0.6, cores, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(requests)
        .connections(16)
        .seed(1)
        .build()
}

/// Best-of-3 nanoseconds per main-loop event for one configuration.
fn ns_per_event(cfg: &AcConfig, trace: &Trace) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..3 {
        let mut sys = Altocumulus::new(cfg.clone());
        let start = Instant::now();
        let r = sys.run_detailed(trace);
        let ns = start.elapsed().as_nanos() as f64;
        assert_eq!(r.system.completions.len(), trace.len());
        best = best.min(ns / r.summary.events as f64);
    }
    best
}

fn bench_layout(c: &mut Criterion) {
    let mean = SimDuration::from_ns(850);
    let small_cfg = AcConfig::ac_int(4, 16, mean);
    let huge_cfg = AcConfig::ac_int(64, 16, mean);
    let small_trace = trace_for(64, 8_000);
    let huge_trace = trace_for(1024, 20_000);

    // Flatness sanity: per-event cost must not grow with the mesh.
    let small_npe = ns_per_event(&small_cfg, &small_trace);
    let huge_npe = ns_per_event(&huge_cfg, &huge_trace);
    assert!(
        huge_npe < small_npe * 2.5,
        "per-event cost not flat in mesh size: 4x16 {small_npe:.0} ns/event, \
         32x32 {huge_npe:.0} ns/event"
    );

    let mut g = c.benchmark_group("hot_state_layout");
    g.sample_size(10);
    g.bench_function("elided_4x16", |b| {
        b.iter(|| {
            let r = Altocumulus::new(small_cfg.clone()).run_detailed(&small_trace);
            black_box(r.summary.events)
        });
    });
    g.bench_function("elided_32x32", |b| {
        b.iter(|| {
            let r = Altocumulus::new(huge_cfg.clone()).run_detailed(&huge_trace);
            black_box(r.summary.events)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
