//! Criterion benchmark of whole-simulation throughput: how many simulated
//! RPCs per second of wall-clock the engine sustains for a representative
//! Altocumulus configuration and a baseline.

use altocumulus::{AcConfig, Altocumulus};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use schedulers::common::RpcSystem;
use schedulers::jbsq::{Jbsq, JbsqVariant};
use simcore::time::SimDuration;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

fn trace() -> workload::Trace {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(0.8, 64, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(20_000)
        .connections(16)
        .seed(1)
        .build()
}

fn bench_sim(c: &mut Criterion) {
    let t = trace();
    let mut g = c.benchmark_group("sim_20k_requests_64_cores");
    g.sample_size(10);
    g.bench_function("altocumulus_int_4x16", |b| {
        b.iter_batched(
            || Altocumulus::new(AcConfig::ac_int(4, 16, SimDuration::from_ns(850))),
            |mut sys| black_box(sys.run(&t).completions.len()),
            BatchSize::LargeInput,
        );
    });
    g.bench_function("nebula_jbsq", |b| {
        b.iter_batched(
            || Jbsq::new(JbsqVariant::Nebula, 64),
            |mut sys| black_box(sys.run(&t).completions.len()),
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
