//! Criterion micro-benchmarks for worker-plane event elision: the full
//! ALTOCUMULUS engine with `WorkerPlane::Elided` (analytic service
//! timelines, lazily materialized) against the `WorkerPlane::EventDriven`
//! oracle, on the two regimes that stress the `(time, seq)` lane merge
//! differently:
//!
//! - `dense_fixed`: fixed 850 ns service at high load — the schedule is
//!   packed with exact time ties, so every elided pop exercises the
//!   seq-rank tie-break against the main queue.
//! - `heavy_tailed`: bimodal 500 ns / 20 µs — long requests pile queues
//!   behind stragglers, so lanes hold their `local_bound` backlog and the
//!   migration plane interleaves aggressively with the timeline.
//!
//! Both engines produce byte-identical output (asserted once per regime at
//! setup); the benchmark isolates the wall-clock value of keeping
//! worker-plane events out of the calendar queue.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simcore::time::SimDuration;
use simcore::timeline::WorkerPlane;
use workload::{PoissonProcess, ServiceDistribution, Trace, TraceBuilder};

use altocumulus::{AcConfig, Altocumulus};

const GROUPS: usize = 4;
const GROUP_SIZE: usize = 16;
const REQUESTS: usize = 8_000;

fn cfg(plane: WorkerPlane, mean: SimDuration) -> AcConfig {
    let mut cfg = AcConfig::ac_int(GROUPS, GROUP_SIZE, mean);
    cfg.worker_plane = plane;
    cfg
}

fn trace_for(dist: ServiceDistribution, load: f64) -> Trace {
    let cores = GROUPS * GROUP_SIZE;
    let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(REQUESTS)
        .connections(64)
        .seed(3)
        .build()
}

fn bench_regime(c: &mut Criterion, name: &str, dist: ServiceDistribution, load: f64) {
    let mean = dist.mean();
    let trace = trace_for(dist, load);
    // Differential sanity once per regime: the two engines must agree on
    // every completion before their speeds are worth comparing.
    let a = Altocumulus::new(cfg(WorkerPlane::Elided, mean)).run_detailed(&trace);
    let b = Altocumulus::new(cfg(WorkerPlane::EventDriven, mean)).run_detailed(&trace);
    assert_eq!(a.system.completions, b.system.completions);
    assert!(a.summary.events <= b.summary.events);

    let mut g = c.benchmark_group(&format!("worker_plane_elision/{name}"));
    g.bench_function("elided", |bch| {
        bch.iter(|| {
            let r = Altocumulus::new(cfg(WorkerPlane::Elided, mean)).run_detailed(&trace);
            black_box(r.system.completions.len())
        });
    });
    g.bench_function("event_driven", |bch| {
        bch.iter(|| {
            let r = Altocumulus::new(cfg(WorkerPlane::EventDriven, mean)).run_detailed(&trace);
            black_box(r.system.completions.len())
        });
    });
    g.finish();
}

fn bench_dense_fixed(c: &mut Criterion) {
    bench_regime(
        c,
        "dense_fixed",
        ServiceDistribution::Fixed(SimDuration::from_ns(850)),
        0.8,
    );
}

fn bench_heavy_tailed(c: &mut Criterion) {
    bench_regime(
        c,
        "heavy_tailed",
        ServiceDistribution::Bimodal {
            short: SimDuration::from_ns(500),
            long: SimDuration::from_us(20),
            p_long: 0.01,
        },
        0.6,
    );
}

criterion_group!(benches, bench_dense_fixed, bench_heavy_tailed);
criterion_main!(benches);
