//! Criterion micro-benchmarks for the hot primitives every simulation run
//! leans on: the event queue, latency histogram, Erlang-C evaluation,
//! pattern classification/planning and the bounded hardware structures.

use altocumulus::hw::fifo::BoundedFifo;
use altocumulus::runtime::patterns::{classify, plan_migrations};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use queueing::erlang::{erlang_c, expected_queue_len};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpcstack::nic::Steering;
use simcore::event::EventQueue;
use simcore::metrics::LatencyHistogram;
use simcore::time::{SimDuration, SimTime};
use workload::request::ConnectionId;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let times: Vec<SimTime> = (0..1000)
            .map(|_| SimTime::from_ns(rng.random_range(0..1_000_000)))
            .collect();
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut sum = 0usize;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram/record_10k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<SimDuration> = (0..10_000)
            .map(|_| SimDuration::from_ns(rng.random_range(1..10_000_000)))
            .collect();
        b.iter(|| {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            black_box(h.count())
        });
    });
    c.bench_function("histogram/p99_of_1M", |b| {
        let mut h = LatencyHistogram::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000_000 {
            h.record(SimDuration::from_ns(rng.random_range(1..10_000_000)));
        }
        b.iter(|| black_box(h.quantile(0.99)));
    });
}

fn bench_erlang(c: &mut Criterion) {
    c.bench_function("erlang/c_256_servers", |b| {
        b.iter(|| black_box(erlang_c(black_box(256), black_box(250.0))));
    });
    c.bench_function("erlang/expected_queue_len_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..100 {
                acc += expected_queue_len(64, 64.0 * i as f64 / 101.0);
            }
            black_box(acc)
        });
    });
}

fn bench_patterns(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let q: Vec<u32> = (0..16).map(|_| rng.random_range(0..200)).collect();
    c.bench_function("patterns/classify_16", |b| {
        b.iter(|| black_box(classify(black_box(&q), 16)));
    });
    c.bench_function("patterns/plan_16_managers", |b| {
        b.iter(|| black_box(plan_migrations(3, black_box(&q), 50, 16, 8)));
    });
}

fn bench_hw(c: &mut Criterion) {
    c.bench_function("hw/fifo_cycle_16", |b| {
        b.iter(|| {
            let mut f = BoundedFifo::paper_sized();
            for i in 0..16 {
                let _ = f.push(i);
            }
            let mut sum = 0;
            while let Some(v) = f.pop() {
                sum += v;
            }
            black_box(sum)
        });
    });
    c.bench_function("nic/rss_steer_1k", |b| {
        let mut steering = Steering::rss();
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1000u32 {
                acc += steering.steer(ConnectionId(i), 16, &mut rng);
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_histogram,
    bench_erlang,
    bench_patterns,
    bench_hw
);
criterion_main!(benches);
