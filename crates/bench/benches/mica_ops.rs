//! Criterion benchmarks for the MICA substrate: raw store GET/SET and log
//! append throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mica::log::CircularLog;
use mica::store::Mica;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_store(c: &mut Criterion) {
    let mut store = Mica::new(8, 1 << 14, 32 << 20);
    let mut rng = StdRng::seed_from_u64(1);
    let mut value = [0u8; 512];
    for i in 0..100_000u32 {
        rng.fill(&mut value[..]);
        store.set(&i.to_le_bytes(), &value);
    }
    c.bench_function("mica/get_hit", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(store.get(&i.to_le_bytes()))
        });
    });
    c.bench_function("mica/set_overwrite_512B", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 104_729) % 100_000;
            black_box(store.set(&i.to_le_bytes(), &value))
        });
    });
}

fn bench_log(c: &mut Criterion) {
    c.bench_function("log/append_64B", |b| {
        let mut log = CircularLog::new(16 << 20);
        let payload = [0xAAu8; 64];
        b.iter(|| black_box(log.append(&payload)));
    });
}

criterion_group!(benches, bench_store, bench_log);
criterion_main!(benches);
