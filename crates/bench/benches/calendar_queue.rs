//! Criterion micro-benchmarks comparing the calendar-queue [`EventQueue`]
//! against the [`BinaryHeapQueue`] oracle, plus histogram record/quantile —
//! the primitives the calendar-queue PR is meant to speed up.
//!
//! Two access patterns matter:
//!
//! - `churn`: a sliding-window workload shaped like a real simulation run
//!   (every pop schedules a follow-up a bounded distance in the future) —
//!   the case the calendar queue is designed for.
//! - `bulk`: push N then drain N, the classic heap-friendly pattern.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcore::event::{BinaryHeapQueue, EventQueue};
use simcore::metrics::LatencyHistogram;
use simcore::time::{SimDuration, SimTime};

const BULK: usize = 10_000;
const CHURN_LIVE: usize = 4_096;
const CHURN_OPS: usize = 100_000;

fn bulk_times() -> Vec<SimTime> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..BULK)
        .map(|_| SimTime::from_ns(rng.random_range(0..1_000_000)))
        .collect()
}

/// Hold `CHURN_LIVE` events live; each pop pushes a successor `max_step_ns`
/// ahead at most, like service-completion events do. Real runs cluster
/// follow-ups within a few service times (~1-2 µs); `66_000` stretches them
/// across a full calendar window.
fn churn_steps(seed: u64, max_step_ns: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..CHURN_OPS)
        .map(|_| rng.random_range(1..max_step_ns))
        .collect()
}

fn bench_bulk(c: &mut Criterion) {
    let times = bulk_times();
    let mut g = c.benchmark_group("queue_bulk_10k");
    g.bench_function("calendar", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut sum = 0usize;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        });
    });
    g.bench_function("binary_heap", |b| {
        b.iter(|| {
            let mut q = BinaryHeapQueue::with_capacity(BULK);
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut sum = 0usize;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        });
    });
    g.finish();
}

fn churn_calendar(steps: &[u64]) -> usize {
    let mut q = EventQueue::new();
    for i in 0..CHURN_LIVE {
        q.push(SimTime::from_ns(i as u64), i);
    }
    let mut sum = 0usize;
    for &step in steps {
        let (t, e) = q.pop().expect("queue stays populated");
        sum += e;
        q.push(t + SimDuration::from_ns(step), e);
    }
    sum
}

fn churn_heap(steps: &[u64]) -> usize {
    let mut q = BinaryHeapQueue::with_capacity(CHURN_LIVE);
    for i in 0..CHURN_LIVE {
        q.push(SimTime::from_ns(i as u64), i);
    }
    let mut sum = 0usize;
    for &step in steps {
        let (t, e) = q.pop().expect("queue stays populated");
        sum += e;
        q.push(t + SimDuration::from_ns(step), e);
    }
    sum
}

fn bench_churn(c: &mut Criterion) {
    for (label, max_step) in [
        // `dense_150ns` packs the live set ~27×27 events per bucket at the
        // seed geometry: the adversarial pattern that regressed before the
        // adaptive bucket-width rehash, kept here to pin the win.
        ("dense_150ns", 150u64),
        ("tight_2us", 2_000),
        ("wide_66us", 66_000),
    ] {
        let steps = churn_steps(12, max_step);
        let mut g = c.benchmark_group(&format!("queue_churn_100k_{label}"));
        g.bench_function("calendar", |b| b.iter(|| black_box(churn_calendar(&steps))));
        g.bench_function("binary_heap", |b| b.iter(|| black_box(churn_heap(&steps))));
        g.finish();
    }
}

fn bench_histogram(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let samples: Vec<SimDuration> = (0..100_000)
        .map(|_| SimDuration::from_ns(rng.random_range(1..10_000_000)))
        .collect();
    c.bench_function("histogram/record_100k", |b| {
        b.iter(|| {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            black_box(h.count())
        });
    });
    let mut h = LatencyHistogram::new();
    for &s in &samples {
        h.record(s);
    }
    c.bench_function("histogram/quantile_sweep", |b| {
        b.iter(|| {
            let mut acc = SimDuration::ZERO;
            for i in 1..=99 {
                acc += h.quantile(i as f64 / 100.0);
            }
            black_box(acc)
        });
    });
}

criterion_group!(benches, bench_churn, bench_bulk, bench_histogram);
criterion_main!(benches);
