//! Fixed-seed determinism regressions: a sweep must produce bit-identical
//! results no matter how many worker threads execute it, and the calendar
//! event queue must not perturb any simulated numbers.

use altocumulus::{AcConfig, Altocumulus};
use bench::{parallel_map, poisson_trace};
use schedulers::common::RpcSystem;
use schedulers::jbsq::{Jbsq, JbsqVariant};
use schedulers::stealing::{StealingConfig, WorkStealing};
use simcore::time::SimDuration;
use workload::ServiceDistribution;

const CORES: usize = 16;
const REQUESTS: usize = 20_000;

/// A fig10-style mini sweep: three systems (including the work-stealing one,
/// whose victim selection consumes scheduler RNG) across three loads, one
/// job per (system, load) cell. Returns exact picosecond p99s and
/// completion counts so any nondeterminism shows up bit-for-bit.
fn sweep(threads: usize) -> Vec<(u64, usize)> {
    let dist = ServiceDistribution::Exponential {
        mean: SimDuration::from_us(1),
    };
    let loads = [0.5, 0.7, 0.9];
    let jobs: Vec<(usize, f64)> = (0..3)
        .flat_map(|s| loads.iter().map(move |&l| (s, l)))
        .collect();
    parallel_map(jobs, threads, |(s, load)| {
        let trace = poisson_trace(dist, load, CORES, REQUESTS, 64, 33);
        let mut sys: Box<dyn RpcSystem> = match s {
            0 => Box::new(Jbsq::new(JbsqVariant::Nebula, CORES)),
            1 => Box::new(WorkStealing::new(StealingConfig::zygos(CORES))),
            _ => Box::new(Altocumulus::new(AcConfig::ac_rss(1, CORES, dist.mean()))),
        };
        let r = sys.run(&trace);
        (r.p99().as_ps(), r.completions.len())
    })
}

#[test]
fn sweep_identical_across_thread_counts() {
    let one = sweep(1);
    assert_eq!(one.len(), 9);
    for threads in [2, 4, 8] {
        assert_eq!(one, sweep(threads), "results diverged at {threads} threads");
    }
}

#[test]
fn seeded_map_thread_invariant_over_simulations() {
    let run = |threads| {
        simcore::seeded_map(7, vec![0.6f64, 0.8, 0.9], threads, |_, load, _rng| {
            let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
            let trace = poisson_trace(dist, load, CORES, REQUESTS, 64, 12);
            let mut sys = Jbsq::new(JbsqVariant::Nebula, CORES);
            sys.run(&trace).p99().as_ps()
        })
    };
    let one = run(1);
    assert_eq!(one, run(3));
    assert_eq!(one, run(16));
}
