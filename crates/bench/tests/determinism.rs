//! Fixed-seed determinism regressions: a sweep must produce bit-identical
//! results no matter how many worker threads execute it, and the calendar
//! event queue must not perturb any simulated numbers.

use altocumulus::{AcConfig, AcResult, Altocumulus, Telemetry};
use bench::{capture_telemetry, parallel_map, poisson_trace};
use rpcstack::stack::StackModel;
use schedulers::common::RpcSystem;
use schedulers::jbsq::{Jbsq, JbsqVariant};
use schedulers::stealing::{StealingConfig, WorkStealing};
use simcore::time::SimDuration;
use workload::ServiceDistribution;

const CORES: usize = 16;
const REQUESTS: usize = 20_000;

/// A fig10-style mini sweep: three systems (including the work-stealing one,
/// whose victim selection consumes scheduler RNG) across three loads, one
/// job per (system, load) cell. Returns exact picosecond p99s and
/// completion counts so any nondeterminism shows up bit-for-bit.
fn sweep(threads: usize) -> Vec<(u64, usize)> {
    let dist = ServiceDistribution::Exponential {
        mean: SimDuration::from_us(1),
    };
    let loads = [0.5, 0.7, 0.9];
    let jobs: Vec<(usize, f64)> = (0..3)
        .flat_map(|s| loads.iter().map(move |&l| (s, l)))
        .collect();
    parallel_map(jobs, threads, |(s, load)| {
        let trace = poisson_trace(dist, load, CORES, REQUESTS, 64, 33);
        let mut sys: Box<dyn RpcSystem> = match s {
            0 => Box::new(Jbsq::new(JbsqVariant::Nebula, CORES)),
            1 => Box::new(WorkStealing::new(StealingConfig::zygos(CORES))),
            _ => Box::new(Altocumulus::new(AcConfig::ac_rss(1, CORES, dist.mean()))),
        };
        let r = sys.run(&trace);
        (r.p99().as_ps(), r.completions.len())
    })
}

#[test]
fn sweep_identical_across_thread_counts() {
    let one = sweep(1);
    assert_eq!(one.len(), 9);
    for threads in [2, 4, 8] {
        assert_eq!(one, sweep(threads), "results diverged at {threads} threads");
    }
}

/// Asserts every simulated number of two runs is identical — completions
/// (exact latencies, cores, migrated flags), migration counters, and the
/// event-loop summary. Any perturbation from telemetry shows up here.
fn assert_runs_identical(off: &AcResult, on: &AcResult) {
    assert_eq!(off.system.completions, on.system.completions);
    assert_eq!(off.system.end_time, on.system.end_time);
    assert_eq!(
        off.summary.events, on.summary.events,
        "event count diverged"
    );
    assert_eq!(off.summary.peak_queue, on.summary.peak_queue);
    assert_eq!(off.summary.end_time, on.summary.end_time);
    assert_eq!(off.stats.ticks, on.stats.ticks);
    assert_eq!(off.stats.migrate_messages, on.stats.migrate_messages);
    assert_eq!(off.stats.migrated_requests, on.stats.migrated_requests);
    assert_eq!(off.stats.nacked_messages, on.stats.nacked_messages);
    assert_eq!(off.stats.nacked_requests, on.stats.nacked_requests);
    assert_eq!(off.stats.update_messages, on.stats.update_messages);
    assert_eq!(off.stats.guard_blocked, on.stats.guard_blocked);
}

/// The issue's determinism regression: the fig10 configuration (AC_rss,
/// nanoRPC stack, bimodal-paper workload) run with telemetry off vs. on
/// (full spans + probes) must produce byte-identical figure output — same
/// completions, same stats, same event counts.
#[test]
fn fig10_config_identical_with_telemetry_on() {
    let dist = ServiceDistribution::bimodal_paper();
    let trace = poisson_trace(dist, 0.8, CORES, 40_000, 128, 10);
    let mut cfg = AcConfig::ac_rss(1, CORES, dist.mean());
    cfg.stack = StackModel::nano_rpc();

    let off = Altocumulus::new(cfg.clone()).run_detailed(&trace);
    let mut tel = capture_telemetry(trace.len());
    let on = Altocumulus::new(cfg).run_traced(&trace, &mut tel);

    assert_runs_identical(&off, &on);
    assert!(!tel.spans.is_empty(), "the traced run must capture spans");
    // One group => the periodic runtime never runs (nothing to migrate to),
    // so the probe samplers — which ride the tick — correctly stay silent.
    assert_eq!(tel.probes.sample_count(), 0);
}

/// Same invariant under the fig13a flavor: multi-group AC_int where the
/// migration machinery (MIGRATE/ACK/NACK, staging, dormancy wakes) is
/// exercised, so every telemetry hook sits on a taken code path.
#[test]
fn fig13a_config_identical_with_telemetry_on() {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let trace = poisson_trace(dist, 0.85, 64, 40_000, 5, 77);
    let mut cfg = AcConfig::ac_int(4, 16, dist.mean());
    cfg.period = SimDuration::from_ns(100);

    let off = Altocumulus::new(cfg.clone()).run_detailed(&trace);
    let mut tel: Telemetry = capture_telemetry(trace.len());
    let on = Altocumulus::new(cfg).run_traced(&trace, &mut tel);

    assert_runs_identical(&off, &on);
    assert!(
        tel.probes.sample_count() > 0,
        "multi-group runs tick, so probes must sample"
    );
    assert!(
        on.stats.migrated_requests > 0,
        "config must exercise migration for the hooks to be covered"
    );
    assert_eq!(
        on.stats.migrated_per_group.iter().sum::<u64>(),
        on.stats.migrated_requests
    );
}

#[test]
fn seeded_map_thread_invariant_over_simulations() {
    let run = |threads| {
        simcore::seeded_map(7, vec![0.6f64, 0.8, 0.9], threads, |_, load, _rng| {
            let dist = ServiceDistribution::Fixed(SimDuration::from_us(1));
            let trace = poisson_trace(dist, load, CORES, REQUESTS, 64, 12);
            let mut sys = Jbsq::new(JbsqVariant::Nebula, CORES);
            sys.run(&trace).p99().as_ps()
        })
    };
    let one = run(1);
    assert_eq!(one, run(3));
    assert_eq!(one, run(16));
}
