//! # bench — experiment harness regenerating the paper's tables and figures
//!
//! Each `src/bin/figNN_*.rs` binary reproduces one figure of the paper's
//! evaluation and prints its series as an aligned table (see
//! `EXPERIMENTS.md` for the recorded paper-vs-measured comparison). This
//! library holds the shared sweep scaffolding.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use schedulers::common::{RpcSystem, SystemResult};
use simcore::time::SimDuration;
use workload::trace::Trace;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

/// Runs `f` over `items` on up to `threads` OS threads, preserving order.
///
/// The sweeps are embarrassingly parallel (one simulation per load point);
/// scoped threads keep the code dependency-free.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(threads);
    let mut batches: Vec<Vec<(usize, T)>> = Vec::new();
    let mut it = items.into_iter().enumerate();
    loop {
        let batch: Vec<(usize, T)> = it.by_ref().take(chunk).collect();
        if batch.is_empty() {
            break;
        }
        batches.push(batch);
    }
    let mut out: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                let f = &f;
                scope.spawn(move || {
                    batch
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Builds a Poisson trace for `dist` at `load` on `cores` cores.
pub fn poisson_trace(
    dist: ServiceDistribution,
    load: f64,
    cores: usize,
    requests: usize,
    connections: u32,
    seed: u64,
) -> Trace {
    let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(requests)
        .connections(connections)
        .seed(seed)
        .build()
}

/// One measured point of a comparison sweep.
#[derive(Debug, Clone)]
pub struct MeasuredPoint {
    /// Offered load used for the trace.
    pub load: f64,
    /// Achieved throughput in MRPS.
    pub mrps: f64,
    /// 99th-percentile latency.
    pub p99: SimDuration,
    /// Fraction violating the SLO.
    pub violation_ratio: f64,
}

/// Parameters of a [`sweep_system`] run.
#[derive(Debug, Clone, Copy)]
pub struct SweepSpec {
    /// Service-time distribution.
    pub dist: ServiceDistribution,
    /// Core count the load is relative to.
    pub cores: usize,
    /// Requests per trace.
    pub requests: usize,
    /// Client connections per trace.
    pub connections: u32,
    /// SLO for violation accounting.
    pub slo: SimDuration,
    /// Trace seed.
    pub seed: u64,
}

/// Runs `system` across `loads` on freshly built traces and returns one
/// point per load.
pub fn sweep_system<S: RpcSystem>(
    system: &mut S,
    spec: &SweepSpec,
    loads: &[f64],
) -> Vec<MeasuredPoint> {
    loads
        .iter()
        .map(|&load| {
            let trace = poisson_trace(
                spec.dist,
                load,
                spec.cores,
                spec.requests,
                spec.connections,
                spec.seed,
            );
            let r = system.run(&trace);
            point_from(&r, load, spec.slo)
        })
        .collect()
}

/// Converts a [`SystemResult`] into a [`MeasuredPoint`].
pub fn point_from(r: &SystemResult, load: f64, slo: SimDuration) -> MeasuredPoint {
    MeasuredPoint {
        load,
        mrps: r.throughput_rps() / 1e6,
        p99: r.p99(),
        violation_ratio: r.violation_ratio(slo),
    }
}

/// Finds throughput@SLO in MRPS: the achieved throughput at the highest
/// load whose p99 meets `slo`.
pub fn throughput_at_slo_mrps<F>(mut run_at: F, slo: SimDuration) -> Option<f64>
where
    F: FnMut(f64) -> (SimDuration, f64),
{
    let mut p99_cache = std::collections::HashMap::new();
    let mut eval = |load: f64| {
        let key = (load * 10_000.0).round() as u64;
        let entry = p99_cache.entry(key).or_insert_with(|| run_at(load));
        entry.0
    };
    let best = schedulers::sweep::throughput_at_slo(&mut eval, slo, 0.05, 0.99, 0.02)?;
    let key = (best * 10_000.0).round() as u64;
    Some(p99_cache[&key].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_targets_load() {
        let d = ServiceDistribution::Fixed(SimDuration::from_us(1));
        let t = poisson_trace(d, 0.7, 16, 50_000, 64, 1);
        assert!((t.offered_load(16) - 0.7).abs() < 0.05);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), 7, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
        assert_eq!(parallel_map(vec![9], 4, |x: i32| x + 1), vec![10]);
    }
}
