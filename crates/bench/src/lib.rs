//! # bench — experiment harness regenerating the paper's tables and figures
//!
//! Each `src/bin/figNN_*.rs` binary reproduces one figure of the paper's
//! evaluation and prints its series as an aligned table (see
//! `EXPERIMENTS.md` for the recorded paper-vs-measured comparison). This
//! library holds the shared sweep scaffolding.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod record;

use altocumulus::telemetry::{chrome_trace, Telemetry};
use schedulers::common::{RpcSystem, SystemResult};
use simcore::time::SimDuration;
use std::path::{Path, PathBuf};
use workload::trace::Trace;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

/// Runs `f` over `items` on up to `threads` OS threads, preserving order.
///
/// The sweeps are embarrassingly parallel (one simulation per load point).
/// Delegates to [`simcore::parallel_map`], whose shared job list balances
/// uneven load points across workers while keeping results in input order —
/// identical output for any thread count.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    simcore::parallel_map(items, threads, |_, item| f(item))
}

/// Worker-thread count for sweeps: the `SWEEP_THREADS` environment variable
/// if set, otherwise the machine's available parallelism.
pub fn sweep_threads() -> usize {
    simcore::default_threads()
}

/// Builds a Poisson trace for `dist` at `load` on `cores` cores.
pub fn poisson_trace(
    dist: ServiceDistribution,
    load: f64,
    cores: usize,
    requests: usize,
    connections: u32,
    seed: u64,
) -> Trace {
    let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(requests)
        .connections(connections)
        .seed(seed)
        .build()
}

/// One measured point of a comparison sweep.
#[derive(Debug, Clone)]
pub struct MeasuredPoint {
    /// Offered load used for the trace.
    pub load: f64,
    /// Achieved throughput in MRPS.
    pub mrps: f64,
    /// 99th-percentile latency.
    pub p99: SimDuration,
    /// Fraction violating the SLO.
    pub violation_ratio: f64,
}

/// Parameters of a [`sweep_system`] run.
#[derive(Debug, Clone, Copy)]
pub struct SweepSpec {
    /// Service-time distribution.
    pub dist: ServiceDistribution,
    /// Core count the load is relative to.
    pub cores: usize,
    /// Requests per trace.
    pub requests: usize,
    /// Client connections per trace.
    pub connections: u32,
    /// SLO for violation accounting.
    pub slo: SimDuration,
    /// Trace seed.
    pub seed: u64,
}

/// Runs `system` across `loads` on freshly built traces and returns one
/// point per load.
pub fn sweep_system<S: RpcSystem>(
    system: &mut S,
    spec: &SweepSpec,
    loads: &[f64],
) -> Vec<MeasuredPoint> {
    loads
        .iter()
        .map(|&load| {
            let trace = poisson_trace(
                spec.dist,
                load,
                spec.cores,
                spec.requests,
                spec.connections,
                spec.seed,
            );
            let r = system.run(&trace);
            point_from(&r, load, spec.slo)
        })
        .collect()
}

/// Converts a [`SystemResult`] into a [`MeasuredPoint`].
pub fn point_from(r: &SystemResult, load: f64, slo: SimDuration) -> MeasuredPoint {
    MeasuredPoint {
        load,
        mrps: r.throughput_rps() / 1e6,
        p99: r.p99(),
        violation_ratio: r.violation_ratio(slo),
    }
}

/// Finds throughput@SLO in MRPS: the achieved throughput at the highest
/// load whose p99 meets `slo`.
///
/// The underlying [`schedulers::sweep::throughput_at_slo_search`] memoizes
/// evaluated loads, so `run_at` is called exactly once per probed load.
pub fn throughput_at_slo_mrps<F>(mut run_at: F, slo: SimDuration) -> Option<f64>
where
    F: FnMut(f64) -> (SimDuration, f64),
{
    let mut mrps_by_load = std::collections::HashMap::new();
    let search = schedulers::sweep::throughput_at_slo_search(
        |load| {
            let (p99, mrps) = run_at(load);
            mrps_by_load.insert(load.to_bits(), mrps);
            p99
        },
        slo,
        0.05,
        0.99,
        0.02,
    );
    search.best.map(|best| mrps_by_load[&best.to_bits()])
}

/// True iff the process arguments contain the exact flag `name`
/// (e.g. `--csv`).
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Parses `--trace-out <path>` (or `--trace-out=<path>`) from the process
/// arguments: the opt-in for telemetry capture on the figure binaries.
pub fn trace_out_arg() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(path) = a.strip_prefix("--trace-out=") {
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Builds a [`Telemetry`] recorder pre-sized for a trace of `requests`
/// requests: enough span points for every lifecycle transition (ring growth
/// only under unusually migration-heavy runs) and a per-series probe ring
/// deep enough for the figure configurations' tick counts.
pub fn capture_telemetry(requests: usize) -> Telemetry {
    Telemetry::with_capacity(requests * 8 + 1024, 16_384)
}

/// Writes the capture's Chrome-trace JSON to `path` and its probe series
/// as JSON Lines next to it (extension replaced with `probes.jsonl`, so
/// `trace.json` pairs with `trace.probes.jsonl`). Returns the probe path.
///
/// # Panics
///
/// Panics if either file cannot be written — the figure binaries treat an
/// unwritable `--trace-out` destination as a fatal usage error.
pub fn export_trace(tel: &Telemetry, path: &Path) -> PathBuf {
    let spans = chrome_trace(tel);
    std::fs::write(path, spans)
        .unwrap_or_else(|e| panic!("cannot write trace to {}: {e}", path.display()));
    let probe_path = path.with_extension("probes.jsonl");
    std::fs::write(&probe_path, tel.probes.to_jsonl())
        .unwrap_or_else(|e| panic!("cannot write probes to {}: {e}", probe_path.display()));
    probe_path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_targets_load() {
        let d = ServiceDistribution::Fixed(SimDuration::from_us(1));
        let t = poisson_trace(d, 0.7, 16, 50_000, 64, 1);
        assert!((t.offered_load(16) - 0.7).abs() < 0.05);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), 7, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
        assert_eq!(parallel_map(vec![9], 4, |x: i32| x + 1), vec![10]);
    }
}
