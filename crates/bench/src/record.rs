//! Record/replay plumbing for the figure binaries.
//!
//! A figure run recorded with `--record-out` produces a versioned
//! `TRACE/1.0` artifact (see [`simcore::trace`]) capturing the run's full
//! identity — configuration fingerprint, seed, resolved engine, per-stream
//! RNG draw counts — plus the executed event sequence at a configurable
//! granularity. The `replay` binary reconstructs the same runs from the
//! scenario registry below, re-records them at full granularity, and fails
//! at the *first divergent event* with a readable diff.
//!
//! The registry mirrors the exact cell construction of the figure binaries
//! for the Altocumulus cells worth gating (the stochastic baselines have no
//! event recorder). Construction drift between a binary and the registry is
//! caught, not silent: the configuration and workload fingerprints recorded
//! in each run header are re-derived at replay, and a mismatch reports as a
//! provenance divergence before any event comparison.

use crate::poisson_trace;
use altocumulus::config::Resilience;
use altocumulus::rack::ServerSpec;
use altocumulus::{
    event_kind_names, AcConfig, AcResult, Altocumulus, RackConfig, RackWorld, ServerDeath,
};
use rpcstack::stack::StackModel;
use simcore::faults::FaultPlan;
use simcore::time::{SimDuration, SimTime};
use simcore::trace::{
    first_divergence, fnv1a64_fold, parse_artifact, render_divergence, write_artifact_meta,
    write_run_section, Granularity, ParsedRun, Recorder, RunMeta, RunTotals,
};
use std::path::PathBuf;
use workload::trace::Trace;
use workload::ServiceDistribution;

/// Parses `--record-out <path>` (or `--record-out=<path>`) from the process
/// arguments: the opt-in for `TRACE/1.0` run recording on the figure
/// binaries. Like `--trace-out`, recording writes files and stderr only —
/// stdout stays byte-identical with or without the flag.
pub fn record_out_arg() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--record-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(path) = a.strip_prefix("--record-out=") {
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Parses `--record-granularity=<full|spans|summary>`; defaults to
/// `summary`, the golden-trace format (digest checkpoints every
/// [`simcore::trace::DEFAULT_CHECKPOINT_EVERY`] events, tens of kilobytes
/// per artifact instead of hundreds of megabytes).
pub fn record_granularity_arg() -> Granularity {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let v = if a == "--record-granularity" {
            args.next()
        } else {
            a.strip_prefix("--record-granularity=").map(String::from)
        };
        if let Some(v) = v {
            return Granularity::parse(&v)
                .unwrap_or_else(|| panic!("unknown granularity '{v}' (full|spans|summary)"));
        }
    }
    Granularity::Summary
}

/// Content fingerprint of a workload trace: FNV-1a 64 over every request's
/// arrival, service time, connection and wire size. Recorded into run
/// headers so a replay whose workload generation drifted fails at
/// provenance instead of producing a misleading event diff.
pub fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut h = fnv1a64_fold(0, trace.len() as u64);
    for r in trace.requests() {
        h = fnv1a64_fold(h, r.arrival.as_ps());
        h = fnv1a64_fold(h, r.service.as_ps());
        h = fnv1a64_fold(h, r.conn.0 as u64);
        h = fnv1a64_fold(h, r.size_bytes as u64);
    }
    h
}

/// Sweep shape of the `rack_sweep` scenario, shared by the bin and this
/// registry so construction drift between them is caught at provenance
/// (the recorded config/trace fingerprints re-derive from these).
pub mod rack_shape {
    /// `(servers, groups, group_size)` of the quick configuration.
    pub const QUICK: (usize, usize, usize) = (4, 2, 8);
    /// `(servers, groups, group_size)` of the *recordable* full
    /// configuration (the bin's 64-server cells are reported but not
    /// recorded — replaying 64 × 256-core worlds is not CI material).
    pub const FULL: (usize, usize, usize) = (16, 16, 16);
    /// Requests offered to the whole rack per cell.
    pub fn requests(quick: bool) -> usize {
        if quick {
            12_000
        } else {
            160_000
        }
    }
    /// Offered loads swept.
    pub fn loads(quick: bool) -> &'static [f64] {
        if quick {
            &[0.5, 0.8]
        } else {
            &[0.5, 0.7, 0.9]
        }
    }
    /// Load of the whole-server-death cell.
    pub const DEATH_LOAD: f64 = 0.7;
}

/// Builds the `rack_sweep` AC rack and its workload for one cell. `shape`
/// is `(servers, groups, group_size)`; `death` hardens the per-server
/// resilience policy, installs a per-server [`FaultPlan::stress`] plan and
/// kills server `servers/2` halfway through the arrival span.
pub fn rack_sweep_cell(
    shape: (usize, usize, usize),
    load: f64,
    requests: usize,
    death: bool,
) -> (RackConfig, Trace) {
    let (servers, groups, group_size) = shape;
    // The paper's Bimodal workload — dispersed service times are where
    // intra-server migration earns its keep, and (unlike the coherence-
    // bounded JBSQ baselines) AC's NoC mesh spans a full 256-core server.
    let dist = ServiceDistribution::bimodal_paper();
    let cores = groups * group_size;
    let trace = poisson_trace(
        dist,
        load,
        servers * cores,
        requests,
        (4 * servers * cores) as u32,
        11,
    );
    let mut rack = RackConfig::ac(servers, groups, group_size, dist.mean());
    rack.seed = 0xAC5;
    if death {
        let ServerSpec::Ac(cfg) = &mut rack.template else {
            unreachable!("RackConfig::ac builds an AC template")
        };
        cfg.resilience = Resilience::hardened();
        let horizon = trace.requests().last().map_or(SimTime::ZERO, |r| r.arrival);
        let workers: Vec<usize> = (0..cores).filter(|c| c % group_size != 0).collect();
        rack.server_faults = (0..servers)
            .map(|s| FaultPlan::stress(0xAC50 + s as u64, &workers, 0.25, horizon))
            .collect();
        rack.deaths = vec![ServerDeath {
            server: servers / 2,
            at: SimTime::from_ps(horizon.as_ps() / 2),
        }];
    }
    (rack, trace)
}

/// How one recordable run builds its system and workload.
enum SpecKind {
    /// The Fig. 10 AC_rss cell at one load point.
    Fig10 { load: f64, requests: usize },
    /// The fault-sweep AC_int cell at one stress intensity.
    FaultSweep { intensity: f64, requests: usize },
    /// One server's sub-run of a rack_sweep AC cell: the serial routing
    /// pass fixes the server's sub-trace, which then replays as a fully
    /// standard single-server run.
    Rack {
        load: f64,
        requests: usize,
        death: bool,
        server: usize,
    },
}

/// One recordable run of a figure scenario.
pub struct RunSpec {
    /// Unique run label within the artifact (replay keys on it).
    pub label: String,
    /// Rack topology string recorded into the run header (`None` for
    /// standalone single-server runs); compared as provenance at replay.
    pub topology: Option<String>,
    params: Vec<(String, String)>,
    kind: SpecKind,
}

impl RunSpec {
    /// Reconstructs the run's exact configuration and workload — the same
    /// construction the figure binary uses for this cell.
    pub fn build(&self) -> (AcConfig, Trace) {
        match self.kind {
            SpecKind::Fig10 { load, requests } => {
                let dist = ServiceDistribution::bimodal_paper();
                let trace = poisson_trace(dist, load, 16, requests, 128, 10);
                let mut cfg = AcConfig::ac_rss(1, 16, dist.mean());
                cfg.stack = StackModel::nano_rpc();
                (cfg, trace)
            }
            SpecKind::FaultSweep {
                intensity,
                requests,
            } => {
                let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
                let trace = poisson_trace(dist, 0.7, 64, requests, 128, 10);
                let horizon = trace.requests().last().map_or(SimTime::ZERO, |r| r.arrival);
                let worker_cores: Vec<usize> = (0..68).filter(|c| c % 16 != 0).collect();
                let plan = FaultPlan::stress(0xFA_07, &worker_cores, intensity, horizon);
                let mut cfg = AcConfig::ac_int(4, 16, dist.mean());
                cfg.resilience = Resilience::hardened();
                cfg.faults = plan;
                (cfg, trace)
            }
            SpecKind::Rack {
                load,
                requests,
                death,
                server,
            } => {
                let quick = requests == rack_shape::requests(true);
                let shape = if quick {
                    rack_shape::QUICK
                } else {
                    rack_shape::FULL
                };
                let (rack, trace) = rack_sweep_cell(shape, load, requests, death);
                let mut routing = RackWorld::new(rack.clone()).route(&trace);
                let ServerSpec::Ac(cfg) = rack.server_spec(server) else {
                    unreachable!("rack_sweep records AC cells only")
                };
                (cfg, routing.sub_traces.swap_remove(server))
            }
        }
    }
}

/// The recordable runs of `bin` at the given sweep shape, or `None` for a
/// binary with no registered scenario.
pub fn scenario_runs(bin: &str, quick: bool) -> Option<Vec<RunSpec>> {
    match bin {
        "fig10_comparison" => {
            let requests = if quick { 20_000 } else { 250_000 };
            let loads: &[f64] = if quick {
                &[0.05, 0.2, 0.5, 0.8]
            } else {
                &[
                    0.02, 0.05, 0.08, 0.1, 0.13, 0.16, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                ]
            };
            Some(
                loads
                    .iter()
                    .map(|&load| RunSpec {
                        label: format!("AC_rss@{load:.2}"),
                        topology: None,
                        params: vec![
                            ("load".into(), format!("{load:.2}")),
                            ("requests".into(), requests.to_string()),
                        ],
                        kind: SpecKind::Fig10 { load, requests },
                    })
                    .collect(),
            )
        }
        "fault_sweep" => {
            let requests = if quick { 8_000 } else { 40_000 };
            let intensities: &[f64] = if quick {
                &[0.0, 0.5]
            } else {
                &[0.0, 0.1, 0.25, 0.5, 1.0]
            };
            Some(
                intensities
                    .iter()
                    .map(|&intensity| RunSpec {
                        label: format!("AC_int@{intensity:.2}"),
                        topology: None,
                        params: vec![
                            ("intensity".into(), format!("{intensity:.2}")),
                            ("requests".into(), requests.to_string()),
                        ],
                        kind: SpecKind::FaultSweep {
                            intensity,
                            requests,
                        },
                    })
                    .collect(),
            )
        }
        "rack_sweep" => {
            let shape = if quick {
                rack_shape::QUICK
            } else {
                rack_shape::FULL
            };
            let requests = rack_shape::requests(quick);
            // One spec per (cell, server): every AC server's sub-run of
            // every healthy load point, plus the whole-server-death cell.
            let cells: Vec<(f64, bool)> = rack_shape::loads(quick)
                .iter()
                .map(|&l| (l, false))
                .chain(std::iter::once((rack_shape::DEATH_LOAD, true)))
                .collect();
            Some(
                cells
                    .iter()
                    .flat_map(|&(load, death)| {
                        // The topology string needs the exact rack config
                        // (its fingerprint covers fault plans and the
                        // death schedule, which depend on the workload
                        // horizon).
                        let (rack, _) = rack_sweep_cell(shape, load, requests, death);
                        (0..shape.0).map(move |server| RunSpec {
                            label: format!(
                                "AC{}@{load:.2}/srv{server}",
                                if death { "+death" } else { "" }
                            ),
                            topology: Some(rack.topology(server)),
                            params: vec![
                                ("load".into(), format!("{load:.2}")),
                                ("requests".into(), requests.to_string()),
                                ("death".into(), death.to_string()),
                                ("server".into(), server.to_string()),
                            ],
                            kind: SpecKind::Rack {
                                load,
                                requests,
                                death,
                                server,
                            },
                        })
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

/// Records one run into a prepared [`Recorder`], returning its artifact
/// section and the (byte-identical-to-unrecorded) run result.
pub fn record_run_with(spec: &RunSpec, rec: &mut Recorder) -> (String, AcResult) {
    let (cfg, trace) = spec.build();
    let mut sys = Altocumulus::new(cfg.clone());
    let res = sys.run_recorded(&trace, rec);
    let meta = RunMeta {
        label: spec.label.clone(),
        engine: res.engine,
        seed: cfg.seed,
        config_fp: cfg.fingerprint(),
        trace_fp: trace_fingerprint(&trace),
        topology: spec.topology.clone(),
        params: spec.params.clone(),
    };
    let totals = RunTotals {
        rng: vec![
            ("nic".into(), res.rng.nic),
            ("faults".into(), res.rng.faults),
        ],
        end_ps: res.summary.end_time.as_ps(),
        completed: res.system.completions.len() as u64,
    };
    let mut out = String::new();
    write_run_section(&mut out, &meta, rec, &totals);
    (out, res)
}

/// Records a whole scenario into one `TRACE/1.0` artifact. The recorder for
/// each run honours the `AC_TRACE_PERTURB` test knob (see
/// [`simcore::trace::PERTURB_ENV`]), so a deliberately corrupted artifact
/// can be produced for exercising the replay gate.
pub fn record_artifact(
    bin: &str,
    quick: bool,
    granularity: Granularity,
    specs: &[RunSpec],
) -> String {
    let mut out = String::new();
    write_artifact_meta(&mut out, bin, bin, quick, specs.len());
    for spec in specs {
        let mut rec = Recorder::new(granularity);
        let (section, _) = record_run_with(spec, &mut rec);
        out.push_str(&section);
    }
    out
}

/// Re-runs `spec` fresh at full granularity for replay comparison. The
/// perturbation knob is force-cleared: a perturbed *recording* must diverge
/// against an honest replay, not cancel out.
fn replay_run(spec: &RunSpec) -> ParsedRun {
    let mut rec = Recorder::new(Granularity::Full).with_perturb(None);
    let (section, _) = record_run_with(spec, &mut rec);
    let mut text = String::new();
    write_artifact_meta(&mut text, "replay", "replay", false, 1);
    text.push_str(&section);
    parse_artifact(&text)
        .expect("a fresh recording always parses")
        .runs
        .remove(0)
}

/// Outcome of replaying one artifact.
pub struct ReplayReport {
    /// Human-readable per-run report (OK lines and divergence diffs).
    pub report: String,
    /// Runs replayed.
    pub runs: usize,
    /// Runs that diverged.
    pub diverged: usize,
}

/// Replays every run of a recorded artifact against a fresh re-execution
/// and reports the first divergence of each. Returns `Err` only when the
/// artifact itself is unusable (parse failure or unknown scenario).
pub fn replay_artifact(text: &str) -> Result<ReplayReport, String> {
    let parsed = parse_artifact(text)?;
    let specs = scenario_runs(&parsed.meta.bin, parsed.meta.quick).ok_or_else(|| {
        format!(
            "no replay scenario registered for bin '{}' — recordable bins: \
             fig10_comparison, fault_sweep, rack_sweep",
            parsed.meta.bin
        )
    })?;
    let mut report = String::new();
    let mut diverged = 0;
    for run in &parsed.runs {
        let Some(spec) = specs.iter().find(|s| s.label == run.label) else {
            diverged += 1;
            report.push_str(&format!(
                "run '{}': not in the '{}' scenario (labels: {}) — artifact and \
                 registry disagree; regenerate goldens if intentional\n",
                run.label,
                parsed.meta.bin,
                specs
                    .iter()
                    .map(|s| s.label.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            continue;
        };
        let actual = replay_run(spec);
        match first_divergence(run, &actual) {
            None => report.push_str(&format!(
                "run '{}': OK ({} events, {} completed, digest 0x{:x})\n",
                run.label, actual.footer.events, actual.footer.completed, actual.footer.digest
            )),
            Some(div) => {
                diverged += 1;
                report.push_str(&render_divergence(
                    &div,
                    run,
                    &actual,
                    event_kind_names(),
                    4,
                ));
            }
        }
    }
    Ok(ReplayReport {
        report,
        runs: parsed.runs.len(),
        diverged,
    })
}
