//! Fig. 13(b) — case studies 1 and 2 on 256 cores under real-world traffic:
//! RSS baseline, scale-out Nebula + AC runtime (AC_int_rt), runtime + hw
//! messaging (AC_int_rt+msg), and the PCIe/RSS variants tuned for synthetic
//! (AC_rss_syn) vs real-world (AC_rss_rw) traffic.
//!
//! Paper shape: runtime alone ~2.2× over RSS; hardware messaging another
//! ~1.3×; AC_rss_syn 1.4× over RSS and AC_rss_rw 2.7×, landing within ~7%
//! of AC_int_rt+msg.
//!
//! ```sh
//! cargo run -p bench --release --bin fig13b_casestudies
//! ```

use altocumulus::{AcConfig, Altocumulus, Interface};
use bench::parallel_map;
use queueing::ThresholdModel;
use schedulers::common::RpcSystem;
use schedulers::dfcfs::{DFcfs, DFcfsConfig};
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::arrival::PoissonProcess;
use workload::realworld::clustered_bursty;
use workload::ServiceDistribution;

const CORES: usize = 256;
const REQUESTS: usize = 250_000;

fn real_trace(load: f64, seed: u64) -> workload::Trace {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(load, CORES, dist.mean());
    clustered_bursty(dist, rate, 16, 64, REQUESTS, seed)
}

fn tuned_rw(mut cfg: AcConfig) -> AcConfig {
    cfg.period = SimDuration::from_ns(100);
    cfg.bulk = 32;
    cfg.concurrency = 16.min(cfg.bulk);
    cfg.threshold = altocumulus::ThresholdPolicy::Model(ThresholdModel::identity());
    cfg
}

fn main() {
    let mean = SimDuration::from_ns(850);
    let slo = SimDuration::from_ns(8500);
    println!("Fig. 13(b): case studies, 256 cores, real-world traffic, SLO 8.5us\n");

    // System palette. AC_int_rt models the runtime ported onto a scale-out
    // Nebula *without* the register-level messaging hardware: migration
    // messages cross the chip through shared caches (MSR-class interface
    // cost, coarser period).
    type SystemFactory = Box<dyn Fn() -> Box<dyn RpcSystem> + Send + Sync>;
    let mk: Vec<(&str, SystemFactory)> = vec![
        (
            "RSS",
            Box::new(move || Box::new(DFcfs::new(DFcfsConfig::rss(CORES)))),
        ),
        (
            "AC_int_rt",
            Box::new(move || {
                let mut cfg = AcConfig::ac_int(16, 16, mean);
                cfg.interface = Interface::Msr;
                cfg.period = SimDuration::from_ns(400);
                Box::new(Altocumulus::new(cfg))
            }),
        ),
        (
            "AC_int_rt+msg",
            Box::new(move || Box::new(Altocumulus::new(tuned_rw(AcConfig::ac_int(16, 16, mean))))),
        ),
        (
            "AC_rss_syn",
            Box::new(move || Box::new(Altocumulus::new(AcConfig::ac_rss(16, 16, mean)))),
        ),
        (
            "AC_rss_rw",
            Box::new(move || Box::new(Altocumulus::new(tuned_rw(AcConfig::ac_rss(16, 16, mean))))),
        ),
    ];

    let rows = parallel_map(mk, 5, |(name, factory)| {
        let mut best = (0.0f64, SimDuration::ZERO);
        for load in [0.1, 0.2, 0.3, 0.5, 0.65, 0.8, 0.9, 0.95] {
            let t = real_trace(load, 61);
            let mut sys = factory();
            let r = sys.run(&t);
            let mrps = r.throughput_rps() / 1e6;
            if r.p99() <= slo && mrps > best.0 {
                best = (mrps, r.p99());
            }
        }
        (name, best)
    });

    let mut t = Table::new(&["system", "MRPS@SLO", "p99 at that point"]);
    let mut rss_base = 0.0;
    for (name, (mrps, p99)) in &rows {
        if *name == "RSS" {
            rss_base = *mrps;
        }
        t.row(&[name, &format!("{mrps:.1}"), &p99.to_string()]);
    }
    t.print();

    if rss_base > 0.0 {
        println!("\nspeedups over RSS (paper: rt 2.2x, rt+msg ~2.9x, rss_syn 1.4x, rss_rw 2.7x):");
        let mut t2 = Table::new(&["system", "speedup"]);
        for (name, (mrps, _)) in &rows {
            t2.row(&[name, &format!("{:.2}x", mrps / rss_base)]);
        }
        t2.print();
    }

    let ideal = CORES as f64 / mean.as_secs_f64() / 1e6;
    println!("\nideal throughput for 850ns requests on {CORES} cores: {ideal:.0} MRPS");
}
