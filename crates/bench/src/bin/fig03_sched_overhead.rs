//! Fig. 3 — 99th-percentile latency vs offered load for per-request
//! scheduling overheads from 5 ns to 360 ns on a 64-core system.
//!
//! Paper shape: at a 5 µs p99 target, cutting the overhead from 360 ns
//! (a work-stealing operation) to 5 ns improves sustainable load ~3×.
//!
//! ```sh
//! cargo run -p bench --release --bin fig03_sched_overhead
//! ```

use bench::{parallel_map, poisson_trace};
use schedulers::common::RpcSystem;
use schedulers::ideal::{CentralQueue, CentralQueueConfig};
use schedulers::sweep::throughput_at_slo;
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::ServiceDistribution;

fn main() {
    let cores = 64;
    let dist = ServiceDistribution::Exponential {
        mean: SimDuration::from_us(1),
    };
    let overheads_ns = [5u64, 45, 90, 135, 180, 360];
    let loads = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95];
    let slo = SimDuration::from_us(5);
    let requests = 300_000;

    println!("Fig. 3: p99 (us) vs load, 64 cores, 1us mean service, overhead added per request\n");

    // One job per (overhead, load) cell: finer grain than one job per
    // overhead, so the deterministic executor can balance the expensive
    // high-load simulations across workers.
    let jobs: Vec<(u64, f64)> = overheads_ns
        .iter()
        .flat_map(|&oh| loads.iter().map(move |&load| (oh, load)))
        .collect();
    let cells = parallel_map(jobs, bench::sweep_threads(), |(oh, load)| {
        let trace = poisson_trace(dist, load, cores, requests, 256, 90);
        let mut sys = CentralQueue::new(CentralQueueConfig {
            cores,
            sched_overhead: SimDuration::from_ns(oh),
        });
        sys.run(&trace).p99()
    });
    let series: Vec<&[SimDuration]> = cells.chunks(loads.len()).collect();

    let mut header: Vec<String> = vec!["load".into()];
    header.extend(overheads_ns.iter().map(|o| format!("p99us@{o}ns")));
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&hdr);
    for (li, &load) in loads.iter().enumerate() {
        let mut row: Vec<String> = vec![format!("{load:.2}")];
        for s in &series {
            row.push(format!("{:.2}", s[li].as_us_f64()));
        }
        t.row_owned(row);
    }
    t.print();

    // Throughput@SLO per overhead (the ~3x headline). Each bisection is
    // serial in itself, so fan the independent searches out instead.
    println!("\nmax load with p99 <= 5us:");
    let bests = parallel_map(overheads_ns.to_vec(), bench::sweep_threads(), |oh| {
        throughput_at_slo(
            |load| {
                let trace = poisson_trace(dist, load, cores, requests, 256, 90);
                let mut sys = CentralQueue::new(CentralQueueConfig {
                    cores,
                    sched_overhead: SimDuration::from_ns(oh),
                });
                sys.run(&trace).p99()
            },
            slo,
            0.05,
            0.99,
            0.01,
        )
    });
    let mut t2 = Table::new(&["overhead_ns", "load@SLO"]);
    for (&oh, best) in overheads_ns.iter().zip(&bests) {
        t2.row(&[
            &oh.to_string(),
            &best.map_or("-".to_string(), |b| format!("{b:.2}")),
        ]);
    }
    t2.print();
}
