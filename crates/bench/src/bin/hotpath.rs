//! Hot-path measurement harness: events/sec and peak event-queue
//! population for the `sim_throughput` configurations, emitted as
//! `BENCH_hotpath.json` for before/after comparison (see `bench_hotpath.sh`).
//!
//! Each case runs several iterations and reports the *fastest* wall time —
//! best-of is far more stable than a mean on a shared/noisy machine, and the
//! minimum is the closest observable to the true cost of the code.

use altocumulus::telemetry::phase_table;
use altocumulus::{AcConfig, Altocumulus, ControlPlane, RackWorld, WorkerPlane};
use bench::record::{rack_shape, rack_sweep_cell};
use bench::{capture_telemetry, export_trace, trace_out_arg};
use schedulers::common::RpcSystem;
use schedulers::jbsq::{Jbsq, JbsqVariant};
use simcore::time::SimDuration;
use std::time::Instant;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

const ITERS: usize = 7;

struct Measured {
    wall_ms: f64,
    events: u64,
    peak_queue: usize,
}

fn trace(cores: usize, requests: usize, load: f64) -> workload::Trace {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(requests)
        .connections(16)
        .seed(1)
        .build()
}

fn measure(cfg: &AcConfig, t: &workload::Trace) -> Measured {
    let mut best = Measured {
        wall_ms: f64::MAX,
        events: 0,
        peak_queue: 0,
    };
    for _ in 0..ITERS {
        let mut sys = Altocumulus::new(cfg.clone());
        let start = Instant::now();
        let r = sys.run_detailed(t);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.system.completions.len(), t.len());
        best.wall_ms = best.wall_ms.min(ms);
        best.events = r.summary.events;
        best.peak_queue = r.summary.peak_queue;
    }
    best
}

/// Measure the quiet-window parallel engine at an explicit thread count,
/// asserting that its invariant outputs (event count, peak serial-queue
/// occupancy) are byte-identical to the per-event-worker-plane serial
/// oracle — the bench doubles as a determinism gate on every refresh. The
/// parallel engine always runs `WorkerPlane::EventDriven` internally (the
/// quiet-window protocol owns the queue), so its event count matches the
/// oracle, not the elided serial row; the virtual-ledger peak is identical
/// across all three engines.
fn measure_par(cfg: &AcConfig, t: &workload::Trace, threads: usize, oracle: &Measured) -> Measured {
    let mut best = Measured {
        wall_ms: f64::MAX,
        events: 0,
        peak_queue: 0,
    };
    for _ in 0..ITERS {
        let mut sys = Altocumulus::new(cfg.clone());
        let start = Instant::now();
        let r = sys.run_detailed_par(t, threads);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.system.completions.len(), t.len());
        best.wall_ms = best.wall_ms.min(ms);
        best.events = r.summary.events;
        best.peak_queue = r.summary.peak_queue;
    }
    assert_eq!(best.events, oracle.events, "parallel engine diverged");
    assert_eq!(
        best.peak_queue, oracle.peak_queue,
        "parallel engine diverged"
    );
    best
}

fn hw_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn emit(label: &str, m: &Measured, trailing_comma: bool) {
    let eps = m.events as f64 / (m.wall_ms / 1e3);
    println!("  \"{label}\": {{");
    println!("    \"wall_ms\": {:.2},", m.wall_ms);
    println!("    \"events\": {},", m.events);
    println!("    \"events_per_sec\": {eps:.0},");
    // Per-event cost in nanoseconds — the flatness metric: a size-independent
    // hot path keeps this constant as the mesh grows.
    println!(
        "    \"ns_per_event\": {:.1},",
        m.wall_ms * 1e6 / m.events as f64
    );
    println!("    \"peak_event_queue\": {},", m.peak_queue);
    // Recorded per row (not just globally) so drift checks can tell
    // whether a PAR_THREADS row was measured with real parallelism or is
    // just engine overhead on a single hardware thread.
    println!("    \"hw_threads\": {}", hw_threads());
    println!("  }}{}", if trailing_comma { "," } else { "" });
}

fn main() {
    let mean = SimDuration::from_ns(850);

    // Case 1: the historical 64-core configuration (4 groups x 16).
    let t64 = trace(64, 20_000, 0.8);
    let small = measure(&AcConfig::ac_int(4, 16, mean), &t64);

    // Case 2: the paper-scale 256-core mesh (16 groups x 16). Measured in
    // three engine configurations so both elision wins stay recorded
    // head-to-head: fully elided (default: analytic worker timelines +
    // manager mailboxes), worker plane event-driven (isolates the
    // worker-elision win), and fully event-driven (the pre-elision
    // baseline: one event per UPDATE, tick, delivery and completion).
    let t256 = trace(256, 40_000, 0.6);
    let big_cfg = AcConfig::ac_int(16, 16, mean);
    let big_elided = measure(&big_cfg, &t256);
    let mut wp_oracle_cfg = big_cfg.clone();
    wp_oracle_cfg.worker_plane = WorkerPlane::EventDriven;
    let big_wp_oracle = measure(&wp_oracle_cfg, &t256);
    let mut legacy_cfg = wp_oracle_cfg.clone();
    legacy_cfg.control_plane = ControlPlane::EventDriven;
    let big_legacy = measure(&legacy_cfg, &t256);
    // The virtual-ledger peak is an engine invariant: elided and per-event
    // worker planes must report the identical value.
    assert_eq!(
        big_elided.peak_queue, big_wp_oracle.peak_queue,
        "worker-plane elision perturbed the virtual peak ledger"
    );

    // Parallel-engine rows: the same 16x16 case through the quiet-window
    // engine at 2/4/8 worker threads, plus a 1024-core (32x32 mesh, 64
    // groups x 16) case. Each parallel row asserts byte-identical
    // invariants against the per-event-worker-plane serial oracle.
    let par16: Vec<(usize, Measured)> = [2usize, 4, 8]
        .iter()
        .map(|&n| (n, measure_par(&big_cfg, &t256, n, &big_wp_oracle)))
        .collect();
    let t1024 = trace(1024, 60_000, 0.6);
    let huge_cfg = AcConfig::ac_int(64, 16, mean);
    let huge = measure(&huge_cfg, &t1024);
    let mut huge_oracle_cfg = huge_cfg.clone();
    huge_oracle_cfg.worker_plane = WorkerPlane::EventDriven;
    let huge_wp_oracle = measure(&huge_oracle_cfg, &t1024);
    assert_eq!(
        huge.peak_queue, huge_wp_oracle.peak_queue,
        "worker-plane elision perturbed the virtual peak ledger"
    );
    let par32: Vec<(usize, Measured)> = [2usize, 4, 8]
        .iter()
        .map(|&n| (n, measure_par(&huge_cfg, &t1024, n, &huge_wp_oracle)))
        .collect();

    // Rack tier: the CI quick shape (4 AC servers x 16 cores) behind the
    // two-level scheduler, healthy, at the top quick load. One iteration is
    // the full stack — serial ToR routing pass, four server simulations,
    // deterministic merge — so this row moves when any rack layer does.
    let (rack_cfg, rack_trace) =
        rack_sweep_cell(rack_shape::QUICK, 0.8, rack_shape::requests(true), false);
    let rack_world = RackWorld::new(rack_cfg);
    let mut rack = Measured {
        wall_ms: f64::MAX,
        events: 0,
        peak_queue: 0,
    };
    for _ in 0..ITERS {
        let start = Instant::now();
        let r = rack_world.run(&rack_trace, 1);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.system.completions.len(), rack_trace.len());
        rack.wall_ms = rack.wall_ms.min(ms);
        rack.events = r.events;
        rack.peak_queue = r.peak_queue;
    }

    // Nebula baseline: wall time only (RpcSystem::run has no summary).
    let mut nb_best_ms = f64::MAX;
    for _ in 0..ITERS {
        let mut sys = Jbsq::new(JbsqVariant::Nebula, 64);
        let start = Instant::now();
        let r = sys.run(&t64);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.completions.len(), t64.len());
        nb_best_ms = nb_best_ms.min(ms);
    }

    let mgr_cut = 100.0 * (1.0 - big_wp_oracle.events as f64 / big_legacy.events as f64);
    let wp_cut = 100.0 * (1.0 - big_elided.events as f64 / big_wp_oracle.events as f64);
    let total_cut = 100.0 * (1.0 - big_elided.events as f64 / big_legacy.events as f64);

    // Hand-rolled JSON (no serde in the workspace). The "prior" block holds
    // the pre-change numbers measured on the same machine for this trace:
    // criterion medians from the PR-1 build, and the upfront pre-push queue
    // population (every arrival resident at t=0).
    println!("{{");
    println!(
        "  \"config_64\": \"20k requests, 64 cores, load 0.8, fixed 850ns, 16 conns, seed 1\","
    );
    println!("  \"config_256\": \"40k requests, 256 cores (16x16), load 0.6, fixed 850ns, 16 conns, seed 1\",");
    println!("  \"config_1024\": \"60k requests, 1024 cores (32x32 mesh, 64 groups x 16), load 0.6, fixed 850ns, 16 conns, seed 1\",");
    println!("  \"config_rack\": \"12k requests, 4 AC servers x 16 cores, load 0.8, bimodal(paper), two-level ToR routing\",");
    println!("  \"iters_best_of\": {ITERS},");
    println!("  \"hw_threads\": {},", hw_threads());
    println!("  \"par_note\": \"PAR_THREADS rows use the quiet-window parallel engine; invariants asserted byte-identical to serial. With hw_threads=1 these rows measure engine overhead, not speedup.\",");
    emit("altocumulus_int_4x16", &small, true);
    emit("altocumulus_int_16x16_elided", &big_elided, true);
    for (n, m) in &par16 {
        emit(&format!("altocumulus_int_16x16_elided_par{n}"), m, true);
    }
    emit("altocumulus_int_32x32_elided", &huge, true);
    for (n, m) in &par32 {
        emit(&format!("altocumulus_int_32x32_elided_par{n}"), m, true);
    }
    emit(
        "altocumulus_int_16x16_wp_event_driven",
        &big_wp_oracle,
        true,
    );
    emit(
        "altocumulus_int_32x32_wp_event_driven",
        &huge_wp_oracle,
        true,
    );
    emit("altocumulus_int_16x16_event_driven", &big_legacy, true);
    emit("rack_4x16_ac", &rack, true);
    println!("  \"manager_plane_event_cut_pct\": {mgr_cut:.1},");
    println!("  \"worker_plane_event_cut_pct\": {wp_cut:.1},");
    println!("  \"total_event_cut_pct\": {total_cut:.1},");
    println!("  \"nebula_jbsq\": {{ \"wall_ms\": {nb_best_ms:.2} }},");
    println!("  \"prior\": {{");
    println!(
        "    \"altocumulus_int_4x16\": {{ \"wall_ms\": 12.54, \"peak_event_queue\": 20004 }},"
    );
    println!("    \"nebula_jbsq\": {{ \"wall_ms\": 7.88 }},");
    println!("    \"note\": \"criterion medians before streaming arrivals + scratch reuse; peak queue was O(trace): all 20k arrivals pre-pushed\"");
    println!("  }}");
    println!("}}");

    // Optional telemetry export of the 64-core case. Stdout is the bench
    // JSON consumed by bench_hotpath.sh, so everything here goes to files
    // and stderr. The traced run must reproduce the measured run exactly
    // (the non-perturbation invariant) — asserted, not assumed.
    if let Some(path) = trace_out_arg() {
        let mut tel = capture_telemetry(t64.len());
        let mut sys = Altocumulus::new(AcConfig::ac_int(4, 16, mean));
        let r = sys.run_traced(&t64, &mut tel);
        assert_eq!(
            r.summary.events, small.events,
            "telemetry perturbed the run"
        );
        assert_eq!(
            r.summary.peak_queue, small.peak_queue,
            "telemetry perturbed the run"
        );
        let probes = export_trace(&tel, &path);
        eprintln!(
            "trace: {} span points -> {} | {} probe samples -> {}",
            tel.spans.len(),
            path.display(),
            tel.probes.sample_count(),
            probes.display()
        );
        eprintln!("\nphase latency breakdown (64-core case):");
        eprintln!("{}", phase_table(&tel).render());
    }
}
