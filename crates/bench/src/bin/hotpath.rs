//! Hot-path measurement harness: events/sec and peak event-queue
//! population for the `sim_throughput` configurations, emitted as
//! `BENCH_hotpath.json` for before/after comparison (see `bench_hotpath.sh`).
//!
//! Each case runs several iterations and reports the *fastest* wall time —
//! best-of is far more stable than a mean on a shared/noisy machine, and the
//! minimum is the closest observable to the true cost of the code.

use altocumulus::{AcConfig, Altocumulus};
use schedulers::common::RpcSystem;
use schedulers::jbsq::{Jbsq, JbsqVariant};
use simcore::time::SimDuration;
use std::time::Instant;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

const ITERS: usize = 7;

fn trace() -> workload::Trace {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(0.8, 64, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(20_000)
        .connections(16)
        .seed(1)
        .build()
}

fn main() {
    let t = trace();
    let mean = SimDuration::from_ns(850);

    // Altocumulus: wall time plus event-loop accounting from run_detailed.
    let mut ac_best_ms = f64::MAX;
    let mut ac_events = 0u64;
    let mut ac_peak_queue = 0usize;
    for _ in 0..ITERS {
        let mut sys = Altocumulus::new(AcConfig::ac_int(4, 16, mean));
        let start = Instant::now();
        let r = sys.run_detailed(&t);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.system.completions.len(), t.len());
        ac_best_ms = ac_best_ms.min(ms);
        ac_events = r.summary.events;
        ac_peak_queue = r.summary.peak_queue;
    }
    let ac_events_per_sec = ac_events as f64 / (ac_best_ms / 1e3);

    // Nebula baseline: wall time only (RpcSystem::run has no summary).
    let mut nb_best_ms = f64::MAX;
    for _ in 0..ITERS {
        let mut sys = Jbsq::new(JbsqVariant::Nebula, 64);
        let start = Instant::now();
        let r = sys.run(&t);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.completions.len(), t.len());
        nb_best_ms = nb_best_ms.min(ms);
    }

    // Hand-rolled JSON (no serde in the workspace). The "prior" block holds
    // the pre-change numbers measured on the same machine for this trace:
    // criterion medians from the PR-1 build, and the upfront pre-push queue
    // population (every arrival resident at t=0).
    println!("{{");
    println!("  \"config\": \"20k requests, 64 cores, load 0.8, fixed 850ns, 16 conns, seed 1\",");
    println!("  \"iters_best_of\": {ITERS},");
    println!("  \"altocumulus_int_4x16\": {{");
    println!("    \"wall_ms\": {ac_best_ms:.2},");
    println!("    \"events\": {ac_events},");
    println!("    \"events_per_sec\": {ac_events_per_sec:.0},");
    println!("    \"peak_event_queue\": {ac_peak_queue}");
    println!("  }},");
    println!("  \"nebula_jbsq\": {{ \"wall_ms\": {nb_best_ms:.2} }},");
    println!("  \"prior\": {{");
    println!(
        "    \"altocumulus_int_4x16\": {{ \"wall_ms\": 12.54, \"peak_event_queue\": 20004 }},"
    );
    println!("    \"nebula_jbsq\": {{ \"wall_ms\": 7.88 }},");
    println!("    \"note\": \"criterion medians before streaming arrivals + scratch reuse; peak queue was O(trace): all 20k arrivals pre-pushed\"");
    println!("  }}");
    println!("}}");
}
