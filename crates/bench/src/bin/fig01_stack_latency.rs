//! Fig. 1 — on-CPU latency for different RPC stacks, split into processing
//! (stack) and scheduling time, for a 300 B request.
//!
//! Paper shape: TCP/IP tens of µs (mostly processing), eRPC ~1 µs, nanoRPC
//! tens of ns — so the bottleneck shifts from processing to scheduling.
//!
//! ```sh
//! cargo run -p bench --release --bin fig01_stack_latency
//! ```

use interconnect::offchip::MemoryModel;
use rpcstack::stack::StackModel;
use simcore::report::Table;
use simcore::time::SimDuration;

fn main() {
    println!("Fig. 1: on-CPU latency handling a 300B RPC (request 300B, response 64B)\n");
    let mem = MemoryModel::default();

    // Representative scheduling cost per stack's era:
    // - TCP/IP: kernel scheduler wakeups/context switches (~5us).
    // - eRPC: user-level dispatch via work stealing (2-3 cache misses).
    // - nanoRPC: hardware JBSQ decision at NIC speed (~15ns).
    let rows: Vec<(StackModel, SimDuration, &str)> = vec![
        (
            StackModel::tcp_ip(),
            SimDuration::from_us(5),
            "kernel scheduler",
        ),
        (StackModel::erpc(), mem.steal_cost(3), "s/w work stealing"),
        (StackModel::nano_rpc(), SimDuration::from_ns(15), "h/w JBSQ"),
    ];

    let mut t = Table::new(&[
        "stack",
        "processing",
        "scheduling",
        "total",
        "sched share",
        "scheduler modeled",
    ]);
    for (stack, sched, label) in rows {
        let processing = stack.round_trip(300, 64);
        let total = processing + sched;
        t.row(&[
            &stack.kind.to_string(),
            &processing.to_string(),
            &sched.to_string(),
            &total.to_string(),
            &format!("{:.1}%", sched.as_ns_f64() / total.as_ns_f64() * 100.0),
            label,
        ]);
    }
    t.print();
    println!(
        "\nTakeaway (paper §I): once processing drops below 1us (eRPC, nanoRPC),\n\
         scheduling dominates — it is the new bottleneck Altocumulus attacks."
    );
}
