//! Validates exported telemetry artifacts: a Chrome-trace JSON (must parse
//! and have well-nested per-track spans) and a probe JSONL (every line must
//! match the probe schema). An optional third argument is a `TRACE/1.0`
//! run-record artifact (from `--record-out`), schema-validated without
//! replaying it: version fields, required header keys, strictly monotone
//! `(time, seq)` event rank, checkpoint/footer consistency. Exits non-zero
//! on the first violation — the CI smoke step runs this against fresh
//! `hotpath --trace-out` and `fig10_comparison --record-out` exports.
//!
//! ```sh
//! cargo run -p bench --release --bin trace_lint -- trace.json trace.probes.jsonl [run.trace.jsonl]
//! ```

use simcore::telemetry::{validate_chrome_trace, validate_probe_jsonl};
use simcore::trace::validate_artifact;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, probe_path, record_path) = match args.as_slice() {
        [t, p] => (t, p, None),
        [t, p, r] => (t, p, Some(r)),
        _ => {
            eprintln!("usage: trace_lint <trace.json> <probes.jsonl> [run.trace.jsonl]");
            return ExitCode::FAILURE;
        }
    };

    let trace = match std::fs::read_to_string(trace_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_lint: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_chrome_trace(&trace) {
        Ok(stats) => println!(
            "{trace_path}: OK ({} events, {} tracks, well-nested)",
            stats.events, stats.tracks
        ),
        Err(e) => {
            eprintln!("trace_lint: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let probes = match std::fs::read_to_string(probe_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_lint: cannot read {probe_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_probe_jsonl(&probes) {
        Ok(n) if n > 0 => println!("{probe_path}: OK ({n} samples)"),
        Ok(_) => {
            eprintln!("trace_lint: {probe_path}: no probe samples");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("trace_lint: {probe_path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(record_path) = record_path {
        let record = match std::fs::read_to_string(record_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace_lint: cannot read {record_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_artifact(&record) {
            Ok(stats) => println!(
                "{record_path}: OK ({} runs, {} events, {} spans, {} checkpoints)",
                stats.runs, stats.events, stats.spans, stats.checkpoints
            ),
            Err(e) => {
                eprintln!("trace_lint: {record_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
