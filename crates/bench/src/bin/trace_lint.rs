//! Validates exported telemetry artifacts: a Chrome-trace JSON (must parse
//! and have well-nested per-track spans) and a probe JSONL (every line must
//! match the probe schema). Exits non-zero on the first violation — the CI
//! smoke step runs this against a fresh `hotpath --trace-out` export.
//!
//! ```sh
//! cargo run -p bench --release --bin trace_lint -- trace.json trace.probes.jsonl
//! ```

use simcore::telemetry::{validate_chrome_trace, validate_probe_jsonl};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_path, probe_path] = args.as_slice() else {
        eprintln!("usage: trace_lint <trace.json> <probes.jsonl>");
        return ExitCode::FAILURE;
    };

    let trace = match std::fs::read_to_string(trace_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_lint: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_chrome_trace(&trace) {
        Ok(stats) => println!(
            "{trace_path}: OK ({} events, {} tracks, well-nested)",
            stats.events, stats.tracks
        ),
        Err(e) => {
            eprintln!("trace_lint: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let probes = match std::fs::read_to_string(probe_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_lint: cannot read {probe_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_probe_jsonl(&probes) {
        Ok(n) if n > 0 => println!("{probe_path}: OK ({n} samples)"),
        Ok(_) => {
            eprintln!("trace_lint: {probe_path}: no probe samples");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("trace_lint: {probe_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
