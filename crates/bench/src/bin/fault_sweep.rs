//! Fault sweep — SLO-violation vs fault-intensity curves for Altocumulus
//! against the non-resilient baselines.
//!
//! Every system runs the *same* healthy workload (64 cores, fixed 850 ns
//! service, load 0.7) under [`simcore::faults::FaultPlan::stress`] plans of
//! increasing intensity: straggler intervals, permanent worker-core deaths
//! and (for Altocumulus, the only system with a modelled NoC) message
//! drop/delay on the gossip channel. Altocumulus runs the hardened
//! resilience policy — NACK/timeout backoff, staged-migration timeouts,
//! manager takeover — so dead cores' requests are resteered; the baselines
//! lose whatever a dead core held (d-FCFS additionally loses everything the
//! RSS hash keeps steering at the dead queue).
//!
//! A request that never completes is an SLO violation by definition, so the
//! reported violation ratio is `(late + lost) / offered` — comparable
//! across systems with different loss behavior.
//!
//! Output is deterministic (fixed seeds, deterministic parallel sweep):
//! byte-identical across invocations and thread counts. CI runs
//! `--quick` twice and diffs the bytes.
//!
//! ```sh
//! cargo run -p bench --release --bin fault_sweep            # full curve
//! cargo run -p bench --release --bin fault_sweep -- --quick # CI smoke
//! ```

use altocumulus::config::Resilience;
use altocumulus::{AcConfig, Altocumulus};
use bench::record::{record_artifact, record_granularity_arg, record_out_arg, scenario_runs};
use bench::{has_flag, parallel_map, poisson_trace};
use schedulers::common::RpcSystem;
use schedulers::dfcfs::{DFcfs, DFcfsConfig};
use schedulers::jbsq::{Jbsq, JbsqConfig, JbsqVariant};
use simcore::faults::FaultPlan;
use simcore::report::Table;
use simcore::time::{SimDuration, SimTime};
use workload::ServiceDistribution;

const CORES: usize = 64;
const GROUPS: usize = 4;
const GROUP_SIZE: usize = 16;
const LOAD: f64 = 0.7;
const PLAN_SEED: u64 = 0xFA_07;

struct Cell {
    system: &'static str,
    intensity: f64,
    completed: usize,
    offered: usize,
    p99: SimDuration,
    violations: usize,
    fault_note: String,
}

/// `(late + lost) / offered`: a request that never completed violates any
/// SLO.
fn violations(r: &schedulers::common::SystemResult, offered: usize, slo: SimDuration) -> usize {
    let late = r.completions.iter().filter(|c| c.latency() > slo).count();
    late + (offered - r.completions.len())
}

/// Worker cores eligible to fail under each system's core map. Altocumulus
/// reserves one manager tile per group; the flat baselines use every core.
fn worker_cores(system: &str) -> Vec<usize> {
    match system {
        "AC_int" => (0..CORES + GROUPS)
            .filter(|c| c % GROUP_SIZE != 0)
            .collect(),
        _ => (0..CORES).collect(),
    }
}

fn run_cell(system: &'static str, intensity: f64, quick: bool, slo: SimDuration) -> Cell {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let requests = if quick { 8_000 } else { 40_000 };
    let trace = poisson_trace(dist, LOAD, CORES, requests, 128, 10);
    let horizon = trace.requests().last().map_or(SimTime::ZERO, |r| r.arrival);
    let plan = FaultPlan::stress(PLAN_SEED, &worker_cores(system), intensity, horizon);
    let (r, note) = match system {
        "AC_int" => {
            // The paper's 64-core deployment: 4 groups of 16 (one manager +
            // 15 workers each), hardened degradation policy.
            let mut cfg = AcConfig::ac_int(GROUPS, GROUP_SIZE, dist.mean());
            cfg.resilience = Resilience::hardened();
            cfg.faults = plan;
            let res = Altocumulus::new(cfg).run_detailed(&trace);
            let f = res.faults;
            let note = if intensity == 0.0 {
                String::new()
            } else {
                format!(
                    "fail={} resteer={} timeout={} drop={}",
                    f.worker_failures, f.resteered_requests, f.migrate_timeouts, f.updates_dropped
                )
            };
            (res.system, note)
        }
        "d-FCFS" => {
            let cfg = DFcfsConfig {
                faults: plan,
                ..DFcfsConfig::rss(CORES)
            };
            (DFcfs::new(cfg).run(&trace), String::new())
        }
        "Nebula" => {
            let cfg = JbsqConfig {
                faults: plan,
                ..JbsqConfig::of(JbsqVariant::Nebula, CORES)
            };
            (
                Jbsq::with_config(JbsqVariant::Nebula, cfg).run(&trace),
                String::new(),
            )
        }
        other => panic!("unknown system {other}"),
    };
    Cell {
        system,
        intensity,
        completed: r.completions.len(),
        offered: requests,
        p99: r.p99(),
        violations: violations(&r, requests, slo),
        fault_note: note,
    }
}

fn main() {
    let quick = has_flag("--quick");
    let slo = SimDuration::from_us(10);
    let systems = ["AC_int", "d-FCFS", "Nebula"];
    let intensities: &[f64] = if quick {
        &[0.0, 0.5]
    } else {
        &[0.0, 0.1, 0.25, 0.5, 1.0]
    };

    println!(
        "Fault sweep: {CORES} cores, Fixed(850ns), load {LOAD:.1}, SLO p99 <= {}us{}",
        slo.as_us_f64(),
        if quick { " [quick]" } else { "" }
    );
    println!("violations count late + never-completed requests\n");

    let jobs: Vec<(&'static str, f64)> = systems
        .iter()
        .flat_map(|&s| intensities.iter().map(move |&i| (s, i)))
        .collect();
    let cells = parallel_map(jobs, bench::sweep_threads(), |(s, i)| {
        run_cell(s, i, quick, slo)
    });

    let csv = has_flag("--csv");
    let mut t = Table::new(&[
        "system",
        "intensity",
        "completed%",
        "p99_us",
        "viol%",
        "fault_actions",
    ]);
    for c in &cells {
        t.row(&[
            c.system,
            &format!("{:.2}", c.intensity),
            &format!("{:.1}", 100.0 * c.completed as f64 / c.offered as f64),
            &format!("{:.1}", c.p99.as_us_f64()),
            &format!("{:.1}", 100.0 * c.violations as f64 / c.offered as f64),
            &c.fault_note,
        ]);
    }
    if csv {
        print!("{}", t.to_csv());
    } else {
        t.print();
    }

    // Headline: graceful degradation means AC's violation curve stays at or
    // below the baselines' at every injected intensity.
    let viol = |sys: &str, i: f64| {
        cells
            .iter()
            .find(|c| c.system == sys && c.intensity == i)
            .map(|c| c.violations as f64 / c.offered as f64)
            .unwrap_or(1.0)
    };
    let worst = intensities
        .iter()
        .map(|&i| viol("AC_int", i) - viol("d-FCFS", i).min(viol("Nebula", i)))
        .fold(f64::MIN, f64::max);
    println!(
        "\nAC_int worst-case violation gap vs best baseline: {:+.1} pp ({})",
        worst * 100.0,
        if worst <= 0.0 {
            "degrades no worse at every intensity"
        } else {
            "degrades worse somewhere"
        }
    );

    // Optional run recording (see fig10_comparison): re-executes the
    // AC_int cells with a `TRACE/1.0` recorder attached. Files + stderr
    // only — stdout stays byte-identical.
    if let Some(path) = record_out_arg() {
        let gran = record_granularity_arg();
        let specs = scenario_runs("fault_sweep", quick).unwrap();
        let artifact = record_artifact("fault_sweep", quick, gran, &specs);
        std::fs::write(&path, &artifact).expect("write record artifact");
        eprintln!(
            "record ({} AC_int runs, {} granularity): {} bytes -> {}",
            specs.len(),
            gran.label(),
            artifact.len(),
            path.display()
        );
    }
}
