//! Fig. 14 — MICA over nanoRPC on 64 cores under real-world traffic:
//! p99 latency (log scale in the paper) and SLO-violation ratio vs
//! throughput, comparing Nebula with AC_rss-ISA and AC_rss-MSR.
//!
//! Paper shape: Nebula holds sub-µs p99 until ~250 MRPS, then collapses
//! (head-of-line blocking behind SCANs, up to 47% violations); AC_rss-ISA
//! degrades gracefully to ~2.5× higher throughput; AC_rss-MSR tracks ISA
//! at ~91% of its throughput with noisier tails.
//!
//! ```sh
//! cargo run -p bench --release --bin fig14_mica
//! ```

use altocumulus::{AcConfig, Altocumulus, Interface};
use bench::parallel_map;
use mica::workload::KvsWorkload;
use schedulers::common::RpcSystem;
use schedulers::jbsq::{Jbsq, JbsqVariant};
use simcore::report::Table;
use simcore::time::SimDuration;

const CORES: usize = 64;
const REQUESTS: usize = 300_000;

fn ac_config(interface: Interface, mean: SimDuration) -> AcConfig {
    // 4 managers x 16-core groups (§IX-D); nanoRPC-era stack; one dispatch
    // op moves a cache line of descriptors. The MSR variant is tuned for
    // its interface (§VI: "a larger Period usually couples with a larger
    // Bulk"): its ~300ns-per-invocation runtime is amortized over a longer
    // period so the manager keeps most of its dispatch bandwidth.
    let mut cfg = AcConfig::ac_rss(4, 16, mean);
    cfg.stack = rpcstack::stack::StackModel::nano_rpc();
    cfg.interface = interface;
    cfg.dispatch_batch = 8;
    // Fig. 8's local policy: workers hold up to 2 requests, so the
    // manager-to-worker transfer is prefetch-hidden at 100ns-scale services.
    cfg.local_bound = 2;
    cfg.threshold = altocumulus::ThresholdPolicy::Model(queueing::ThresholdModel::identity());
    match interface {
        Interface::Isa => {
            cfg.bulk = 32;
            cfg.concurrency = 4;
            cfg.period = SimDuration::from_ns(100);
        }
        Interface::Msr => {
            cfg.bulk = 40;
            cfg.concurrency = 4;
            cfg.period = SimDuration::from_ns(2_000);
        }
    }
    cfg
}

fn main() {
    let kvs = KvsWorkload::fig14();
    let mean = kvs.mean_service();
    let capacity_mrps = CORES as f64 / mean.as_secs_f64() / 1e6;
    let slo = SimDuration::from_ns_f64(mean.as_ns_f64() * 10.0);
    println!(
        "Fig. 14: MICA GET/SET (~{}) + 0.5% SCAN (~{}), 64 cores, SLO {}\n\
         mix mean {} => ideal capacity ~{:.0} MRPS\n",
        kvs.service.get_time(kvs.value_bytes),
        kvs.service.scan_time(kvs.value_bytes),
        slo,
        mean,
        capacity_mrps
    );

    let loads: Vec<f64> = vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    struct Series {
        name: &'static str,
        pts: Vec<(f64, SimDuration, f64)>, // (mrps, p99, viol)
    }

    let systems: Vec<&'static str> = vec!["Nebula", "AC_rss-ISA", "AC_rss-MSR"];
    // One job per (system, load) cell — each already builds a fresh trace
    // and system, so the flattening changes nothing but load balance.
    let jobs: Vec<(&'static str, f64)> = systems
        .iter()
        .flat_map(|&name| loads.iter().map(move |&load| (name, load)))
        .collect();
    let cells = parallel_map(jobs, bench::sweep_threads(), |(name, load)| {
        let kvs = KvsWorkload::fig14();
        let mean = kvs.mean_service();
        let rate = load * CORES as f64 / mean.as_secs_f64();
        let trace = kvs.trace_clustered(rate, 8, REQUESTS, 81);
        let mut sys: Box<dyn RpcSystem> = match name {
            "Nebula" => Box::new(Jbsq::new(JbsqVariant::Nebula, CORES)),
            "AC_rss-ISA" => Box::new(Altocumulus::new(ac_config(Interface::Isa, mean))),
            "AC_rss-MSR" => Box::new(Altocumulus::new(ac_config(Interface::Msr, mean))),
            _ => unreachable!(),
        };
        let r = sys.run(&trace);
        (r.throughput_rps() / 1e6, r.p99(), r.violation_ratio(slo))
    });
    let series: Vec<Series> = systems
        .iter()
        .zip(cells.chunks(loads.len()))
        .map(|(&name, pts)| Series {
            name,
            pts: pts.to_vec(),
        })
        .collect();

    let mut t = Table::new(&["system", "MRPS", "p99_us", "viol%"]);
    for s in &series {
        for (mrps, p99, viol) in &s.pts {
            t.row(&[
                s.name,
                &format!("{mrps:.0}"),
                &format!("{:.2}", p99.as_us_f64()),
                &format!("{:.2}", viol * 100.0),
            ]);
        }
    }
    t.print();

    println!("\nthroughput@SLO (p99 <= {slo}):");
    let mut t2 = Table::new(&["system", "MRPS@SLO"]);
    let mut best = Vec::new();
    for s in &series {
        let mrps = s
            .pts
            .iter()
            .filter(|(_, p99, _)| *p99 <= slo)
            .map(|(m, _, _)| *m)
            .fold(0.0f64, f64::max);
        best.push((s.name, mrps));
        t2.row(&[s.name, &format!("{mrps:.0}")]);
    }
    t2.print();
    let get = |n: &str| {
        best.iter()
            .find(|(b, _)| *b == n)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let (neb, isa, msr) = (get("Nebula"), get("AC_rss-ISA"), get("AC_rss-MSR"));
    if neb > 0.0 && isa > 0.0 {
        println!(
            "\nAC_rss-ISA vs Nebula: {:.2}x (paper: 2.5x) | MSR/ISA: {:.0}% (paper: 91%)",
            isa / neb,
            msr / isa * 100.0
        );
    }
}
