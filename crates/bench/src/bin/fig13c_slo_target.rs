//! Fig. 13(c) — prediction accuracy (fraction of would-be SLO violations
//! that the system saves) while varying the SLO target among 5A, 10A and
//! 20A, A = 850 ns, load 0.9: baseline RSS (with RSS++-style 20 µs
//! re-steering), AC_rss_opt and AC_int_opt.
//!
//! Paper shape: at the strict 5A target AC leads by ~2×; at the relaxed
//! 20A target every approach exceeds 95%.
//!
//! ```sh
//! cargo run -p bench --release --bin fig13c_slo_target
//! ```

use altocumulus::accounting::prediction_accuracy;
use altocumulus::{AcConfig, Altocumulus, Attachment};
use bench::poisson_trace;
use queueing::ThresholdModel;
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::realworld::clustered_bursty;
use workload::ServiceDistribution;

const CORES: usize = 256;
const REQUESTS: usize = 300_000;

/// No-migration baseline (plain RSS), against which RSS++ saves are counted.
fn base_config(mean: SimDuration) -> AcConfig {
    let mut cfg = AcConfig::ac_int(16, 16, mean);
    cfg.migration_enabled = false;
    cfg
}

/// The RSS++-style baseline: RSS that re-balances its request-to-core
/// mapping only every 20 µs (paper §IX-E) — an Altocumulus twin restricted
/// to a 20 µs period and whole-queue rebalance.
fn rss_plus_config(mean: SimDuration) -> AcConfig {
    let mut cfg = AcConfig::ac_int(16, 16, mean);
    cfg.period = SimDuration::from_us(20);
    cfg.bulk = 40;
    cfg.concurrency = 16;
    cfg.threshold = altocumulus::ThresholdPolicy::Model(ThresholdModel::identity());
    cfg
}

/// Predict-only AC run: accuracy of the model on the unperturbed trajectory.
fn predict_config(attach: Attachment, mean: SimDuration) -> AcConfig {
    let mut cfg = match attach {
        Attachment::Integrated => AcConfig::ac_int(16, 16, mean),
        Attachment::RssPcie => AcConfig::ac_rss(16, 16, mean),
    };
    cfg.period = SimDuration::from_ns(100);
    cfg.bulk = 32;
    cfg.concurrency = 16;
    cfg.threshold = altocumulus::ThresholdPolicy::Model(ThresholdModel::identity());
    cfg.predict_only = true;
    cfg
}

/// Fraction of plain-RSS violations the RSS++ twin saves at `slo`.
fn rss_plus_saved_ratio(
    base: &altocumulus::AcResult,
    rebal: &altocumulus::AcResult,
    trace_len: usize,
    slo: SimDuration,
) -> f64 {
    let (saved, _harmed) =
        altocumulus::accounting::fate_changes(&base.system, &rebal.system, trace_len, slo);
    let base_viol = base
        .system
        .completions
        .iter()
        .filter(|c| c.latency() > slo)
        .count();
    if base_viol == 0 {
        1.0
    } else {
        saved as f64 / base_viol as f64
    }
}

fn main() {
    let mean = SimDuration::from_ns(850);
    let dist = ServiceDistribution::Fixed(mean);
    let _ = poisson_trace; // bursty flows stress the predictor harder
    let rate = 0.9 * CORES as f64 / mean.as_secs_f64();
    let trace = clustered_bursty(dist, rate, 32, 1, REQUESTS, 71);
    println!(
        "Fig. 13(c): prediction accuracy vs SLO target (load {:.2}, A=850ns)\n",
        trace.offered_load(CORES)
    );

    // None of the four simulations depends on the SLO target — only the
    // post-processing does. Run each once (fanned out on the deterministic
    // executor) and score all three SLO rows from the same completions,
    // instead of re-simulating per row.
    let configs = vec![
        base_config(mean),
        rss_plus_config(mean),
        predict_config(Attachment::RssPcie, mean),
        predict_config(Attachment::Integrated, mean),
    ];
    let runs = bench::parallel_map(configs, bench::sweep_threads(), |cfg| {
        Altocumulus::new(cfg).run_detailed(&trace)
    });
    let (base, rebal, rss_po, int_po) = (&runs[0], &runs[1], &runs[2], &runs[3]);

    let mut t = Table::new(&["SLO", "RSS(++20us)", "AC_rss_opt", "AC_int_opt"]);
    for (label, mult) in [("5A", 5.0), ("10A", 10.0), ("20A", 20.0)] {
        let slo = SimDuration::from_ns_f64(mean.as_ns_f64() * mult);
        let rss = rss_plus_saved_ratio(base, rebal, trace.len(), slo);
        let ac_rss = prediction_accuracy(&rss_po.system, &rss_po.stats.predicted, trace.len(), slo);
        let ac_int = prediction_accuracy(&int_po.system, &int_po.stats.predicted, trace.len(), slo);
        t.row(&[
            label,
            &format!("{:.1}%", rss * 100.0),
            &format!("{:.1}%", ac_rss * 100.0),
            &format!("{:.1}%", ac_int * 100.0),
        ]);
    }
    t.print();
    println!(
        "\n(accuracy = fraction of baseline SLO violations the system predicted/saved;\n\
         paper: AC leads ~2x at 5A, everything >95% at 20A)"
    );
}
