//! Rack sweep — rack-level SLO violations and p99 vs offered load for
//! AC-per-server against d-FCFS/JBSQ-per-server, plus a whole-server-death
//! takeover cell.
//!
//! Every cell runs the *same* rack-wide workload (the paper's Bimodal mix)
//! through [`altocumulus::rack::RackWorld`]: a RackSched-style two-level
//! scheduler (power-of-k least-load + per-connection affinity at the ToR,
//! the intra-server scheduler under test inside each server) behind a
//! modeled ToR hop (500 ns, 100 Gbit/s downlinks). The death cell hardens
//! AC's resilience policy, installs per-server stress fault plans and kills
//! one server halfway through the run — its unfinished requests retry
//! through the ToR onto the survivors, so `lost` must stay 0 and every
//! request completes exactly once.
//!
//! Latency is rack-side: ToR arrival → handler finish, so it includes the
//! switch hop, downlink queueing and any death/retry penalty. A request
//! that never completes is an SLO violation by definition, so the reported
//! violation ratio is `(late + lost) / offered` — comparable across
//! systems with different loss behavior.
//!
//! Output is deterministic (fixed seeds, serial routing pass, order-
//! preserving parallel sweep): byte-identical across invocations and
//! `SWEEP_THREADS` values. CI pins the `--quick` stdout by sha256 and a
//! recorded TRACE/1.0 golden of every AC server's sub-run.
//!
//! ```sh
//! cargo run -p bench --release --bin rack_sweep            # 16/64 servers
//! cargo run -p bench --release --bin rack_sweep -- --quick # CI smoke
//! ```

use altocumulus::rack::ServerSpec;
use altocumulus::{RackConfig, RackResult};
use bench::record::{
    rack_shape, rack_sweep_cell, record_artifact, record_granularity_arg, record_out_arg,
    scenario_runs,
};
use bench::{has_flag, parallel_map};
use schedulers::dfcfs::DFcfsConfig;
use schedulers::jbsq::{JbsqConfig, JbsqVariant};
use simcore::faults::FaultPlan;
use simcore::report::Table;
use simcore::time::{SimDuration, SimTime};
use workload::trace::Trace;

struct Cell {
    system: &'static str,
    servers: usize,
    load: f64,
    death: bool,
    offered: usize,
    completed: usize,
    lost: u64,
    p99: SimDuration,
    violations: usize,
    rebinds: u64,
    tor_queue: SimDuration,
    events: u64,
}

/// Builds the rack + workload for one cell: the AC rack comes verbatim
/// from the shared registry constructor (so recordings replay); baselines
/// reuse its ToR, routing policy, seed and death schedule with their own
/// per-server system and (for the death cell) an all-cores stress plan.
fn rack_for(
    system: &'static str,
    shape: (usize, usize, usize),
    load: f64,
    requests: usize,
    death: bool,
) -> (RackConfig, Trace) {
    let (ac_rack, trace) = rack_sweep_cell(shape, load, requests, death);
    if system == "AC" {
        return (ac_rack, trace);
    }
    let (servers, groups, group_size) = shape;
    let cores = groups * group_size;
    let mut rack = ac_rack;
    rack.template = match system {
        "d-FCFS" => ServerSpec::DFcfs(DFcfsConfig::rss(cores)),
        "Nebula" => ServerSpec::Jbsq(
            JbsqVariant::Nebula,
            JbsqConfig::of(JbsqVariant::Nebula, cores),
        ),
        other => panic!("unknown system {other}"),
    };
    if death {
        // Same stress intensity as the AC plans, over the baselines' flat
        // core map (no manager tiles to exclude).
        let horizon = trace.requests().last().map_or(SimTime::ZERO, |r| r.arrival);
        let workers: Vec<usize> = (0..cores).collect();
        rack.server_faults = (0..servers)
            .map(|s| FaultPlan::stress(0xAC50 + s as u64, &workers, 0.25, horizon))
            .collect();
    }
    (rack, trace)
}

fn run_cell(
    system: &'static str,
    shape: (usize, usize, usize),
    load: f64,
    requests: usize,
    death: bool,
    slo: SimDuration,
) -> Cell {
    let (rack, trace) = rack_for(system, shape, load, requests, death);
    let world = altocumulus::RackWorld::new(rack);
    // Inner per-server parallelism stays off: the sweep parallelizes over
    // cells (and the result is byte-identical either way).
    let r: RackResult = world.run(&trace, 1);
    let late = r
        .system
        .completions
        .iter()
        .filter(|c| c.latency() > slo)
        .count();
    Cell {
        system,
        servers: shape.0,
        load,
        death,
        offered: r.offered,
        completed: r.system.completions.len(),
        lost: r.routing.lost,
        p99: r.system.p99(),
        violations: late + (r.offered - r.system.completions.len()),
        rebinds: r.routing.affinity_rebinds + r.routing.dead_rebinds,
        tor_queue: SimDuration::from_ps(r.routing.tor_max_queue_ps),
        events: r.events,
    }
}

fn main() {
    let quick = has_flag("--quick");
    let slo = SimDuration::from_us(300);
    let systems: [&'static str; 3] = ["AC", "d-FCFS", "Nebula"];
    // (servers, groups, group_size, requests) sweeps: the quick rack is 4
    // small servers; the full sweep spans 16 and 64 servers of 256 cores
    // (4k and 16k simulated cores).
    let shapes: Vec<((usize, usize, usize), usize)> = if quick {
        vec![(rack_shape::QUICK, rack_shape::requests(true))]
    } else {
        vec![
            (rack_shape::FULL, rack_shape::requests(false)),
            ((64, 16, 16), 480_000),
        ]
    };
    let loads = rack_shape::loads(quick);

    let total_cores = |s: (usize, usize, usize)| s.0 * s.1 * s.2;
    println!(
        "Rack sweep: {} servers, Bimodal(paper), ToR 500ns/100G, SLO p99 <= {}us{}",
        shapes
            .iter()
            .map(|&(s, _)| format!("{}x{} ({} cores)", s.0, s.1 * s.2, total_cores(s)))
            .collect::<Vec<_>>()
            .join(" + "),
        slo.as_us_f64(),
        if quick { " [quick]" } else { "" }
    );
    println!("two-level: power-of-2 least-load + connection affinity over per-server scheduling");
    println!("death cells kill server N/2 mid-run under per-server stress plans\n");

    type Job = (&'static str, (usize, usize, usize), f64, usize, bool);
    let jobs: Vec<Job> = shapes
        .iter()
        .flat_map(|&(shape, requests)| {
            systems.iter().flat_map(move |&sys| {
                loads
                    .iter()
                    .map(move |&l| (sys, shape, l, requests, false))
                    .chain(std::iter::once((
                        sys,
                        shape,
                        rack_shape::DEATH_LOAD,
                        requests,
                        true,
                    )))
            })
        })
        .collect();
    let cells = parallel_map(jobs, bench::sweep_threads(), |(sys, shape, l, n, d)| {
        run_cell(sys, shape, l, n, d, slo)
    });

    let csv = has_flag("--csv");
    let mut t = Table::new(&[
        "system",
        "servers",
        "load",
        "death",
        "completed%",
        "lost",
        "p99_us",
        "viol%",
        "rebinds",
        "torq_ns",
        "events",
    ]);
    for c in &cells {
        t.row(&[
            c.system,
            &c.servers.to_string(),
            &format!("{:.2}", c.load),
            if c.death { "yes" } else { "no" },
            &format!("{:.1}", 100.0 * c.completed as f64 / c.offered as f64),
            &c.lost.to_string(),
            &format!("{:.2}", c.p99.as_us_f64()),
            &format!("{:.2}", 100.0 * c.violations as f64 / c.offered as f64),
            &c.rebinds.to_string(),
            &format!("{:.0}", c.tor_queue.as_ns_f64()),
            &c.events.to_string(),
        ]);
    }
    if csv {
        print!("{}", t.to_csv());
    } else {
        t.print();
    }

    // Headline: the two-level AC rack must violate no more than the best
    // baseline rack in every cell, including whole-server death.
    let viol = |sys: &str, servers: usize, l: f64, d: bool| {
        cells
            .iter()
            .find(|c| c.system == sys && c.servers == servers && c.load == l && c.death == d)
            .map(|c| c.violations as f64 / c.offered as f64)
            .unwrap_or(1.0)
    };
    let worst = cells
        .iter()
        .filter(|c| c.system == "AC")
        .map(|c| {
            viol("AC", c.servers, c.load, c.death)
                - viol("d-FCFS", c.servers, c.load, c.death)
                    .min(viol("Nebula", c.servers, c.load, c.death))
        })
        .fold(f64::MIN, f64::max);
    println!(
        "\nAC worst-case violation gap vs best baseline rack: {:+.2} pp ({})",
        worst * 100.0,
        if worst <= 0.0 {
            "no worse in every cell incl. server death"
        } else {
            "worse somewhere"
        }
    );

    // Optional run recording (see fig10_comparison): re-executes every AC
    // server's sub-run with a `TRACE/1.0` recorder attached. Files +
    // stderr only — stdout stays byte-identical.
    if let Some(path) = record_out_arg() {
        let gran = record_granularity_arg();
        let specs = scenario_runs("rack_sweep", quick).unwrap();
        let artifact = record_artifact("rack_sweep", quick, gran, &specs);
        std::fs::write(&path, &artifact).expect("write record artifact");
        eprintln!(
            "record ({} AC server sub-runs, {} granularity): {} bytes -> {}",
            specs.len(),
            gran.label(),
            artifact.len(),
            path.display()
        );
    }
}
