//! Replays a recorded `TRACE/1.0` run artifact and fails at the first
//! divergent event.
//!
//! ```text
//! replay <artifact.trace.jsonl>
//! ```
//!
//! The artifact names the figure binary and sweep shape it was recorded
//! from; `replay` rebuilds the same runs from the scenario registry
//! (`bench::record`), re-executes each one with full-granularity recording,
//! and compares against the artifact: provenance first (seed, config and
//! workload fingerprints), then the event sequence — exact `(time, seq,
//! kind, group, payload)` records when the artifact was recorded at full
//! granularity, digest-checkpoint blocks otherwise — then RNG draw counts
//! per stream. The first divergence is reported with a surrounding event
//! window and provenance context; exit status is non-zero.
//!
//! Used standalone to debug a golden-gate failure, and by ci.sh to turn
//! "the golden hash changed" into "event 18342 changed from X to Y".

use bench::record::replay_artifact;
use simcore::trace::validate_artifact;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: replay <artifact.trace.jsonl>");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    // Schema-validate before replaying, but don't stop on a violation: a
    // corrupted recording (e.g. a perturbed timestamp breaking the strict
    // (time, seq) order) should still get a first-divergence diff, which
    // is far more actionable than the schema message alone. Only an
    // unparseable artifact is a hard tooling error.
    let mut schema_violation = false;
    match validate_artifact(&text) {
        Ok(stats) => eprintln!(
            "replay: {path}: schema OK ({} runs, {} events, {} checkpoints)",
            stats.runs, stats.events, stats.checkpoints
        ),
        Err(e) => {
            eprintln!("replay: {path}: SCHEMA VIOLATION: {e}");
            eprintln!("replay: continuing to locate the first divergence");
            schema_violation = true;
        }
    }

    match replay_artifact(&text) {
        Ok(rep) => {
            print!("{}", rep.report);
            if rep.diverged == 0 && !schema_violation {
                println!("replay: {} run(s) reproduced exactly", rep.runs);
                ExitCode::SUCCESS
            } else {
                println!(
                    "replay: {}/{} run(s) DIVERGED{}",
                    rep.diverged,
                    rep.runs,
                    if schema_violation {
                        " (and the artifact violates the schema)"
                    } else {
                        ""
                    }
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("replay: {path}: {e}");
            ExitCode::from(2)
        }
    }
}
