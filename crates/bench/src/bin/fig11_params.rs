//! Fig. 11 — impact of migration Bulk (8–40) and Period (10–1000 ns) on
//! SLO violations and p99 latency, on a 256-core Altocumulus (16 groups of
//! 16) at high load.
//!
//! Paper shape: Bulk=16 eliminates (nearly) all violations; periods from
//! 10–400 ns perform similarly while 1000 ns is too lazy and loses ~1/3 of
//! the migration opportunity; p99 strongly tracks the violation count.
//!
//! ```sh
//! cargo run -p bench --release --bin fig11_params
//! ```

use altocumulus::{AcConfig, Altocumulus};
use bench::parallel_map;
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::realworld::clustered_bursty;
use workload::ServiceDistribution;

const GROUPS: usize = 16;
const GROUP_SIZE: usize = 16;
const REQUESTS: usize = 400_000; // the paper replays 400K RPCs

fn main() {
    let cores = GROUPS * GROUP_SIZE;
    // Mean service ~630ns as in the paper's experiment (§VIII-C).
    let dist = ServiceDistribution::Exponential {
        mean: SimDuration::from_ns(630),
    };
    let slo = SimDuration::from_ns_f64(dist.mean().as_ns_f64() * 10.0);
    let load = 0.70;
    // 32 independently-bursty flows (one connection each) hashed across the
    // 16 NetRX queues: hot flows overload individual groups while the
    // system keeps headroom — the temporal imbalance migration absorbs.
    let rate = load * cores as f64 / dist.mean().as_secs_f64();
    let trace = clustered_bursty(dist, rate, 32, 1, REQUESTS, 23);
    println!(
        "Fig. 11: 256 cores (16x16), mean service 630ns, load {:.2}, SLO {}\n",
        trace.offered_load(cores),
        slo
    );

    // (a) Bulk sweep at period 200ns.
    let bulks = [8usize, 16, 24, 32, 40];
    let bulk_rows = parallel_map(bulks.to_vec(), bench::sweep_threads(), |bulk| {
        let mut cfg = AcConfig::ac_int(GROUPS, GROUP_SIZE, dist.mean());
        cfg.bulk = bulk;
        cfg.concurrency = cfg.concurrency.min(bulk);
        let r = Altocumulus::new(cfg).run_detailed(&trace);
        (bulk, r)
    });
    println!("(a) Bulk sweep (period 200ns):");
    let mut t = Table::new(&["bulk", "violations", "viol%", "p99_us", "migrated", "msgs"]);
    for (bulk, r) in &bulk_rows {
        let v = r.system.violation_ratio(slo);
        t.row(&[
            &bulk.to_string(),
            &format!("{:.0}", v * REQUESTS as f64),
            &format!("{:.3}", v * 100.0),
            &format!("{:.2}", r.system.p99().as_us_f64()),
            &r.stats.migrated_requests.to_string(),
            &r.stats.migrate_messages.to_string(),
        ]);
    }
    t.print();

    // (b) Period sweep at bulk 16, plus the no-migration baseline; the
    // baseline rides in the same fan-out (`None` = migration disabled).
    let periods = [10u64, 40, 100, 200, 400, 1000];
    let mut period_jobs: Vec<Option<u64>> = vec![None];
    period_jobs.extend(periods.iter().map(|&p| Some(p)));
    let mut all_rows = parallel_map(period_jobs, bench::sweep_threads(), |job| {
        let mut cfg = AcConfig::ac_int(GROUPS, GROUP_SIZE, dist.mean());
        match job {
            Some(p) => cfg.period = SimDuration::from_ns(p),
            None => cfg.migration_enabled = false,
        }
        let r = Altocumulus::new(cfg).run_detailed(&trace);
        (job, r)
    });
    let baseline = all_rows.remove(0).1;
    let period_rows: Vec<(u64, _)> = all_rows
        .into_iter()
        .map(|(job, r)| (job.expect("baseline was removed"), r))
        .collect();

    println!("\n(b) Period sweep (bulk 16):");
    let mut t2 = Table::new(&[
        "period_ns",
        "violations",
        "viol%",
        "p99_us",
        "migrated",
        "nacked",
    ]);
    let bl = baseline.system.violation_ratio(slo);
    t2.row(&[
        "no-migration",
        &format!("{:.0}", bl * REQUESTS as f64),
        &format!("{:.3}", bl * 100.0),
        &format!("{:.2}", baseline.system.p99().as_us_f64()),
        "0",
        "0",
    ]);
    for (p, r) in &period_rows {
        let v = r.system.violation_ratio(slo);
        t2.row(&[
            &p.to_string(),
            &format!("{:.0}", v * REQUESTS as f64),
            &format!("{:.3}", v * 100.0),
            &format!("{:.2}", r.system.p99().as_us_f64()),
            &r.stats.migrated_requests.to_string(),
            &r.stats.nacked_requests.to_string(),
        ]);
    }
    t2.print();
}
