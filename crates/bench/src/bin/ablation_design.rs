//! Ablation study of Altocumulus' design choices (DESIGN.md §"Key design
//! decisions"): the Hill/Valley/Pairing pattern classifier, the Algorithm-1
//! line-8 migration guard, and the at-most-once/threshold machinery, each
//! toggled on the same bursty 256-core workload.
//!
//! ```sh
//! cargo run -p bench --release --bin ablation_design
//! ```

use altocumulus::config::PatternPolicy;
use altocumulus::{AcConfig, Altocumulus};
use bench::parallel_map;
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::realworld::clustered_bursty;
use workload::ServiceDistribution;

fn main() {
    let dist = ServiceDistribution::Exponential {
        mean: SimDuration::from_ns(850),
    };
    let slo = SimDuration::from_ns_f64(dist.mean().as_ns_f64() * 10.0);
    let rate = 0.70 * 256.0 / dist.mean().as_secs_f64();
    let trace = clustered_bursty(dist, rate, 32, 1, 400_000, 47);
    println!(
        "Ablations on 256 cores (16x16), bursty flows, load {:.2}, SLO {}\n",
        trace.offered_load(256),
        slo
    );

    let base = AcConfig::ac_int(16, 16, dist.mean());
    let variants: Vec<(&str, AcConfig)> = vec![
        ("full design", base.clone()),
        ("no pattern classifier (threshold only)", {
            let mut c = base.clone();
            c.patterns = PatternPolicy::ThresholdOnly;
            c
        }),
        ("no migration guard", {
            let mut c = base.clone();
            c.guard_enabled = false;
            c
        }),
        ("no patterns + no guard", {
            let mut c = base.clone();
            c.patterns = PatternPolicy::ThresholdOnly;
            c.guard_enabled = false;
            c
        }),
        ("migrations disabled", {
            let mut c = base.clone();
            c.migration_enabled = false;
            c
        }),
    ];

    let rows = parallel_map(variants, 5, |(name, cfg)| {
        let r = Altocumulus::new(cfg).run_detailed(&trace);
        (name, r)
    });

    let mut t = Table::new(&[
        "variant",
        "p99_us",
        "viol%",
        "migrated",
        "msgs",
        "guard-blocked",
        "nacked",
    ]);
    for (name, r) in &rows {
        t.row(&[
            name,
            &format!("{:.2}", r.system.p99().as_us_f64()),
            &format!("{:.3}", r.system.violation_ratio(slo) * 100.0),
            &r.stats.migrated_requests.to_string(),
            &r.stats.migrate_messages.to_string(),
            &r.stats.guard_blocked.to_string(),
            &r.stats.nacked_requests.to_string(),
        ]);
    }
    t.print();
}
