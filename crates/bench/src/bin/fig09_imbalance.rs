//! Fig. 9 — temporal load imbalance across 4 network receive queues at the
//! moment the first 10 SLO violations occur, for connection / random /
//! round-robin steering (256 cores: 4 NetRX queues, each a 64-core c-FCFS).
//!
//! Paper shape: in every policy the queue lengths differ noticeably at
//! violation time — the imbalance patterns Altocumulus classifies as Hill /
//! Pairing / Valley.
//!
//! ```sh
//! cargo run -p bench --release --bin fig09_imbalance
//! ```

use bench::poisson_trace;
use rpcstack::nic::Steering;
use simcore::event::{run, EventQueue, World};
use simcore::report::Table;
use simcore::rng::{stream_rng, streams};
use simcore::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use workload::trace::Trace;
use workload::ServiceDistribution;

const GROUPS: usize = 4;
const WORKERS: usize = 64;

enum Ev {
    Arrive(usize, usize), // (group, trace idx)
    Done(usize, usize),   // (group, worker)
}

struct GroupedWorld<'t> {
    trace: &'t Trace,
    queues: Vec<VecDeque<(usize, SimTime)>>,
    busy: Vec<Vec<Option<usize>>>,
    slo: SimDuration,
    violations_seen: usize,
    snapshots: Vec<[u32; GROUPS]>,
}

impl GroupedWorld<'_> {
    fn start(&mut self, g: usize, w: usize, idx: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        self.busy[g][w] = Some(idx);
        q.push(now + self.trace.requests()[idx].service, Ev::Done(g, w));
    }
}

impl World for GroupedWorld<'_> {
    type Event = Ev;
    fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::Arrive(g, idx) => {
                if let Some(w) = (0..WORKERS).find(|&w| self.busy[g][w].is_none()) {
                    self.start(g, w, idx, now, q);
                } else {
                    self.queues[g].push_back((idx, now));
                }
            }
            Ev::Done(g, w) => {
                let idx = self.busy[g][w].take().expect("done on idle");
                let req = &self.trace.requests()[idx];
                let latency = now.saturating_since(req.arrival);
                if latency > self.slo && self.snapshots.len() < 10 {
                    self.violations_seen += 1;
                    let mut snap = [0u32; GROUPS];
                    for (i, queue) in self.queues.iter().enumerate() {
                        snap[i] = queue.len() as u32;
                    }
                    self.snapshots.push(snap);
                }
                if let Some((next, _)) = self.queues[g].pop_front() {
                    self.start(g, w, next, now, q);
                }
            }
        }
    }
    fn should_stop(&self, _now: SimTime) -> bool {
        self.snapshots.len() >= 10
    }
}

fn run_policy(trace: &Trace, mut steering: Steering, slo: SimDuration) -> Vec<[u32; GROUPS]> {
    let mut rng = stream_rng(0, streams::NIC);
    let mut q = EventQueue::with_capacity(trace.len() * 2);
    for (idx, req) in trace.iter().enumerate() {
        let g = steering.steer(req.conn, GROUPS, &mut rng);
        q.push(req.arrival, Ev::Arrive(g, idx));
    }
    let mut world = GroupedWorld {
        trace,
        queues: vec![VecDeque::new(); GROUPS],
        busy: vec![vec![None; WORKERS]; GROUPS],
        slo,
        violations_seen: 0,
        snapshots: Vec::new(),
    };
    run(&mut world, &mut q, SimTime::MAX);
    world.snapshots
}

fn main() {
    let dist = ServiceDistribution::Exponential {
        mean: SimDuration::from_us(1),
    };
    let slo = SimDuration::from_us(10);
    let trace = poisson_trace(dist, 0.99, GROUPS * WORKERS, 1_500_000, 64, 17);
    println!(
        "Fig. 9: queue lengths of 4 NetRX queues when the first 10 SLO \
         violations occur\n(256 cores = 4 x 64-core c-FCFS, load {:.2})\n",
        trace.offered_load(GROUPS * WORKERS)
    );

    let mut t = Table::new(&[
        "policy",
        "RX Q0",
        "RX Q1",
        "RX Q2",
        "RX Q3",
        "spread(max-min)",
    ]);
    for steering in [Steering::rss(), Steering::random(), Steering::round_robin()] {
        let label = steering.label();
        let snaps = run_policy(&trace, steering, slo);
        if snaps.is_empty() {
            t.row(&[label, "-", "-", "-", "-", "no violations"]);
            continue;
        }
        // Average the snapshot over the first 10 violations, as in the
        // paper's bar groups.
        let mut avg = [0f64; GROUPS];
        for s in &snaps {
            for i in 0..GROUPS {
                avg[i] += s[i] as f64;
            }
        }
        for a in &mut avg {
            *a /= snaps.len() as f64;
        }
        let max = avg.iter().cloned().fold(f64::MIN, f64::max);
        let min = avg.iter().cloned().fold(f64::MAX, f64::min);
        t.row(&[
            label,
            &format!("{:.0}", avg[0]),
            &format!("{:.0}", avg[1]),
            &format!("{:.0}", avg[2]),
            &format!("{:.0}", avg[3]),
            &format!("{:.0}", max - min),
        ]);
    }
    t.print();
    println!(
        "\nEvery policy shows a noticeable queue-length spread at violation time —\n\
         the imbalance signatures (Hill / Pairing / Valley) that trigger migration."
    );
}
