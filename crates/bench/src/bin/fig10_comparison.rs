//! Fig. 10 — tail latency vs throughput against prior work: IX, ZygOS,
//! Shinjuku, RPCValet, Nebula, nanoPU and AC_rss on 16 cores with the
//! Bimodal(99.5% 0.5 µs / 0.5% 500 µs) workload, SLO = 300 µs p99.
//!
//! Paper shape: IX/ZygOS collapse earliest (head-of-line blocking),
//! Shinjuku ~5× better than ZygOS, Nebula/nanoPU another ~4× up, and
//! AC_rss lands within a few percent of the best hardware scheduler while
//! beating Nebula's tail by an order of magnitude at moderate load.
//!
//! ```sh
//! cargo run -p bench --release --bin fig10_comparison
//! ```

use altocumulus::telemetry::phase_table;
use altocumulus::{AcConfig, Altocumulus};
use bench::record::{record_artifact, record_granularity_arg, record_out_arg, scenario_runs};
use bench::{
    capture_telemetry, export_trace, has_flag, parallel_map, point_from, poisson_trace,
    trace_out_arg,
};
use rpcstack::stack::StackModel;
use schedulers::central::{CentralConfig, CentralDispatch};
use schedulers::common::RpcSystem;
use schedulers::dfcfs::{DFcfs, DFcfsConfig};
use schedulers::jbsq::{Jbsq, JbsqVariant};
use schedulers::stealing::{StealingConfig, WorkStealing};
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::ServiceDistribution;

const CORES: usize = 16;
const REQUESTS: usize = 250_000;

fn make_system(name: &str) -> Box<dyn RpcSystem> {
    let dist = ServiceDistribution::bimodal_paper();
    // Per §VII-A, the software systems (IX, ZygOS, Shinjuku) "rely on
    // traditional network stacks, such as TCP/UDP" — most of their gap to
    // the hardware schedulers is stack processing, not scheduling.
    let tcp = StackModel::tcp_ip();
    match name {
        "IX" => Box::new(DFcfs::new(DFcfsConfig {
            stack: tcp,
            ..DFcfsConfig::ix(CORES)
        })),
        "ZygOS" => Box::new(WorkStealing::new(StealingConfig {
            stack: tcp,
            ..StealingConfig::zygos(CORES)
        })),
        "Shinjuku" => Box::new(CentralDispatch::new(CentralConfig {
            stack: tcp,
            ..CentralConfig::shinjuku(CORES)
        })),
        "RPCValet" => Box::new(Jbsq::new(JbsqVariant::RpcValet, CORES)),
        "Nebula" => Box::new(Jbsq::new(JbsqVariant::Nebula, CORES)),
        "nanoPU" => Box::new(Jbsq::new(JbsqVariant::NanoPu, CORES)),
        // One 16-core group: the paper's group-size exploration (§VIII-B)
        // picks 16; on a 16-core machine inter-group migration is moot and
        // AC degenerates to its local c-FCFS tier with an eRPC-class stack.
        "AC_rss" => {
            let mut cfg = AcConfig::ac_rss(1, 16, dist.mean());
            // Paired with a hardware-terminated (nanoRPC-class) stack as in
            // the paper's end-to-end configuration (§IX-A).
            cfg.stack = StackModel::nano_rpc();
            Box::new(Altocumulus::new(cfg))
        }
        other => panic!("unknown system {other}"),
    }
}

fn main() {
    let dist = ServiceDistribution::bimodal_paper();
    let slo = SimDuration::from_us(300);
    let systems = [
        "IX", "ZygOS", "Shinjuku", "RPCValet", "Nebula", "nanoPU", "AC_rss",
    ];
    // `--quick` shrinks the sweep to a CI-sized smoke whose stdout is
    // pinned by a golden sha256 fixture (see ci.sh); keep its output
    // deterministic and in sync with ci/golden/.
    let quick = has_flag("--quick");
    let requests = if quick { 20_000 } else { REQUESTS };
    let loads: &[f64] = if quick {
        &[0.05, 0.2, 0.5, 0.8]
    } else {
        &[
            0.02, 0.05, 0.08, 0.1, 0.13, 0.16, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
        ]
    };

    println!(
        "Fig. 10: p99 vs throughput, {CORES} cores, {dist}, SLO p99 <= 300us{}\n",
        if quick { " [quick]" } else { "" }
    );

    // One job per (system, load) cell. Every `RpcSystem::run` reseeds its
    // RNG streams from config, so a fresh system per cell yields the same
    // numbers as one system swept across loads — while letting the
    // deterministic executor balance slow high-load cells across workers.
    let jobs: Vec<(&str, f64)> = systems
        .iter()
        .flat_map(|&name| loads.iter().map(move |&load| (name, load)))
        .collect();
    let cells = parallel_map(jobs, bench::sweep_threads(), move |(name, load)| {
        let trace = poisson_trace(dist, load, CORES, requests, 128, 10);
        let mut sys = make_system(name);
        let r = sys.run(&trace);
        point_from(&r, load, slo)
    });
    let all: Vec<(&str, Vec<bench::MeasuredPoint>)> = systems
        .iter()
        .zip(cells.chunks(loads.len()))
        .map(|(&name, pts)| (name, pts.to_vec()))
        .collect();

    // `--csv` switches the data tables to machine-readable CSV so scripts
    // stop re-parsing aligned text.
    let csv = has_flag("--csv");
    let mut t = Table::new(&["system", "load", "MRPS", "p99_us", "viol%"]);
    for (name, pts) in &all {
        for p in pts {
            t.row(&[
                name,
                &format!("{:.2}", p.load),
                &format!("{:.2}", p.mrps),
                &format!("{:.1}", p.p99.as_us_f64()),
                &format!("{:.2}", p.violation_ratio * 100.0),
            ]);
        }
    }
    if csv {
        print!("{}", t.to_csv());
    } else {
        t.print();
    }

    println!("\nthroughput@SLO (highest measured MRPS with p99 <= 300us):");
    let mut t2 = Table::new(&["system", "MRPS@SLO"]);
    let mut best: Vec<(String, f64)> = Vec::new();
    for (name, pts) in &all {
        let mrps = pts
            .iter()
            .filter(|p| p.p99 <= slo)
            .map(|p| p.mrps)
            .fold(0.0f64, f64::max);
        best.push((name.to_string(), mrps));
        t2.row(&[name, &format!("{mrps:.2}")]);
    }
    if csv {
        print!("{}", t2.to_csv());
    } else {
        t2.print();
    }

    let get = |n: &str| {
        best.iter()
            .find(|(b, _)| b == n)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let (zygos, nebula, ac) = (get("ZygOS"), get("Nebula"), get("AC_rss"));
    if zygos > 0.0 && nebula > 0.0 {
        println!(
            "\nAC_rss vs ZygOS: {:.1}x (paper: 24.6x) | AC_rss vs Nebula: {:.2}x (paper: 1.05x)",
            ac / zygos,
            ac / nebula
        );
    }

    // Optional telemetry export: one traced AC_rss run on a shortened trace
    // (the figure itself is already printed; this is a debugging artifact).
    // Files + stderr only, so stdout stays byte-identical with or without
    // the flag.
    // Optional run recording: re-executes the AC_rss cells with a
    // `TRACE/1.0` recorder attached and writes the artifact (replayable
    // with the `replay` binary; Summary granularity is the golden-trace
    // format). Files + stderr only — stdout stays byte-identical.
    if let Some(path) = record_out_arg() {
        let gran = record_granularity_arg();
        let specs = scenario_runs("fig10_comparison", quick).unwrap();
        let artifact = record_artifact("fig10_comparison", quick, gran, &specs);
        std::fs::write(&path, &artifact).expect("write record artifact");
        eprintln!(
            "record ({} AC_rss runs, {} granularity): {} bytes -> {}",
            specs.len(),
            gran.label(),
            artifact.len(),
            path.display()
        );
    }

    if let Some(path) = trace_out_arg() {
        let trace = poisson_trace(dist, 0.3, CORES, requests / 10, 128, 10);
        let mut tel = capture_telemetry(trace.len());
        let mut cfg = AcConfig::ac_rss(1, 16, dist.mean());
        cfg.stack = StackModel::nano_rpc();
        Altocumulus::new(cfg).run_traced(&trace, &mut tel);
        let probes = export_trace(&tel, &path);
        eprintln!(
            "trace (AC_rss, load 0.30, {} reqs): {} span points -> {} | {} probe samples -> {}",
            trace.len(),
            tel.spans.len(),
            path.display(),
            tel.probes.sample_count(),
            probes.display()
        );
        eprintln!("{}", phase_table(&tel).render());
    }
}
