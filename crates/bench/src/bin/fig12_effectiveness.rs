//! Fig. 12 — (a) group-size exploration on 64 cores; (b) migration
//! effectiveness breakdown over 400 K RPCs for periods 40/200/400/1000 ns;
//! (c) false (harmful) migrations per period.
//!
//! Paper shape: 16-core groups are the sweet spot; at the best period the
//! effective ratio is ~42% with the remaining migrations harmless, and
//! false migrations are O(tens) out of 400 K.
//!
//! ```sh
//! cargo run -p bench --release --bin fig12_effectiveness
//! ```

use altocumulus::accounting::classify_effectiveness;
use altocumulus::{AcConfig, Altocumulus, Attachment};
use bench::parallel_map;
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::realworld::clustered_bursty;
use workload::ServiceDistribution;

const REQUESTS: usize = 400_000;

fn main() {
    let dist = ServiceDistribution::Exponential {
        mean: SimDuration::from_ns(850),
    };
    let slo = SimDuration::from_ns_f64(dist.mean().as_ns_f64() * 10.0);

    // ---- (a) group-size exploration on a 64-core system ----
    // Throughput@SLO per layout, swept per configuration because the two
    // attachments have very different per-request work (ACrss pays an
    // eRPC-class software stack; ACint is hardware-terminated) — the paper's
    // §VIII-B point that an ACrss manager caps out around 28 MRPS.
    println!("(a) group-size exploration, 64 cores, bursty flows:");
    let shapes: Vec<(usize, usize)> = vec![(16, 4), (8, 8), (4, 16), (2, 32)];
    let mut t = Table::new(&[
        "layout (groups x size)",
        "attach",
        "MRPS@SLO",
        "p99 there (us)",
    ]);
    for attach in [Attachment::Integrated, Attachment::RssPcie] {
        let rows = parallel_map(shapes.clone(), shapes.len(), |(g, s)| {
            let mk = |g: usize, s: usize| {
                let mut cfg = match attach {
                    Attachment::Integrated => AcConfig::ac_int(g, s, dist.mean()),
                    Attachment::RssPcie => AcConfig::ac_rss(g, s, dist.mean()),
                };
                cfg.concurrency = cfg.concurrency.min(g.max(1)).min(cfg.bulk);
                cfg
            };
            // Per-request on-core work including the stack, for load scaling.
            let cfg0 = mk(g, s);
            let work = cfg0.stack.rx(300) + dist.mean() + cfg0.stack.tx(64);
            let workers = (64 - g) as f64;
            let mut best = (0.0f64, SimDuration::ZERO);
            for load in [0.3, 0.45, 0.6, 0.7, 0.8, 0.9] {
                let rate = load * workers / work.as_secs_f64();
                let trace = clustered_bursty(dist, rate, 16, 1, 250_000, 31);
                let r = Altocumulus::new(mk(g, s)).run_detailed(&trace);
                let mrps = r.system.throughput_rps() / 1e6;
                if r.system.p99() <= slo && mrps > best.0 {
                    best = (mrps, r.system.p99());
                }
            }
            ((g, s), best)
        });
        for ((g, s), (mrps, p99)) in rows {
            t.row(&[
                &format!("{g} x {s}"),
                attach.label(),
                &format!("{mrps:.1}"),
                &format!("{:.2}", p99.as_us_f64()),
            ]);
        }
    }
    t.print();

    // ---- (b)+(c) migration-effectiveness breakdown, 256 cores ----
    println!("\n(b) migration effectiveness over {REQUESTS} RPCs (256 cores, 16x16):");
    let rate256 = 0.70 * 256.0 / dist.mean().as_secs_f64();
    let trace = clustered_bursty(dist, rate256, 32, 1, REQUESTS, 37);
    let baseline = {
        let mut cfg = AcConfig::ac_int(16, 16, dist.mean());
        cfg.migration_enabled = false;
        Altocumulus::new(cfg).run_detailed(&trace)
    };
    let periods = [40u64, 200, 400, 1000];
    let runs = parallel_map(periods.to_vec(), periods.len(), |p| {
        let mut cfg = AcConfig::ac_int(16, 16, dist.mean());
        cfg.period = SimDuration::from_ns(p);
        let r = Altocumulus::new(cfg).run_detailed(&trace);
        (p, r)
    });

    let mut t2 = Table::new(&[
        "period_ns",
        "migrated",
        "Eff.",
        "InEff. w/o harm",
        "InEff. w/o benefit",
        "False",
        "eff.ratio",
    ]);
    let mut false_rows = Vec::new();
    for (p, r) in &runs {
        let migrated: std::collections::HashSet<usize> = r
            .system
            .completions
            .iter()
            .filter(|c| c.migrated)
            .map(|c| c.id.0 as usize)
            .collect();
        let b = classify_effectiveness(&baseline.system, &r.system, &migrated, trace.len(), slo);
        false_rows.push((*p, b.false_harmful));
        t2.row(&[
            &p.to_string(),
            &b.total().to_string(),
            &b.effective.to_string(),
            &b.ineffective_no_harm.to_string(),
            &b.ineffective_no_benefit.to_string(),
            &b.false_harmful.to_string(),
            &format!("{:.1}%", b.effective_ratio() * 100.0),
        ]);
    }
    t2.print();

    println!("\n(c) false (harmful) migrations per period:");
    let mut t3 = Table::new(&["period_ns", "false migrations"]);
    for (p, f) in false_rows {
        t3.row(&[&p.to_string(), &f.to_string()]);
    }
    t3.print();

    println!(
        "\nbaseline (no migration): p99 {:.2}us, viol {:.3}%",
        baseline.system.p99().as_us_f64(),
        baseline.system.violation_ratio(slo) * 100.0
    );
}
