//! Fig. 7 — SLO-violation prediction analysis on a 64-core c-FCFS system.
//!
//! (a–c): ratio of SLO violations vs queue length seen at arrival, for
//! Fixed / Uniform / Bimodal service times at load 0.99 with SLO = 10× mean.
//! (d): the measured first-violation threshold T across loads against the
//! Erlang-C expected queue length E\[Nq\], with the fitted linear transform
//! (paper quotes a=1.01, c=0.998, b=d=0 for Fixed).
//!
//! ```sh
//! cargo run -p bench --release --bin fig07_threshold
//! ```

use bench::{parallel_map, poisson_trace};
use queueing::erlang::expected_queue_len;
use queueing::threshold::{r_squared, ThresholdModel};
use schedulers::ideal::{CentralQueue, CentralQueueConfig};
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::ServiceDistribution;

fn main() {
    let cores = 64;
    let mean = SimDuration::from_us(1);
    let dists = [
        ServiceDistribution::Fixed(mean),
        ServiceDistribution::Uniform {
            lo: SimDuration::from_ns(500),
            hi: SimDuration::from_ns(1500),
        },
        // A milder bimodal than Fig. 10's (the paper's Fig. 7 keeps mean
        // service ~1us): 90% x 0.5us, 10% x 5.5us => mean 1us, and the
        // longs stay below the 10us SLO so violations come from queueing.
        ServiceDistribution::Bimodal {
            short: SimDuration::from_ns(500),
            long: SimDuration::from_ns(5_500),
            p_long: 0.10,
        },
    ];
    let requests = 2_000_000;

    println!("Fig. 7(a-c): violation ratio vs arrival queue length (load ~0.998, L=10)\n");
    let results = parallel_map(dists.to_vec(), 3, |dist| {
        let slo = SimDuration::from_ns_f64(dist.mean().as_ns_f64() * 10.0);
        // Near-critical load: at 64 cores the pooled queue only reaches
        // SLO-relevant depths when the realized load flirts with 1.0.
        let trace = poisson_trace(dist, 0.998, cores, requests, 256, 5);
        let r = CentralQueue::new(CentralQueueConfig::ideal(cores)).run_instrumented(&trace);
        let rows = r.violation_ratio_by_queue_len(trace.len(), slo, 50);
        let t_first = r.first_violation_queue_len(&trace, slo);
        (dist, rows, t_first)
    });

    for (dist, rows, t_first) in &results {
        println!("--- {dist} ---");
        let mut t = Table::new(&["queue_len", "violation_ratio", "samples"]);
        for (q, ratio, n) in rows {
            t.row(&[&q.to_string(), &format!("{ratio:.3}"), &n.to_string()]);
        }
        t.print();
        match t_first {
            Some(tf) => println!(
                "first violation at queue length {tf}; naive upper bound k*L+1 = {}\n",
                queueing::naive_upper_bound(cores, 10.0)
            ),
            None => println!("no violations at this load/seed\n"),
        }
    }

    // For deterministic service the first-violation queue length is pinned
    // at k*(L-1) regardless of load (wait = queue/k exactly), so the linear
    // E[T] ~ E[Nq] relation is characterized on the dispersed distribution.
    println!("Fig. 7(d): measured T vs E[Nq] across loads (Bimodal distribution)\n");
    let loads = [0.985, 0.99, 0.9925, 0.995, 0.9975];
    let dist = dists[2];
    let slo = SimDuration::from_ns_f64(dist.mean().as_ns_f64() * 10.0);
    let pts = parallel_map(loads.to_vec(), loads.len(), |load| {
        let trace = poisson_trace(dist, load, cores, requests, 256, 5);
        let offered = trace.offered_load(cores) * cores as f64;
        let r = CentralQueue::new(CentralQueueConfig::ideal(cores)).run_instrumented(&trace);
        (offered, r.first_violation_queue_len(&trace, slo))
    });

    let mut t = Table::new(&["load", "E[Nq]", "measured T"]);
    let mut fit_pts = Vec::new();
    for (offered, t_first) in &pts {
        let nq = expected_queue_len(cores, *offered);
        t.row(&[
            &format!("{:.3}", offered / cores as f64),
            &format!("{nq:.1}"),
            &t_first.map_or("-".into(), |v| v.to_string()),
        ]);
        if let Some(v) = t_first {
            fit_pts.push((*offered, *v as f64));
        }
    }
    t.print();

    if fit_pts.len() >= 2 {
        let model = ThresholdModel::fit(cores, &fit_pts);
        let xy: Vec<(f64, f64)> = fit_pts
            .iter()
            .map(|&(a, v)| (expected_queue_len(cores, a), v))
            .collect();
        println!(
            "\nfit: E[T] = {:.3} * E[Nq] + {:.1}  (R^2 = {:.4}; paper: a=1.01, c=0.998)",
            model.a,
            model.b,
            r_squared(&xy, model.a, model.b)
        );
    }
}
