//! Fig. 13(a) — throughput@SLO and prediction accuracy scaling from 16 to
//! 256 cores, with (1) fixed 850 ns service (eRPC stack, Poisson) and (2)
//! bursty real-world traffic, comparing RSS, Nebula, AC_int_subopt (static
//! paper parameters) and AC_int_opt (tuned).
//!
//! Paper shape: AC scales near-linearly; under real-world traffic Nebula
//! and RSS flatten while AC_int keeps most of its throughput, losing only
//! ~14-15% vs. its synthetic-trace result; prediction accuracy drops from
//! ~99.8% (synthetic) to ~96% (real-world).
//!
//! ```sh
//! cargo run -p bench --release --bin fig13a_scalability
//! ```

use altocumulus::accounting::prediction_accuracy;
use altocumulus::{AcConfig, Altocumulus};
use bench::parallel_map;
use queueing::ThresholdModel;
use schedulers::common::RpcSystem;
use schedulers::dfcfs::{DFcfs, DFcfsConfig};
use schedulers::jbsq::{Jbsq, JbsqVariant};
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::arrival::PoissonProcess;
use workload::realworld::clustered_bursty;
use workload::trace::{Trace, TraceBuilder};
use workload::ServiceDistribution;

const REQUESTS: usize = 200_000;

fn trace_for(cores: usize, load: f64, real_world: bool, seed: u64) -> Trace {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
    if real_world {
        // Independently-bursty hot flows (one connection each), several per
        // group, so bursts concentrate on individual receive queues.
        let clusters = (cores / 8).max(4) as u32;
        clustered_bursty(dist, rate, clusters, 1, REQUESTS, seed)
    } else {
        TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(REQUESTS)
            .connections((cores * 16) as u32)
            .seed(seed)
            .build()
    }
}

fn subopt(cores: usize) -> AcConfig {
    AcConfig::ac_int(cores / 16, 16, SimDuration::from_ns(850))
}

fn opt(cores: usize) -> AcConfig {
    // Tuned: faster period, bigger bulk, full concurrency, identity
    // Erlang-C threshold (catches violations earlier under bursts).
    let mut cfg = subopt(cores);
    cfg.period = SimDuration::from_ns(100);
    cfg.bulk = 32;
    cfg.concurrency = (cores / 16).clamp(1, 16).min(cfg.bulk);
    cfg.threshold = altocumulus::ThresholdPolicy::Model(ThresholdModel::identity());
    cfg
}

/// Highest measured MRPS with p99 <= SLO over a load grid.
fn tput_at_slo(
    mut run_at: impl FnMut(f64) -> (f64, SimDuration),
    slo: SimDuration,
) -> (f64, f64) {
    let mut best = (0.0, 0.0); // (mrps, load)
    for load in [0.1, 0.2, 0.3, 0.5, 0.65, 0.8, 0.85, 0.9, 0.95] {
        let (mrps, p99) = run_at(load);
        if p99 <= slo && mrps > best.0 {
            best = (mrps, load);
        }
    }
    best
}

fn main() {
    let slo = SimDuration::from_ns(8500); // 10 x 850ns
    let core_counts = [16usize, 64, 128, 256];

    for real_world in [false, true] {
        let title = if real_world {
            "(2) real-world (bursty MMPP) traffic"
        } else {
            "(1) Poisson, fixed 850ns service"
        };
        println!("--- {title} ---");
        let rows = parallel_map(core_counts.to_vec(), core_counts.len(), |cores| {
            let run_sys = |sys: &mut dyn RpcSystem, load: f64| {
                let t = trace_for(cores, load, real_world, 51);
                let r = sys.run(&t);
                (r.throughput_rps() / 1e6, r.p99())
            };
            let mut rss = DFcfs::new(DFcfsConfig::rss(cores));
            let (rss_mrps, _) = tput_at_slo(|l| run_sys(&mut rss, l), slo);
            let mut nebula = Jbsq::new(JbsqVariant::Nebula, cores);
            let (neb_mrps, _) = tput_at_slo(|l| run_sys(&mut nebula, l), slo);
            let mut ac_sub = Altocumulus::new(subopt(cores));
            let (sub_mrps, _) = tput_at_slo(|l| run_sys(&mut ac_sub, l), slo);
            let mut ac_opt = Altocumulus::new(opt(cores));
            let (opt_mrps, opt_load) = tput_at_slo(|l| run_sys(&mut ac_opt, l), slo);

            // Prediction accuracy of AC_int_opt at its operating point,
            // measured on a predict-only run (predictions on the
            // unperturbed trajectory, the paper's metric).
            let acc = if opt_load > 0.0 {
                let t = trace_for(cores, opt_load, real_world, 51);
                let mut po = opt(cores);
                po.predict_only = true;
                let run = Altocumulus::new(po).run_detailed(&t);
                prediction_accuracy(&run.system, &run.stats.predicted, t.len(), slo)
            } else {
                f64::NAN
            };
            (cores, rss_mrps, neb_mrps, sub_mrps, opt_mrps, acc)
        });

        let mut t = Table::new(&[
            "cores",
            "RSS",
            "Nebula",
            "AC_int_subopt",
            "AC_int_opt",
            "AC_opt pred.accuracy",
        ]);
        for (cores, rss, neb, sub, opt, acc) in rows {
            t.row(&[
                &cores.to_string(),
                &format!("{rss:.1}"),
                &format!("{neb:.1}"),
                &format!("{sub:.1}"),
                &format!("{opt:.1}"),
                &if acc.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.1}%", acc * 100.0)
                },
            ]);
        }
        t.print();
        println!("(all throughput columns in MRPS with p99 <= {slo})\n");
    }
}
