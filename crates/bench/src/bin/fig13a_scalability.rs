//! Fig. 13(a) — throughput@SLO and prediction accuracy scaling from 16 to
//! 256 cores, with (1) fixed 850 ns service (eRPC stack, Poisson) and (2)
//! bursty real-world traffic, comparing RSS, Nebula, AC_int_subopt (static
//! paper parameters) and AC_int_opt (tuned).
//!
//! Paper shape: AC scales near-linearly; under real-world traffic Nebula
//! and RSS flatten while AC_int keeps most of its throughput, losing only
//! ~14-15% vs. its synthetic-trace result; prediction accuracy drops from
//! ~99.8% (synthetic) to ~96% (real-world).
//!
//! ```sh
//! cargo run -p bench --release --bin fig13a_scalability
//! ```

use altocumulus::accounting::prediction_accuracy;
use altocumulus::telemetry::phase_table;
use altocumulus::{AcConfig, Altocumulus};
use bench::{capture_telemetry, export_trace, has_flag, parallel_map, trace_out_arg};
use queueing::ThresholdModel;
use schedulers::common::RpcSystem;
use schedulers::dfcfs::{DFcfs, DFcfsConfig};
use schedulers::jbsq::{Jbsq, JbsqVariant};
use simcore::report::Table;
use simcore::time::SimDuration;
use workload::arrival::PoissonProcess;
use workload::realworld::clustered_bursty;
use workload::trace::{Trace, TraceBuilder};
use workload::ServiceDistribution;

const REQUESTS: usize = 200_000;

fn trace_for(cores: usize, load: f64, real_world: bool, seed: u64, requests: usize) -> Trace {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
    if real_world {
        // Independently-bursty hot flows (one connection each), several per
        // group, so bursts concentrate on individual receive queues.
        let clusters = (cores / 8).max(4) as u32;
        clustered_bursty(dist, rate, clusters, 1, requests, seed)
    } else {
        TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(requests)
            .connections((cores * 16) as u32)
            .seed(seed)
            .build()
    }
}

fn subopt(cores: usize) -> AcConfig {
    AcConfig::ac_int(cores / 16, 16, SimDuration::from_ns(850))
}

fn opt(cores: usize) -> AcConfig {
    // Tuned: faster period, bigger bulk, full concurrency, identity
    // Erlang-C threshold (catches violations earlier under bursts).
    let mut cfg = subopt(cores);
    cfg.period = SimDuration::from_ns(100);
    cfg.bulk = 32;
    cfg.concurrency = (cores / 16).clamp(1, 16).min(cfg.bulk);
    cfg.threshold = altocumulus::ThresholdPolicy::Model(ThresholdModel::identity());
    cfg
}

/// Highest measured MRPS with p99 <= SLO over a load grid.
fn tput_at_slo(mut run_at: impl FnMut(f64) -> (f64, SimDuration), slo: SimDuration) -> (f64, f64) {
    let mut best = (0.0, 0.0); // (mrps, load)
    for load in [0.1, 0.2, 0.3, 0.5, 0.65, 0.8, 0.85, 0.9, 0.95] {
        let (mrps, p99) = run_at(load);
        if p99 <= slo && mrps > best.0 {
            best = (mrps, load);
        }
    }
    best
}

fn main() {
    let slo = SimDuration::from_ns(8500); // 10 x 850ns
                                          // `--quick` shrinks the sweep to a CI-sized smoke whose stdout is
                                          // pinned by a golden sha256 fixture (see ci.sh); keep its output
                                          // deterministic and in sync with ci/golden/.
    let quick = has_flag("--quick");
    let requests = if quick { 20_000 } else { REQUESTS };
    let core_counts: &[usize] = if quick {
        &[16, 64]
    } else {
        &[16, 64, 128, 256]
    };

    for real_world in [false, true] {
        let title = if real_world {
            "(2) real-world (bursty MMPP) traffic"
        } else {
            "(1) Poisson, fixed 850ns service"
        };
        println!("--- {title}{} ---", if quick { " [quick]" } else { "" });
        // One job per (cores, system): the 256-core sweeps dominate, so
        // splitting by system (not just by core count) lets the executor
        // overlap them instead of serializing behind one giant job.
        const SYSTEMS: usize = 4;
        let jobs: Vec<(usize, usize)> = core_counts
            .iter()
            .flat_map(|&cores| (0..SYSTEMS).map(move |s| (cores, s)))
            .collect();
        let cells = parallel_map(jobs, bench::sweep_threads(), |(cores, s)| {
            let mut sys: Box<dyn RpcSystem> = match s {
                0 => Box::new(DFcfs::new(DFcfsConfig::rss(cores))),
                1 => Box::new(Jbsq::new(JbsqVariant::Nebula, cores)),
                2 => Box::new(Altocumulus::new(subopt(cores))),
                _ => Box::new(Altocumulus::new(opt(cores))),
            };
            tput_at_slo(
                |load| {
                    let t = trace_for(cores, load, real_world, 51, requests);
                    let r = sys.run(&t);
                    (r.throughput_rps() / 1e6, r.p99())
                },
                slo,
            )
        });

        // Prediction accuracy of AC_int_opt at its operating point,
        // measured on a predict-only run (predictions on the unperturbed
        // trajectory, the paper's metric). One independent job per count.
        let acc_jobs: Vec<(usize, f64)> = core_counts
            .iter()
            .enumerate()
            .map(|(i, &cores)| (cores, cells[i * SYSTEMS + 3].1))
            .collect();
        let accs = parallel_map(acc_jobs, bench::sweep_threads(), |(cores, opt_load)| {
            if opt_load > 0.0 {
                let t = trace_for(cores, opt_load, real_world, 51, requests);
                let mut po = opt(cores);
                po.predict_only = true;
                let run = Altocumulus::new(po).run_detailed(&t);
                prediction_accuracy(&run.system, &run.stats.predicted, t.len(), slo)
            } else {
                f64::NAN
            }
        });

        let rows: Vec<(usize, f64, f64, f64, f64, f64)> = core_counts
            .iter()
            .enumerate()
            .map(|(i, &cores)| {
                let row = &cells[i * SYSTEMS..(i + 1) * SYSTEMS];
                (cores, row[0].0, row[1].0, row[2].0, row[3].0, accs[i])
            })
            .collect();

        let mut t = Table::new(&[
            "cores",
            "RSS",
            "Nebula",
            "AC_int_subopt",
            "AC_int_opt",
            "AC_opt pred.accuracy",
        ]);
        for (cores, rss, neb, sub, opt, acc) in rows {
            t.row(&[
                &cores.to_string(),
                &format!("{rss:.1}"),
                &format!("{neb:.1}"),
                &format!("{sub:.1}"),
                &format!("{opt:.1}"),
                &if acc.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.1}%", acc * 100.0)
                },
            ]);
        }
        t.print();
        println!("(all throughput columns in MRPS with p99 <= {slo})\n");
    }

    // Optional telemetry export: one traced AC_int_opt run at 64 cores on a
    // shortened Poisson trace (20k requests), a configuration where the
    // migration machinery is actually exercised. Files + stderr only, so
    // stdout stays byte-identical with or without the flag.
    if let Some(path) = trace_out_arg() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let rate = PoissonProcess::rate_for_load(0.8, 64, dist.mean());
        let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(20_000)
            .connections(64 * 16)
            .seed(51)
            .build();
        let mut tel = capture_telemetry(trace.len());
        let r = Altocumulus::new(opt(64)).run_traced(&trace, &mut tel);
        let probes = export_trace(&tel, &path);
        eprintln!(
            "trace (AC_int_opt 64c, load 0.80, {} reqs, {} migrated): {} span points -> {} | {} probe samples -> {}",
            trace.len(),
            r.stats.migrated_requests,
            tel.spans.len(),
            path.display(),
            tel.probes.sample_count(),
            probes.display()
        );
        eprintln!("{}", phase_table(&tel).render());
    }
}
