//! Table I — comparison of Altocumulus with prior art: scheduling scheme,
//! manager, communication mechanism and scalability bottleneck per system.
//!
//! ```sh
//! cargo run -p bench --release --bin table1_catalog
//! ```

use schedulers::catalog::table1;
use simcore::report::Table;

fn main() {
    println!("Table I: comparison of Altocumulus with prior art\n");
    let mut t = Table::new(&[
        "system",
        "scalability bottleneck",
        "scheduling scheme",
        "scheduling manager",
        "communication mechanism",
    ]);
    for e in table1() {
        t.row(&[
            e.system,
            e.bottleneck,
            e.scheme.label(),
            e.manager.label(),
            e.communication,
        ]);
    }
    t.print();

    println!("\ncustom ISA (Table III):");
    let mut t2 = Table::new(&["instruction", "description"]);
    for i in altocumulus::hw::instruction_set() {
        t2.row(&[i.mnemonic, i.description]);
    }
    t2.print();
}
