//! Property-based tests for the simulation core.

use proptest::prelude::*;
use simcore::event::{BinaryHeapQueue, EventQueue};
use simcore::metrics::LatencyHistogram;
use simcore::time::{SimDuration, SimTime};

/// An arbitrary push/pop interleaving: `Some(time_ns)` pushes, `None` pops.
fn op_strategy() -> impl Strategy<Value = Vec<Option<u64>>> {
    proptest::collection::vec(
        prop_oneof![
            // Mostly pushes, clustered over a small time range so that ties
            // (FIFO tie-breaking) and bucket collisions actually occur.
            (0u64..2_000).prop_map(Some),
            // Occasional far-future pushes exercise the overflow heap.
            (1_000_000u64..100_000_000).prop_map(Some),
            Just(None),
        ],
        1..300,
    )
}

proptest! {
    /// The calendar queue pops exactly the same `(time, event)` sequence as
    /// the binary-heap oracle on arbitrary push/pop interleavings, including
    /// FIFO ties and overflow traffic.
    #[test]
    fn calendar_matches_heap_on_interleavings(ops in op_strategy()) {
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapQueue::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Some(t_ns) => {
                    cal.push(SimTime::from_ns(t_ns), i);
                    heap.push(SimTime::from_ns(t_ns), i);
                }
                None => {
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
        }
        loop {
            let (c, h) = (cal.pop(), heap.pop());
            prop_assert_eq!(c, h);
            if c.is_none() {
                break;
            }
        }
    }

    /// Same differential check with a deliberately tiny ring, so nearly every
    /// push overflows or rewinds the cursor.
    #[test]
    fn tiny_ring_matches_heap(ops in op_strategy()) {
        let mut cal = EventQueue::with_geometry(10, 4);
        let mut heap = BinaryHeapQueue::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Some(t_ns) => {
                    cal.push(SimTime::from_ns(t_ns), i);
                    heap.push(SimTime::from_ns(t_ns), i);
                }
                None => prop_assert_eq!(cal.pop(), heap.pop()),
            }
        }
        loop {
            let (c, h) = (cal.pop(), heap.pop());
            prop_assert_eq!(c, h);
            if c.is_none() {
                break;
            }
        }
    }

    /// The event queue always pops in non-decreasing time order, with FIFO
    /// tie-breaking.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ns(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut popped = 0;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(&prev) = seen_at_time.last() {
                    // FIFO within a tie: indices increase.
                    prop_assert!(idx > prev, "tie broken out of order");
                }
                seen_at_time.push(idx);
            } else {
                seen_at_time.clear();
                seen_at_time.push(idx);
            }
            last_time = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Histogram quantiles are within 2% relative error of the exact
    /// order-statistic for arbitrary sample sets.
    #[test]
    fn histogram_quantile_bounded_error(
        mut samples in proptest::collection::vec(100u64..100_000_000u64, 10..2000),
        q in 0.01f64..0.999f64,
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(SimDuration::from_ps(s));
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1] as f64;
        let est = h.quantile(q).as_ps() as f64;
        let rel = (est - exact).abs() / exact;
        prop_assert!(rel < 0.02, "q={q} est={est} exact={exact} rel={rel}");
    }

    /// Quantiles are monotone in q, bounded by min and max.
    #[test]
    fn histogram_quantiles_monotone(samples in proptest::collection::vec(1u64..10_000_000u64, 2..500)) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(SimDuration::from_ps(s));
        }
        let mut last = SimDuration::ZERO;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = h.quantile(q);
            prop_assert!(v >= last);
            prop_assert!(v <= h.max());
            last = v;
        }
        prop_assert!(h.quantile(0.0) >= h.min() || h.quantile(0.0) == h.min());
    }

    /// Merging two histograms equals recording both sample sets into one.
    #[test]
    fn histogram_merge_equivalent(
        a in proptest::collection::vec(1u64..1_000_000u64, 1..300),
        b in proptest::collection::vec(1u64..1_000_000u64, 1..300),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hall = LatencyHistogram::new();
        for &s in &a { ha.record(SimDuration::from_ps(s)); hall.record(SimDuration::from_ps(s)); }
        for &s in &b { hb.record(SimDuration::from_ps(s)); hall.record(SimDuration::from_ps(s)); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.max(), hall.max());
        prop_assert_eq!(ha.min(), hall.min());
        for i in 1..10 {
            prop_assert_eq!(ha.quantile(i as f64 / 10.0), hall.quantile(i as f64 / 10.0));
        }
    }

    /// Time arithmetic: (t + d) - t == d for in-range values.
    #[test]
    fn time_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_ps(t);
        let dd = SimDuration::from_ps(d);
        prop_assert_eq!((t0 + dd) - t0, dd);
    }
}
