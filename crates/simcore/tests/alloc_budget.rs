//! Steady-state allocation budget for the event loop + streaming injector.
//!
//! Runs without the libtest harness (`harness = false` in Cargo.toml): the
//! global counter is process-wide, and libtest's own main thread lazily
//! allocates its channel-receive context the first time it blocks waiting
//! for a result — a race that lands inside the measured window often enough
//! to make an exact zero-allocation assertion flaky. A plain `fn main`
//! keeps the process single-threaded for the whole measurement.

use simcore::alloc::CountingAlloc;
use simcore::event::{run_streamed, EventQueue, EventSource, StreamInjector, World};
use simcore::time::{SimDuration, SimTime};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const CORES: usize = 8;
const SERVICE: SimDuration = SimDuration::from_ns(700);
const GAP_NS: u64 = 100; // inter-arrival gap: ~0.875 utilization across 8 cores

#[derive(Clone, Copy)]
enum Ev {
    Arrival(usize),
    Done,
}

/// An M/D/c-ish world built entirely from fixed-size state: arrivals are
/// round-robined to cores, each core serves FCFS by tracking only a
/// busy-until horizon. Handlers never allocate.
struct Fanout {
    busy_until: [SimTime; CORES],
    completed: usize,
    stop_after: usize,
}

impl World for Fanout {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::Arrival(i) => {
                let core = i % CORES;
                let start = self.busy_until[core].max(now);
                let end = start + SERVICE;
                self.busy_until[core] = end;
                q.push(end, Ev::Done);
            }
            Ev::Done => self.completed += 1,
        }
    }

    fn should_stop(&self, _now: SimTime) -> bool {
        self.completed >= self.stop_after
    }
}

fn arrival_time(i: usize) -> SimTime {
    SimTime::from_ns(GAP_NS * i as u64)
}

fn main() {
    const N: usize = 60_000;
    const WARMUP: usize = 15_000;
    const CHUNK: usize = 1024;

    let mut queue = EventQueue::new();
    let base = queue.reserve_seqs(N as u64);
    let mut source = StreamInjector::with_chunk(N, base, CHUNK, arrival_time, |i| {
        (arrival_time(i), Ev::Arrival(i))
    });
    let mut world = Fanout {
        busy_until: [SimTime::ZERO; CORES],
        completed: 0,
        stop_after: WARMUP,
    };

    // Warmup: lets calendar-queue buckets, the overflow heap and injection
    // chunks reach their steady capacities.
    let warm = run_streamed(&mut world, &mut queue, &mut source, SimTime::MAX);
    assert!(warm.stopped_early, "warmup must stop on completion count");

    // Steady state: zero allocations per event, exactly.
    let before = ALLOC.allocations();
    world.stop_after = N;
    let steady = run_streamed(&mut world, &mut queue, &mut source, SimTime::MAX);
    let delta = ALLOC.allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state loop allocated {delta} times over {} events",
        steady.events
    );
    assert_eq!(world.completed, N, "every arrival must complete");

    // The queue never holds more than the injection chunk plus in-flight
    // completions — O(in-flight), not O(trace).
    let peak = warm.peak_queue.max(steady.peak_queue);
    assert!(
        peak <= CHUNK + 2 * CORES + 64,
        "peak queue population {peak} is not O(in-flight) for chunk {CHUNK}"
    );
    assert!(source.next_time().is_none(), "stream must be drained");
    println!("alloc_budget(simcore): steady state allocation-free, peak queue {peak}");
}
