//! # simcore — deterministic nanosecond-scale discrete-event simulation
//!
//! The simulation substrate for the Altocumulus reproduction. The paper's
//! evaluation ran on a Pin/zsim-derived cycle-level simulator; this crate
//! provides the equivalent foundation as a deterministic discrete-event
//! engine with picosecond-resolution virtual time:
//!
//! - [`time`]: [`time::SimTime`] / [`time::SimDuration`] newtypes.
//! - [`event`]: a deterministic [`event::EventQueue`] plus the
//!   [`event::World`] trait and [`event::run`] loop.
//! - [`faults`]: seeded, deterministic fault-injection plans.
//! - [`metrics`]: HDR-style latency histograms, quantiles and SLO accounting.
//! - [`rng`]: per-component deterministic RNG streams, with
//!   [`rng::BatchedRng`] draw batching.
//! - [`slab`]: free-list arena with generation-checked handles for
//!   keeping event payloads out of the event queue.
//! - [`alloc`]: a counting global allocator for allocation-budget tests.
//! - [`parallel`]: deterministic thread fan-out for parameter sweeps.
//! - [`parengine`]: partitioning and worker-pool plumbing for the
//!   parallel-in-one-run engine.
//! - [`timeline`]: `(time, seq)`-ordered analytic timelines for
//!   worker-plane event elision, plus the [`timeline::WorkerPlane`] knob.
//! - [`report`]: aligned plain-text tables for experiment output.
//! - [`telemetry`]: request-lifecycle spans, time-series probes and
//!   Perfetto/JSONL export behind a zero-cost [`telemetry::TelemetrySink`].
//! - [`trace`]: versioned `TRACE/1.0` run artifacts — a recording sink,
//!   schema validation, and first-divergence replay diffing.
//!
//! # Examples
//!
//! A tiny M/D/1 queue simulated to completion:
//!
//! ```
//! use simcore::event::{run, EventQueue, World};
//! use simcore::metrics::LatencyHistogram;
//! use simcore::time::{SimDuration, SimTime};
//!
//! enum Ev { Arrival(u32), Done }
//!
//! struct Mdo1 {
//!     busy_until: SimTime,
//!     service: SimDuration,
//!     latencies: LatencyHistogram,
//! }
//!
//! impl World for Mdo1 {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
//!         match ev {
//!             Ev::Arrival(_) => {
//!                 let start = self.busy_until.max(now);
//!                 let end = start + self.service;
//!                 self.busy_until = end;
//!                 self.latencies.record(end - now);
//!                 q.push(end, Ev::Done);
//!             }
//!             Ev::Done => {}
//!         }
//!     }
//! }
//!
//! let mut world = Mdo1 {
//!     busy_until: SimTime::ZERO,
//!     service: SimDuration::from_ns(100),
//!     latencies: LatencyHistogram::new(),
//! };
//! let mut queue = EventQueue::new();
//! for i in 0..10 {
//!     queue.push(SimTime::from_ns(i * 50), Ev::Arrival(i as u32));
//! }
//! run(&mut world, &mut queue, SimTime::MAX);
//! assert_eq!(world.latencies.count(), 10);
//! ```

#![warn(missing_docs)]
// Deny rather than forbid: the `alloc` module needs one delegating
// GlobalAlloc impl (see its module docs); everything else stays safe.
#![deny(unsafe_code)]

pub mod alloc;
pub mod event;
pub mod faults;
pub mod metrics;
pub mod parallel;
pub mod parengine;
pub mod report;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod timeline;
pub mod trace;

pub use event::{
    run, run_streamed, BinaryHeapQueue, EventQueue, EventSource, RunSummary, StreamInjector, World,
};
pub use faults::{FaultPlan, NocDecision, NocFaultRng};
pub use metrics::{LatencyHistogram, LatencySummary, SloTracker};
pub use parallel::{default_threads, parallel_map, seeded_map};
pub use parengine::{par_threads, Partitioning};
pub use stats::{batch_means_ci, MeanCi};
pub use telemetry::{NullSink, Telemetry, TelemetrySink};
pub use time::{SimDuration, SimTime};
pub use timeline::{worker_plane, Timeline, WorkerPlane};
pub use trace::{Granularity, Recorder};
