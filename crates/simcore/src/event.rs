//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by time,
//! with ties broken by insertion sequence number so that simulations are
//! bit-reproducible regardless of queue internals.
//!
//! Two implementations share that contract:
//!
//! - [`EventQueue`] — a calendar queue (bucketed timing wheel) tuned for the
//!   short-horizon, high-density event populations of nanosecond-scale RPC
//!   simulation. Near-future events land in O(1) ring buckets; far-future
//!   events overflow into a sorted heap and migrate into the ring as the
//!   window advances.
//! - [`BinaryHeapQueue`] — the classic `BinaryHeap` implementation, kept as
//!   the differential-testing oracle and benchmarking baseline.
//!
//! Both pop events in identical `(time, seq)` order, which the property tests
//! in `tests/prop.rs` check on arbitrary interleavings.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for a particular instant.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Log2 of the default bucket width in picoseconds: 2^16 ps = 65.536 ns.
///
/// Power-of-two widths turn the day/slot computation into shifts and masks.
/// At the simulator's typical densities (64 cores × ~1 µs service times →
/// ~64 events/µs) this puts a handful of events in each bucket.
const DEFAULT_BUCKET_WIDTH_LOG2: u32 = 16;

/// Default number of ring buckets (must be a power of two). With the default
/// width the ring covers a ~67 µs window — comfortably wider than the SLOs
/// and timer horizons the schedulers work with.
const DEFAULT_NUM_BUCKETS: usize = 1 << 10;

/// Narrowest bucket width the adaptive geometry will shrink to: 2^6 ps.
const MIN_BUCKET_WIDTH_LOG2: u32 = 6;

/// A popped bucket holding more live events than this triggers a narrowing
/// rehash (quartering the bucket width). The linear within-bucket min scan
/// is what an adversarial dense population degrades; past a few dozen
/// entries the O(n) rehash amortizes against the O(n) scans it replaces.
const NARROW_BUCKET_LIMIT: usize = 48;

/// A single pop that advances the cursor across more than this many empty
/// buckets triggers a widening rehash (4× the bucket width, clamped to the
/// construction-time width). Widening quarters the per-pop scan distance,
/// so a stable population settles within two rehashes; narrowing needs a
/// 48-deep bucket, which a population sparse enough to trip this limit
/// cannot also produce at the widened width.
const WIDEN_SCAN_LIMIT: u64 = 8;

/// A min-time priority queue of simulation events, implemented as a calendar
/// queue (bucketed timing wheel) with a sorted overflow heap.
///
/// Events that share an instant pop in the order they were pushed (FIFO),
/// which keeps runs deterministic. The pop order is bit-identical to
/// [`BinaryHeapQueue`]'s.
///
/// # Examples
///
/// ```
/// use simcore::event::EventQueue;
/// use simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(10), "late");
/// q.push(SimTime::from_ns(5), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Ring of buckets; slot for day `d` is `d & (num_buckets - 1)`.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Log2 of the bucket width in picoseconds.
    width_log2: u32,
    /// First day of the current window. Only events with
    /// `base_day <= day < base_day + num_buckets` live in the ring.
    base_day: u64,
    /// Scan cursor: no ring event has a day earlier than this. Rewinds when
    /// a push lands behind it (still within the window).
    cursor_day: u64,
    /// Number of events currently in the ring.
    ring_len: usize,
    /// Events outside the ring window: far-future days, or (rarely) pushes
    /// behind `base_day`. Ordered min-first via [`Scheduled`]'s inverted Ord.
    overflow: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// Widest width the adaptive geometry may widen back to — the
    /// construction-time width.
    max_width_log2: u32,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default geometry.
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_BUCKET_WIDTH_LOG2, DEFAULT_NUM_BUCKETS)
    }

    /// Creates an empty queue; `capacity` is a hint carried over from the
    /// heap-based API (ring buckets grow on demand, so it is advisory only).
    pub fn with_capacity(_capacity: usize) -> Self {
        Self::new()
    }

    /// Creates an empty queue with `1 << width_log2` picoseconds per bucket
    /// and `num_buckets` ring buckets.
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` is not a power of two or `width_log2 >= 64`.
    pub fn with_geometry(width_log2: u32, num_buckets: usize) -> Self {
        assert!(num_buckets.is_power_of_two(), "bucket count must be 2^k");
        assert!(width_log2 < 64, "bucket width must fit in u64");
        EventQueue {
            buckets: (0..num_buckets).map(|_| Vec::new()).collect(),
            width_log2,
            base_day: 0,
            cursor_day: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            max_width_log2: width_log2,
        }
    }

    /// Current bucket width (log2 picoseconds). Adaptive: dense populations
    /// narrow it, sparse ones widen it back toward the construction width.
    pub fn bucket_width_log2(&self) -> u32 {
        self.width_log2
    }

    #[inline]
    fn day_of(&self, time: SimTime) -> u64 {
        time.as_ps() >> self.width_log2
    }

    #[inline]
    fn slot_of(&self, day: u64) -> usize {
        (day as usize) & (self.buckets.len() - 1)
    }

    #[inline]
    fn window_end(&self) -> u64 {
        self.base_day.saturating_add(self.buckets.len() as u64)
    }

    /// Schedules `event` at `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_scheduled(Scheduled { time, seq, event });
    }

    /// Schedules `event` at `time` and returns the sequence number it was
    /// assigned.
    ///
    /// The seq is the queue's global tie-break: among events at the same
    /// instant, lower seqs pop first. Worlds that elide events (e.g. lazy
    /// mailbox delivery) keep the seq of the events they *do* push so that
    /// an elided effect can be applied exactly when the event-based path
    /// would have popped it — compare `(time, seq)` lexicographically.
    #[inline]
    pub fn push_counted(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_scheduled(Scheduled { time, seq, event });
        seq
    }

    /// Reserves a contiguous block of `n` sequence numbers and returns its
    /// first value. Subsequent [`push`](Self::push)es draw seqs *after* the
    /// block.
    ///
    /// This is the byte-identity lever behind streaming injection: pop order
    /// depends only on `(time, seq)`, so handing arrival `i` the seq it
    /// would have received from an upfront push (`base + i`) makes the
    /// *physical* injection moment irrelevant to the pop order.
    pub fn reserve_seqs(&mut self, n: u64) -> u64 {
        let base = self.next_seq;
        self.next_seq += n;
        base
    }

    /// Schedules `event` at `time` under a sequence number previously
    /// obtained from [`reserve_seqs`](Self::reserve_seqs). Each reserved seq
    /// must be pushed at most once.
    #[inline]
    pub fn push_at_seq(&mut self, time: SimTime, seq: u64, event: E) {
        debug_assert!(seq < self.next_seq, "seq must come from reserve_seqs");
        self.push_scheduled(Scheduled { time, seq, event });
    }

    /// Inserts an already-sequenced entry (also used by [`run`] to put a
    /// beyond-horizon event back without disturbing FIFO order).
    fn push_scheduled(&mut self, s: Scheduled<E>) {
        let day = self.day_of(s.time);
        if day >= self.base_day && day < self.window_end() {
            if day < self.cursor_day {
                self.cursor_day = day;
            }
            let slot = self.slot_of(day);
            self.buckets[slot].push(s);
            self.ring_len += 1;
        } else {
            self.overflow.push(s);
        }
    }

    /// Rebuilds the ring under a new bucket width, re-anchoring the window
    /// at the earliest live day. Pop order is a pure function of
    /// `(time, seq)`, so a rehash is invisible to everything but the cost
    /// of the within-bucket scan — which is exactly what it exists to bound.
    fn rehash(&mut self, new_width_log2: u32) {
        let mut live: Vec<Scheduled<E>> = Vec::with_capacity(self.ring_len);
        for b in &mut self.buckets {
            live.append(b);
        }
        self.ring_len = 0;
        self.width_log2 = new_width_log2;
        let min_day = live
            .iter()
            .map(|s| self.day_of(s.time))
            .min()
            .or_else(|| self.overflow.peek().map(|s| self.day_of(s.time)))
            .unwrap_or(0);
        self.base_day = min_day;
        self.cursor_day = min_day;
        // Events whose day no longer fits the (narrower) window fall into
        // the overflow; pop_scheduled already arbitrates ring vs overflow.
        for s in live {
            self.push_scheduled(s);
        }
    }

    /// Finds the `(bucket_slot, index_within_bucket)` of the earliest ring
    /// event, advancing the cursor past empty buckets (the count of which is
    /// returned for the widening heuristic). Ring must be non-empty.
    fn ring_min(&mut self) -> (usize, usize, u64) {
        debug_assert!(self.ring_len > 0);
        let start_day = self.cursor_day;
        loop {
            let slot = self.slot_of(self.cursor_day);
            if self.buckets[slot].is_empty() {
                self.cursor_day += 1;
                debug_assert!(self.cursor_day < self.window_end());
                continue;
            }
            // All events in this bucket share a day; the earliest overall is
            // the (time, seq)-minimum within it.
            let bucket = &self.buckets[slot];
            let mut best = 0;
            for i in 1..bucket.len() {
                let (bi, bb) = (&bucket[i], &bucket[best]);
                if (bi.time, bi.seq) < (bb.time, bb.seq) {
                    best = i;
                }
            }
            return (slot, best, self.cursor_day - start_day);
        }
    }

    /// When the ring drains, re-anchor the window at the overflow minimum and
    /// migrate every overflow event that now fits.
    fn migrate_overflow(&mut self) {
        debug_assert!(self.ring_len == 0);
        let Some(head) = self.overflow.peek() else {
            return;
        };
        self.base_day = self.day_of(head.time);
        self.cursor_day = self.base_day;
        while let Some(head) = self.overflow.peek() {
            if self.day_of(head.time) >= self.window_end() {
                break;
            }
            let s = self.overflow.pop().expect("peeked entry exists");
            let slot = self.slot_of(self.day_of(s.time));
            self.buckets[slot].push(s);
            self.ring_len += 1;
        }
    }

    /// Removes and returns the earliest entry with its sequence number.
    fn pop_scheduled(&mut self) -> Option<Scheduled<E>> {
        loop {
            if self.ring_len == 0 {
                self.migrate_overflow();
                // A freshly re-anchored window that captured almost nothing
                // while plenty of events wait beyond it means the narrowed
                // width no longer matches the population: widen and retry
                // (a dense burst has drained and normal spacing resumed).
                if self.ring_len > 0
                    && self.ring_len <= 2
                    && self.overflow.len() >= 64
                    && self.width_log2 < self.max_width_log2
                {
                    self.rehash((self.width_log2 + 2).min(self.max_width_log2));
                    continue;
                }
            }
            if self.ring_len == 0 {
                return self.overflow.pop();
            }
            let (slot, idx, scanned) = self.ring_min();
            // Adaptive geometry. A bucket denser than the scan limit means
            // the workload packed its live horizon into a sliver of the
            // window (the adversarial dense-churn case): quarter the width
            // and re-find the minimum. A pop that had to walk hundreds of
            // empty buckets means the opposite; widen back toward the
            // construction-time width.
            if self.buckets[slot].len() > NARROW_BUCKET_LIMIT
                && self.width_log2 > MIN_BUCKET_WIDTH_LOG2
            {
                self.rehash(self.width_log2.saturating_sub(2).max(MIN_BUCKET_WIDTH_LOG2));
                continue;
            }
            if scanned > WIDEN_SCAN_LIMIT && self.width_log2 < self.max_width_log2 {
                self.rehash((self.width_log2 + 2).min(self.max_width_log2));
                continue;
            }
            return self.pop_from_ring(slot, idx);
        }
    }

    /// Removes ring entry `(slot, idx)`, unless the overflow head is earlier
    /// (an event pushed behind the window), which pops instead.
    fn pop_from_ring(&mut self, slot: usize, idx: usize) -> Option<Scheduled<E>> {
        // The overflow can only beat the ring with an event pushed behind the
        // window (time strictly earlier than every ring day).
        if let Some(head) = self.overflow.peek() {
            let ring = &self.buckets[slot][idx];
            if (head.time, head.seq) < (ring.time, ring.seq) {
                return self.overflow.pop();
            }
        }
        self.ring_len -= 1;
        Some(self.buckets[slot].swap_remove(idx))
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_scheduled().map(|s| (s.time, s.event))
    }

    /// Removes and returns the earliest event together with its sequence
    /// number — the `(time, seq)` rank is the queue's total order, so a
    /// caller that needs to reinsert the event later (or merge events from
    /// several queues deterministically) can preserve its exact position via
    /// [`push_at_seq`](Self::push_at_seq).
    pub fn pop_with_seq(&mut self) -> Option<(SimTime, u64, E)> {
        self.pop_scheduled().map(|s| (s.time, s.seq, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<(SimTime, u64)> = None;
        if self.ring_len > 0 {
            // Non-mutating scan from the cursor to the first non-empty bucket.
            let mut day = self.cursor_day;
            loop {
                let bucket = &self.buckets[self.slot_of(day)];
                if bucket.is_empty() {
                    day += 1;
                    continue;
                }
                for s in bucket {
                    if best.is_none_or(|b| (s.time, s.seq) < b) {
                        best = Some((s.time, s.seq));
                    }
                }
                break;
            }
        }
        if let Some(head) = self.overflow.peek() {
            if best.is_none_or(|b| (head.time, head.seq) < b) {
                best = Some((head.time, head.seq));
            }
        }
        best.map(|(t, _)| t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.ring_len = 0;
        self.overflow.clear();
    }
}

/// The classic binary-heap event queue.
///
/// Pops in exactly the same `(time, seq)` order as [`EventQueue`]; retained
/// as the oracle for differential tests and as the baseline for the
/// `calendar_queue` benchmark.
#[derive(Debug, Clone)]
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Reserves `n` sequence numbers; see [`EventQueue::reserve_seqs`].
    pub fn reserve_seqs(&mut self, n: u64) -> u64 {
        let base = self.next_seq;
        self.next_seq += n;
        base
    }

    /// Pushes under a reserved seq; see [`EventQueue::push_at_seq`].
    pub fn push_at_seq(&mut self, time: SimTime, seq: u64, event: E) {
        debug_assert!(seq < self.next_seq, "seq must come from reserve_seqs");
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// The world a [`run`] loop drives: a state machine that reacts to events and
/// may schedule further events.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handles `event` occurring at `now`; may push follow-up events onto
    /// `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// Called immediately before [`handle`](Self::handle) with the event's
    /// full `(time, seq)` rank — the queue's total order, which `handle`
    /// itself never sees. Record/replay sinks hook this to capture the
    /// executed event stream; the default is a no-op, so worlds that don't
    /// record pay nothing. Implementations must only *read* state (the
    /// telemetry non-perturbation invariant).
    #[inline]
    fn observe(&mut self, _now: SimTime, _seq: u64, _event: &Self::Event) {}

    /// Called after each event is handled; returning `true` stops the run
    /// early (e.g. once enough requests completed).
    fn should_stop(&self, _now: SimTime) -> bool {
        false
    }
}

/// Outcome of driving a [`World`] to completion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of events dispatched.
    pub events: u64,
    /// Simulated instant at which the run ended.
    pub end_time: SimTime,
    /// True if the run ended because [`World::should_stop`] returned `true`
    /// (as opposed to queue exhaustion or the horizon).
    pub stopped_early: bool,
    /// Largest queue population observed during the run — the memory
    /// high-water mark of the event structure. Streaming injection keeps
    /// this at O(in-flight) instead of O(trace).
    pub peak_queue: usize,
}

/// A lazily-injected, time-ordered stream of externally-generated events
/// (arrivals), consumed by [`run_streamed`].
///
/// The contract that keeps streamed runs byte-identical to upfront pushes:
///
/// 1. `next_time()` is a *lower bound* on the scheduled time of every event
///    the source has not yet injected, and is non-decreasing across
///    injections.
/// 2. `inject_chunk` injects at least one event (in stream order, under
///    seqs reserved via [`EventQueue::reserve_seqs`]) whenever `next_time()`
///    is `Some`.
pub trait EventSource<E> {
    /// Lower bound on the time of the next not-yet-injected event, or
    /// `None` once the stream is exhausted.
    fn next_time(&self) -> Option<SimTime>;

    /// Injects the next chunk of events into `queue`.
    fn inject_chunk(&mut self, queue: &mut EventQueue<E>);
}

/// Default number of arrivals a [`StreamInjector`] pushes per refill.
///
/// Large enough to amortize the refill check, small enough that the queue
/// population stays O(in-flight + chunk) rather than O(trace).
pub const DEFAULT_INJECT_CHUNK: usize = 1024;

/// An [`EventSource`] over an indexed stream `0..len`: `lower_bound(i)`
/// gives the watermark for item `i` without side effects, `make(i)` is
/// called exactly once per item, in order, to produce `(time, event)`.
///
/// Splitting the two closures lets `make` consume per-arrival state (e.g.
/// a steering RNG) in exactly the order an upfront push loop would have,
/// while `next_time` stays free to call repeatedly.
pub struct StreamInjector<L, M> {
    next: usize,
    len: usize,
    base_seq: u64,
    chunk: usize,
    lower_bound: L,
    make: M,
}

impl<L, M> StreamInjector<L, M> {
    /// Creates an injector over items `0..len` whose reserved seq block
    /// starts at `base_seq`, using [`DEFAULT_INJECT_CHUNK`].
    pub fn new(len: usize, base_seq: u64, lower_bound: L, make: M) -> Self {
        Self::with_chunk(len, base_seq, DEFAULT_INJECT_CHUNK, lower_bound, make)
    }

    /// Creates an injector with an explicit chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_chunk(len: usize, base_seq: u64, chunk: usize, lower_bound: L, make: M) -> Self {
        assert!(chunk > 0, "injection chunk must be positive");
        StreamInjector {
            next: 0,
            len,
            base_seq,
            chunk,
            lower_bound,
            make,
        }
    }

    /// Number of stream items injected so far.
    pub fn injected(&self) -> usize {
        self.next
    }

    /// Total number of items in the stream.
    pub fn total(&self) -> usize {
        self.len
    }

    /// Items injected per [`EventSource::inject_chunk`] call.
    pub fn chunk(&self) -> usize {
        self.chunk
    }
}

impl<L: Fn(usize) -> SimTime, M> StreamInjector<L, M> {
    /// The lower-bound watermark of stream item `idx` (side-effect free; see
    /// the [`EventSource`] contract). Callers replaying the injection
    /// schedule virtually — without touching the physical cursor — use this
    /// to decide when a serial run would have refilled the queue.
    pub fn bound_of(&self, idx: usize) -> SimTime {
        debug_assert!(idx < self.len);
        (self.lower_bound)(idx)
    }
}

impl<E, L, M> EventSource<E> for StreamInjector<L, M>
where
    L: Fn(usize) -> SimTime,
    M: FnMut(usize) -> (SimTime, E),
{
    fn next_time(&self) -> Option<SimTime> {
        (self.next < self.len).then(|| (self.lower_bound)(self.next))
    }

    fn inject_chunk(&mut self, queue: &mut EventQueue<E>) {
        let end = (self.next + self.chunk).min(self.len);
        for i in self.next..end {
            let (time, event) = (self.make)(i);
            debug_assert!(
                time >= (self.lower_bound)(i),
                "lower_bound must not exceed the scheduled time"
            );
            debug_assert!(
                i == 0 || (self.lower_bound)(i) >= (self.lower_bound)(i - 1),
                "lower_bound must be non-decreasing in stream order"
            );
            queue.push_at_seq(time, self.base_seq + i as u64, event);
        }
        self.next = end;
    }
}

/// Drains `queue` through `world` until the queue empties, `horizon` passes,
/// or the world requests a stop.
///
/// Events scheduled beyond `horizon` are left unprocessed. The loop does a
/// single pop per event; a popped beyond-horizon event is reinserted with its
/// original sequence number, so FIFO tie-breaking survives intact.
pub fn run<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    horizon: SimTime,
) -> RunSummary {
    let mut events = 0u64;
    let mut now = SimTime::ZERO;
    let mut peak = queue.len();
    while let Some(s) = queue.pop_scheduled() {
        if s.time > horizon {
            queue.push_scheduled(s);
            return RunSummary {
                events,
                end_time: now,
                stopped_early: false,
                peak_queue: peak,
            };
        }
        debug_assert!(s.time >= now, "event queue went backwards in time");
        now = s.time;
        world.observe(now, s.seq, &s.event);
        world.handle(now, s.event, queue);
        events += 1;
        peak = peak.max(queue.len());
        if world.should_stop(now) {
            return RunSummary {
                events,
                end_time: now,
                stopped_early: true,
                peak_queue: peak,
            };
        }
    }
    RunSummary {
        events,
        end_time: now,
        stopped_early: false,
        peak_queue: peak,
    }
}

/// Like [`run`], but arrivals are pulled lazily from `source` instead of
/// having been pushed upfront, keeping the queue population at
/// O(in-flight + chunk) instead of O(trace).
///
/// Pop order (and therefore the entire simulation) is byte-identical to an
/// upfront push as long as `source` honours the [`EventSource`] contract and
/// its events were assigned reserved seqs in stream order: before each pop
/// the loop checks whether the source could still hold an event at or before
/// the queue minimum (`next_time() <= popped.time` — ties matter, because a
/// reserved stream seq precedes any dynamically pushed one) and tops the
/// queue up first if so.
///
/// On a horizon stop, not-yet-injected arrivals remain in `source`; the
/// queue alone does not hold the full remaining schedule.
pub fn run_streamed<W: World, S: EventSource<W::Event>>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    source: &mut S,
    horizon: SimTime,
) -> RunSummary {
    let mut events = 0u64;
    let mut now = SimTime::ZERO;
    let mut peak = queue.len();
    let mut source_next = source.next_time();
    loop {
        let s = match queue.pop_scheduled() {
            Some(s) if source_next.is_none_or(|t| s.time < t) => s,
            maybe => {
                // Queue empty, or the source may still hold an event at or
                // before the popped one. Refill and retry.
                if let Some(s) = maybe {
                    queue.push_scheduled(s);
                } else if source_next.is_none() {
                    break;
                }
                source.inject_chunk(queue);
                source_next = source.next_time();
                peak = peak.max(queue.len());
                continue;
            }
        };
        if s.time > horizon {
            queue.push_scheduled(s);
            return RunSummary {
                events,
                end_time: now,
                stopped_early: false,
                peak_queue: peak,
            };
        }
        debug_assert!(s.time >= now, "event queue went backwards in time");
        now = s.time;
        world.observe(now, s.seq, &s.event);
        world.handle(now, s.event, queue);
        events += 1;
        peak = peak.max(queue.len());
        if world.should_stop(now) {
            return RunSummary {
                events,
                end_time: now,
                stopped_early: true,
                peak_queue: peak,
            };
        }
    }
    RunSummary {
        events,
        end_time: now,
        stopped_early: false,
        peak_queue: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(5), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(5)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_overflow_round_trips() {
        // A tiny ring (4 buckets × 2^10 ps ≈ 1 ns each) forces overflow use.
        let mut q = EventQueue::with_geometry(10, 4);
        q.push(SimTime::from_us(500), "far");
        q.push(SimTime::from_ns(1), "near");
        q.push(SimTime::from_us(2000), "farther");
        q.push(SimTime::from_ns(2), "near2");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(1), "near")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(2), "near2")));
        assert_eq!(q.pop(), Some((SimTime::from_us(500), "far")));
        assert_eq!(q.pop(), Some((SimTime::from_us(2000), "farther")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_behind_window_pops_first() {
        let mut q = EventQueue::with_geometry(10, 4);
        // Drain past t=0 so the window advances, then push before it.
        q.push(SimTime::from_us(10), "anchor");
        assert_eq!(q.pop(), Some((SimTime::from_us(10), "anchor")));
        q.push(SimTime::from_us(11), "ahead");
        q.push(SimTime::from_ns(3), "behind");
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(3)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(3), "behind")));
        assert_eq!(q.pop(), Some((SimTime::from_us(11), "ahead")));
    }

    #[test]
    fn interleaved_ties_stay_fifo_across_structures() {
        // Same instant spread across ring and overflow epochs.
        let mut q = EventQueue::with_geometry(10, 4);
        let t = SimTime::from_us(3);
        for i in 0..10 {
            q.push(t, i);
            q.push(SimTime::from_ns(i as u64), 100 + i);
        }
        let mut tied = Vec::new();
        while let Some((time, e)) = q.pop() {
            if time == t {
                tied.push(e);
            }
        }
        assert_eq!(tied, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn heap_queue_matches_basic_order() {
        let mut q = BinaryHeapQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(7), 0);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 3]);
        assert!(q.is_empty());
    }

    /// A world that re-schedules a tick N times then stops.
    struct Ticker {
        remaining: u32,
        period: SimDuration,
        seen: Vec<SimTime>,
    }

    impl World for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _e: (), queue: &mut EventQueue<()>) {
            self.seen.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.push(now + self.period, ());
            }
        }
        fn should_stop(&self, _now: SimTime) -> bool {
            false
        }
    }

    #[test]
    fn run_loop_drives_world() {
        let mut w = Ticker {
            remaining: 4,
            period: SimDuration::from_ns(10),
            seen: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let summary = run(&mut w, &mut q, SimTime::MAX);
        assert_eq!(summary.events, 5);
        assert_eq!(summary.end_time, SimTime::from_ns(40));
        assert!(!summary.stopped_early);
        assert_eq!(w.seen.len(), 5);
    }

    #[test]
    fn run_respects_horizon() {
        let mut w = Ticker {
            remaining: 1000,
            period: SimDuration::from_ns(10),
            seen: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let summary = run(&mut w, &mut q, SimTime::from_ns(35));
        // Events at 0,10,20,30 processed; 40 is beyond the horizon.
        assert_eq!(summary.events, 4);
        assert!(!q.is_empty());
    }

    #[test]
    fn horizon_reinsert_preserves_fifo() {
        // Two events tie at t=40; the run must pop them in push order even
        // though the first was popped and reinserted at the horizon check.
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(40), 1);
        q.push(SimTime::from_ns(40), 2);
        struct Recorder(Vec<i32>);
        impl World for Recorder {
            type Event = i32;
            fn handle(&mut self, _now: SimTime, e: i32, _q: &mut EventQueue<i32>) {
                self.0.push(e);
            }
        }
        let mut w = Recorder(Vec::new());
        let summary = run(&mut w, &mut q, SimTime::from_ns(35));
        assert_eq!(summary.events, 0);
        assert_eq!(q.len(), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2]);
    }

    struct StopAtThree(u32);
    impl World for StopAtThree {
        type Event = u32;
        fn handle(&mut self, _now: SimTime, e: u32, _q: &mut EventQueue<u32>) {
            self.0 = e;
        }
        fn should_stop(&self, _now: SimTime) -> bool {
            self.0 == 3
        }
    }

    /// Records every handled event; echoes arrivals (`e < 1000`) with a
    /// dynamic follow-up event 15 ns later, exercising the reserved-vs-
    /// dynamic seq interleaving.
    struct Echo(Vec<(SimTime, i32)>);
    impl World for Echo {
        type Event = i32;
        fn handle(&mut self, now: SimTime, e: i32, q: &mut EventQueue<i32>) {
            self.0.push((now, e));
            if e < 1000 {
                q.push(now + SimDuration::from_ns(15), 1000 + e);
            }
        }
    }

    fn arrival_time(i: usize) -> SimTime {
        // Bursty: pairs share an instant, so arrivals tie with each other
        // and with echoes of earlier arrivals.
        SimTime::from_ns(10 * (i as u64 / 2) + 5)
    }

    #[test]
    fn streamed_matches_upfront_push() {
        const N: usize = 500;
        let mut up_q = EventQueue::new();
        for i in 0..N {
            up_q.push(arrival_time(i), i as i32);
        }
        let mut up = Echo(Vec::new());
        let up_summary = run(&mut up, &mut up_q, SimTime::MAX);

        let mut st_q = EventQueue::new();
        let base = st_q.reserve_seqs(N as u64);
        let mut source =
            StreamInjector::with_chunk(N, base, 16, arrival_time, |i| (arrival_time(i), i as i32));
        let mut st = Echo(Vec::new());
        let st_summary = run_streamed(&mut st, &mut st_q, &mut source, SimTime::MAX);

        assert_eq!(up.0, st.0, "event orders diverged");
        assert_eq!(up_summary.events, st_summary.events);
        assert_eq!(up_summary.end_time, st_summary.end_time);
        assert!(
            st_summary.peak_queue < up_summary.peak_queue,
            "streaming should shrink the peak ({} vs {})",
            st_summary.peak_queue,
            up_summary.peak_queue
        );
        // Upfront peak is O(N); streamed is O(chunk + in-flight).
        assert!(up_summary.peak_queue >= N);
        assert!(st_summary.peak_queue < 16 + 64);
    }

    #[test]
    fn streamed_tie_pops_reserved_seq_first() {
        // Arrival 1 lands at t=20ns, exactly when the echo of arrival 0 is
        // due. The arrival holds a reserved (smaller) seq, so it must pop
        // first — which requires the refill check to fire on ties.
        let times = [SimTime::from_ns(5), SimTime::from_ns(20)];
        let mut q = EventQueue::new();
        let base = q.reserve_seqs(2);
        let mut source =
            StreamInjector::with_chunk(2, base, 1, |i| times[i], |i| (times[i], i as i32));
        let mut w = Echo(Vec::new());
        run_streamed(&mut w, &mut q, &mut source, SimTime::MAX);
        let order: Vec<i32> = w.0.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 1000, 1001]);
    }

    #[test]
    fn streamed_respects_horizon() {
        const N: usize = 100;
        let mut q = EventQueue::new();
        let base = q.reserve_seqs(N as u64);
        let mut source =
            StreamInjector::with_chunk(N, base, 8, arrival_time, |i| (arrival_time(i), i as i32));
        let mut w = Echo(Vec::new());
        let horizon = SimTime::from_ns(100);
        let summary = run_streamed(&mut w, &mut q, &mut source, horizon);
        assert!(!summary.stopped_early);
        assert!(w.0.iter().all(|&(t, _)| t <= horizon));
        // The un-simulated remainder lives in queue + source together.
        assert!(source.next_time().is_some() || !q.is_empty());
    }

    #[test]
    fn push_counted_returns_the_tie_break_seq() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(9);
        let s0 = q.push_counted(t, "a");
        let s1 = q.push_counted(t, "b");
        assert!(s0 < s1, "seqs are monotone in push order");
        // A reserved seq drawn afterwards continues the same counter.
        assert_eq!(q.reserve_seqs(1), s1 + 1);
        // Pop order at a tie follows the returned seqs.
        assert_eq!(q.pop(), Some((t, "a")));
        assert_eq!(q.pop(), Some((t, "b")));
    }

    #[test]
    fn reserved_seqs_interleave_with_dynamic_pushes() {
        let mut q = EventQueue::new();
        let base = q.reserve_seqs(2);
        let t = SimTime::from_ns(50);
        q.push(t, 100); // dynamic: seq 2
        q.push_at_seq(t, base + 1, 1);
        q.push_at_seq(t, base, 0);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 100]);
    }

    #[test]
    fn run_stops_early() {
        let mut w = StopAtThree(0);
        let mut q = EventQueue::new();
        for i in 1..=10 {
            q.push(SimTime::from_ns(i as u64), i);
        }
        let summary = run(&mut w, &mut q, SimTime::MAX);
        assert!(summary.stopped_early);
        assert_eq!(summary.events, 3);
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn pop_with_seq_round_trips_through_push_at_seq() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 'a');
        q.push(SimTime::from_ns(10), 'b');
        q.push(SimTime::from_ns(5), 'c');
        let (t, s, e) = q.pop_with_seq().expect("non-empty");
        assert_eq!((t, e), (SimTime::from_ns(5), 'c'));
        // Reinserting under the original seq restores the exact total order.
        q.push_at_seq(t, s, e);
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['c', 'a', 'b']);
    }

    /// The adversarial dense-churn pattern from the calendar-queue bench:
    /// thousands of live events packed into ~2 µs. The adaptive geometry
    /// must narrow (bounding the within-bucket scans) while popping in
    /// exactly the oracle's order.
    #[test]
    fn dense_churn_narrows_and_matches_oracle() {
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64; // ps
        for _ in 0..4096 {
            let t = SimTime::from_ps(now + rng() % 2_000_000);
            cal.push(t, t);
            heap.push(t, t);
        }
        for _ in 0..20_000 {
            let (tc, ec) = cal.pop().expect("calendar");
            let (th, eh) = heap.pop().expect("heap");
            assert_eq!((tc, ec), (th, eh));
            now = tc.as_ps();
            let t = SimTime::from_ps(now + rng() % 2_000_000);
            cal.push(t, t);
            heap.push(t, t);
        }
        assert!(
            cal.bucket_width_log2() < DEFAULT_BUCKET_WIDTH_LOG2,
            "a 4k-event 2 µs horizon must trigger a narrowing rehash (width 2^{})",
            cal.bucket_width_log2()
        );
        while let Some(got) = cal.pop() {
            assert_eq!(Some(got), heap.pop());
        }
        assert!(heap.is_empty());
    }

    /// After a dense burst drains, normally-spaced traffic must widen the
    /// geometry back toward the construction width instead of staying in
    /// permanent overflow-heap mode.
    #[test]
    fn widens_back_after_dense_burst() {
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapQueue::new();
        // Dense burst: 4096 events inside 2 µs.
        for i in 0..4096u64 {
            let t = SimTime::from_ps(i * 488);
            cal.push(t, t);
            heap.push(t, t);
        }
        // Normal tail: one event every ~200 ns for 200 µs.
        for i in 0..1000u64 {
            let t = SimTime::from_ns(2_000 + i * 200);
            cal.push(t, t);
            heap.push(t, t);
        }
        while let Some(got) = cal.pop() {
            assert_eq!(Some(got), heap.pop());
        }
        assert!(heap.is_empty());
        assert_eq!(
            cal.bucket_width_log2(),
            DEFAULT_BUCKET_WIDTH_LOG2,
            "sparse traffic after the burst must widen the geometry back"
        );
    }

    /// Geometry adaptation is invisible to the pop order on arbitrary
    /// mixed-density interleavings (the oracle differential, densified).
    #[test]
    fn adaptive_geometry_matches_oracle_on_mixed_densities() {
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let mut state = 0x853c49e6748fea9bu64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut now = 0u64;
        for step in 0..30_000u32 {
            // Alternate dense (sub-µs) and sparse (hundreds of µs) regimes.
            let span = if (step / 3_000) % 2 == 0 {
                800_000
            } else {
                400_000_000
            };
            let t = SimTime::from_ps(now + rng() % span);
            cal.push(t, t);
            heap.push(t, t);
            if step % 3 != 0 {
                let (tc, ec) = cal.pop().expect("calendar");
                assert_eq!(Some((tc, ec)), heap.pop());
                now = tc.as_ps();
            }
        }
        while let Some(got) = cal.pop() {
            assert_eq!(Some(got), heap.pop());
        }
        assert!(heap.is_empty());
    }
}
