//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by time,
//! with ties broken by insertion sequence number so that simulations are
//! bit-reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for a particular instant.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-time priority queue of simulation events.
///
/// Events that share an instant pop in the order they were pushed (FIFO),
/// which keeps runs deterministic.
///
/// # Examples
///
/// ```
/// use simcore::event::EventQueue;
/// use simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(10), "late");
/// q.push(SimTime::from_ns(5), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// The world a [`run`] loop drives: a state machine that reacts to events and
/// may schedule further events.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handles `event` occurring at `now`; may push follow-up events onto
    /// `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// Called after each event is handled; returning `true` stops the run
    /// early (e.g. once enough requests completed).
    fn should_stop(&self, _now: SimTime) -> bool {
        false
    }
}

/// Outcome of driving a [`World`] to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of events dispatched.
    pub events: u64,
    /// Simulated instant at which the run ended.
    pub end_time: SimTime,
    /// True if the run ended because [`World::should_stop`] returned `true`
    /// (as opposed to queue exhaustion or the horizon).
    pub stopped_early: bool,
}

/// Drains `queue` through `world` until the queue empties, `horizon` passes,
/// or the world requests a stop.
///
/// Events scheduled beyond `horizon` are left unprocessed.
pub fn run<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    horizon: SimTime,
) -> RunSummary {
    let mut events = 0u64;
    let mut now = SimTime::ZERO;
    while let Some(t) = queue.peek_time() {
        if t > horizon {
            return RunSummary {
                events,
                end_time: now,
                stopped_early: false,
            };
        }
        let (t, event) = queue.pop().expect("peeked event must exist");
        debug_assert!(t >= now, "event queue went backwards in time");
        now = t;
        world.handle(now, event, queue);
        events += 1;
        if world.should_stop(now) {
            return RunSummary {
                events,
                end_time: now,
                stopped_early: true,
            };
        }
    }
    RunSummary {
        events,
        end_time: now,
        stopped_early: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(5), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(5)));
        q.clear();
        assert!(q.is_empty());
    }

    /// A world that re-schedules a tick N times then stops.
    struct Ticker {
        remaining: u32,
        period: SimDuration,
        seen: Vec<SimTime>,
    }

    impl World for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _e: (), queue: &mut EventQueue<()>) {
            self.seen.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.push(now + self.period, ());
            }
        }
        fn should_stop(&self, _now: SimTime) -> bool {
            false
        }
    }

    #[test]
    fn run_loop_drives_world() {
        let mut w = Ticker {
            remaining: 4,
            period: SimDuration::from_ns(10),
            seen: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let summary = run(&mut w, &mut q, SimTime::MAX);
        assert_eq!(summary.events, 5);
        assert_eq!(summary.end_time, SimTime::from_ns(40));
        assert!(!summary.stopped_early);
        assert_eq!(w.seen.len(), 5);
    }

    #[test]
    fn run_respects_horizon() {
        let mut w = Ticker {
            remaining: 1000,
            period: SimDuration::from_ns(10),
            seen: Vec::new(),
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let summary = run(&mut w, &mut q, SimTime::from_ns(35));
        // Events at 0,10,20,30 processed; 40 is beyond the horizon.
        assert_eq!(summary.events, 4);
        assert!(!q.is_empty());
    }

    struct StopAtThree(u32);
    impl World for StopAtThree {
        type Event = u32;
        fn handle(&mut self, _now: SimTime, e: u32, _q: &mut EventQueue<u32>) {
            self.0 = e;
        }
        fn should_stop(&self, _now: SimTime) -> bool {
            self.0 == 3
        }
    }

    #[test]
    fn run_stops_early() {
        let mut w = StopAtThree(0);
        let mut q = EventQueue::new();
        for i in 1..=10 {
            q.push(SimTime::from_ns(i as u64), i);
        }
        let summary = run(&mut w, &mut q, SimTime::MAX);
        assert!(summary.stopped_early);
        assert_eq!(summary.events, 3);
        assert_eq!(q.len(), 7);
    }
}
