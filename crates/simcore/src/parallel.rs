//! Deterministic fan-out execution.
//!
//! Parameter sweeps dominate the wall-clock of every figure reproduction:
//! dozens of independent `(system, load)` simulations, each fully
//! deterministic given its seed. This module fans such jobs out across OS
//! threads while guaranteeing **bit-identical results regardless of thread
//! count**:
//!
//! - Jobs are identified by their index in the input; results are reassembled
//!   in index order, so scheduling races never reorder output.
//! - [`seeded_map`] derives each job's RNG seed from a root seed and the job
//!   index via [`crate::rng::derive_seed`], never from anything a thread
//!   observes at runtime.
//!
//! The worker pool uses `std::thread::scope` — no extra dependencies, no
//! `unsafe` — and pulls jobs from a shared list so long and short jobs
//! balance across threads.

use crate::rng::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Number of worker threads to use by default: the `SWEEP_THREADS`
/// environment variable if set and positive, otherwise the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of `threads` workers and returns the
/// results in input order.
///
/// `f` receives `(index, item)`. The output at position `i` is always
/// `f(i, items[i])`, so the result is independent of thread count and
/// scheduling — any run with the same inputs produces the same output.
///
/// # Panics
///
/// Panics if `threads == 0` or if any invocation of `f` panics.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if threads == 1 || n == 1 {
        // Fast path: no pool, no locking; identical results by construction.
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    // Shared job list: workers take the lowest untaken index. A Mutex'd
    // Vec<Option<T>> keeps this crate free of unsafe code; the lock is held
    // only to take the next job, not while running it.
    let jobs: Mutex<std::vec::IntoIter<(usize, T)>> = Mutex::new(
        items
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter(),
    );
    let workers = threads.min(n);

    let mut chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let job = jobs.lock().expect("job list lock poisoned").next();
                        match job {
                            Some((idx, item)) => out.push((idx, f(idx, item))),
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    // Reassemble in index order so output is scheduling-independent.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for chunk in &mut chunks {
        for (idx, r) in chunk.drain(..) {
            debug_assert!(slots[idx].is_none(), "job {idx} ran twice");
            slots[idx] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job produced a result"))
        .collect()
}

/// Like [`parallel_map`], but hands each job a private [`StdRng`] seeded by
/// `derive_seed(root_seed, index)`.
///
/// Seeds depend only on the root seed and the job's position, so a sweep's
/// random draws are identical whether it runs on 1 thread or 64.
pub fn seeded_map<T, R, F>(root_seed: u64, items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T, StdRng) -> R + Sync,
{
    parallel_map(items, threads, |idx, item| {
        let rng = StdRng::seed_from_u64(derive_seed(root_seed, idx as u64));
        f(idx, item, rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 4, |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run = |threads| {
            parallel_map((0..37u64).collect::<Vec<_>>(), threads, |i, x| {
                // A mildly expensive, deterministic function of the job only.
                (0..1000u64).fold(x.wrapping_mul(i as u64 + 1), |a, b| a.rotate_left(7) ^ b)
            })
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(3));
        assert_eq!(one, run(16));
    }

    #[test]
    fn seeded_map_is_thread_count_invariant() {
        let run = |threads| {
            seeded_map(42, vec![(); 24], threads, |_, _, mut rng| {
                (0..64)
                    .map(|_| rng.random::<u64>())
                    .fold(0u64, u64::wrapping_add)
            })
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn seeded_map_jobs_get_distinct_streams() {
        let sums = seeded_map(7, vec![(); 8], 2, |_, _, mut rng| rng.random::<u64>());
        let mut uniq = sums.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), sums.len(), "per-job streams must differ");
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(empty, 4, |_, x: u32| x).is_empty());
        assert_eq!(parallel_map(vec![9u32], 4, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_jobs() {
        let out = parallel_map(vec![1u32, 2], 16, |_, x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
