//! Deterministic random-number plumbing.
//!
//! Every stochastic component of a simulation gets its own RNG stream derived
//! from a single master seed, so adding a new component never perturbs the
//! draws seen by existing ones.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Derives a child seed from `master` for the stream named by `stream`.
///
/// Uses the splitmix64 finalizer, which decorrelates nearby inputs.
///
/// # Examples
///
/// ```
/// use simcore::rng::derive_seed;
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0)); // deterministic
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a seeded [`StdRng`] for the given master seed and stream id.
pub fn stream_rng(master: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, stream))
}

/// Number of `u64` words a [`BatchedRng`] prefetches per refill.
const RNG_BATCH: usize = 64;

/// An [`RngCore`] adapter that draws from its inner generator in blocks.
///
/// Hot paths that consume one word at a time pay the generator's full
/// state-update dependency chain per draw; prefetching a block amortizes
/// that into a tight refill loop and serves draws from a local ring.
///
/// The `u64` stream is *identical by construction* to the inner
/// generator's: `next_u64` returns exactly the words the inner RNG would
/// produce, in order, and every derived draw (`next_u32`, `fill_bytes`,
/// ranges via the blanket [`rand::Rng`] impl) is defined in terms of
/// `next_u64` — so batching can never perturb a seeded stream, only
/// front-run it by at most one block.
///
/// # Examples
///
/// ```
/// use rand::{Rng, SeedableRng};
/// use rand::rngs::StdRng;
/// use simcore::rng::BatchedRng;
///
/// let mut plain = StdRng::seed_from_u64(9);
/// let mut batched = BatchedRng::new(StdRng::seed_from_u64(9));
/// for _ in 0..200 {
///     assert_eq!(
///         plain.random_range(0..17u32),
///         batched.random_range(0..17u32),
///     );
/// }
/// ```
pub struct BatchedRng<R> {
    inner: R,
    buf: [u64; RNG_BATCH],
    pos: usize,
    draws: u64,
}

impl<R: RngCore> BatchedRng<R> {
    /// Wraps `inner`, deferring the first refill until the first draw.
    pub fn new(inner: R) -> Self {
        BatchedRng {
            inner,
            buf: [0; RNG_BATCH],
            pos: RNG_BATCH,
            draws: 0,
        }
    }

    /// Number of `u64` words *served* so far — the logical draw count of
    /// the stream, not the number of words prefetched from the inner
    /// generator (which runs ahead by up to one block). This is the count
    /// the record/replay artifacts pin: it equals what an unbatched RNG
    /// would have drawn at the same point of the simulation.
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

impl<R: RngCore> RngCore for BatchedRng<R> {
    fn next_u64(&mut self) -> u64 {
        if self.pos == RNG_BATCH {
            for slot in &mut self.buf {
                *slot = self.inner.next_u64();
            }
            self.pos = 0;
        }
        let word = self.buf[self.pos];
        self.pos += 1;
        self.draws += 1;
        word
    }
}

/// An [`RngCore`] adapter that mirrors every logical `u64` draw count into
/// a shared [`Cell`](std::cell::Cell), for generators that are moved into
/// closures (e.g. a stream injector) while the surrounding run still needs
/// the final draw count afterwards. The draw *values* pass through
/// untouched, so wrapping never perturbs a seeded stream.
///
/// # Examples
///
/// ```
/// use std::cell::Cell;
/// use rand::{Rng, SeedableRng};
/// use rand::rngs::StdRng;
/// use simcore::rng::CountingRng;
///
/// let draws = Cell::new(0u64);
/// let mut rng = CountingRng::new(StdRng::seed_from_u64(1), &draws);
/// let _: u64 = rng.random();
/// let _ = rng.random_range(0..10u32);
/// assert_eq!(draws.get(), 2);
/// ```
pub struct CountingRng<'a, R> {
    inner: R,
    draws: &'a std::cell::Cell<u64>,
}

impl<'a, R: RngCore> CountingRng<'a, R> {
    /// Wraps `inner`, accumulating draw counts into `draws`.
    pub fn new(inner: R, draws: &'a std::cell::Cell<u64>) -> Self {
        CountingRng { inner, draws }
    }
}

impl<R: RngCore> RngCore for CountingRng<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.draws.set(self.draws.get() + 1);
        self.inner.next_u64()
    }
}

/// Well-known stream ids, so components across crates never collide.
pub mod streams {
    /// Request arrival process.
    pub const ARRIVALS: u64 = 1;
    /// Service-time sampling.
    pub const SERVICE: u64 = 2;
    /// NIC dispatch decisions (RSS hashing, random steering).
    pub const NIC: u64 = 3;
    /// Scheduler-internal randomness (victim selection in work stealing).
    pub const SCHEDULER: u64 = 4;
    /// Key selection for KVS workloads.
    pub const KEYS: u64 = 5;
    /// Rate-modulation process for bursty (real-world) traffic.
    pub const MODULATION: u64 = 6;
    /// Fault-injection decisions (NoC drop/delay); isolated so that adding
    /// faults to a run never perturbs the workload streams above.
    pub const FAULTS: u64 = 7;
    /// Rack-tier inter-server routing (power-of-k candidate sampling at the
    /// ToR); isolated so the rack layer never perturbs per-server streams.
    pub const RACK: u64 = 8;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_stream() {
        let mut a1 = stream_rng(7, streams::ARRIVALS);
        let mut a2 = stream_rng(7, streams::ARRIVALS);
        let xs: Vec<u64> = (0..16).map(|_| a1.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| a2.random()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = stream_rng(7, streams::ARRIVALS);
        let mut b = stream_rng(7, streams::SERVICE);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn nearby_masters_decorrelate() {
        // splitmix64 should give very different child seeds for master, master+1.
        let a = derive_seed(100, 0);
        let b = derive_seed(101, 0);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }
}
