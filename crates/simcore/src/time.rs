//! Simulation time.
//!
//! The simulator keeps time in integer **picoseconds** so that sub-nanosecond
//! quantities (e.g. the 2.5 ns mean inter-packet gap of a 1.6 TbE NIC) are
//! representable without rounding drift, while still covering multi-hour
//! simulated horizons in a `u64`.
//!
//! Two newtypes are provided: [`SimTime`], an absolute instant since the
//! start of the simulation, and [`SimDuration`], a span between instants.
//! They are deliberately distinct types ([`SimTime`] + [`SimDuration`] =
//! [`SimTime`], [`SimTime`] − [`SimTime`] = [`SimDuration`]) so that the
//! compiler rejects category errors such as adding two instants.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute instant of simulated time, measured in picoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use simcore::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_ns(5);
/// assert_eq!(t.as_ns_f64(), 5.0);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_ns(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in picoseconds.
///
/// # Examples
///
/// ```
/// use simcore::time::SimDuration;
///
/// let d = SimDuration::from_us(1) + SimDuration::from_ns(500);
/// assert_eq!(d.as_ns_f64(), 1500.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant `ns` nanoseconds after the origin.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Creates an instant `us` microseconds after the origin.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Raw picoseconds since the origin.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds since the origin, as a float (may lose precision above
    /// ~2^53 ps, i.e. multi-hour horizons; fine for reporting).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Microseconds since the origin, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Seconds since the origin, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is actually later (saturating).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction: `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Creates a span from fractional nanoseconds, rounding to the nearest
    /// picosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_ns_f64(ns: f64) -> Self {
        if !ns.is_finite() || ns <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ns * PS_PER_NS as f64).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a span from fractional microseconds (see [`Self::from_ns_f64`]).
    pub fn from_us_f64(us: f64) -> Self {
        Self::from_ns_f64(us * 1e3)
    }

    /// Creates a span of `cycles` CPU cycles at `ghz` GHz.
    ///
    /// # Examples
    ///
    /// ```
    /// use simcore::time::SimDuration;
    /// // 70 cycles at 2 GHz = 35 ns (the Shinjuku dispatch cost).
    /// assert_eq!(SimDuration::from_cycles(70, 2.0).as_ns_f64(), 35.0);
    /// ```
    pub fn from_cycles(cycles: u64, ghz: f64) -> Self {
        Self::from_ns_f64(cycles as f64 / ghz)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds as a float.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Microseconds as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// True iff this is the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by an integer factor, saturating at [`SimDuration::MAX`].
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds on underflow.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.3}ns)", self.as_ns_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.3}ns)", self.as_ns_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_MS {
            write!(f, "{:.3}ms", self.0 as f64 / PS_PER_MS as f64)
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{:.3}ns", self.as_ns_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimDuration::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimDuration::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_ns(3).as_ns_f64(), 3.0);
        assert_eq!(SimTime::from_us(2).as_us_f64(), 2.0);
    }

    #[test]
    fn arithmetic_instant_span() {
        let t0 = SimTime::from_ns(100);
        let t1 = t0 + SimDuration::from_ns(50);
        assert_eq!(t1, SimTime::from_ns(150));
        assert_eq!(t1 - t0, SimDuration::from_ns(50));
        assert_eq!(t1 - SimDuration::from_ns(150), SimTime::ZERO);
    }

    #[test]
    fn fractional_ns() {
        let d = SimDuration::from_ns_f64(2.5);
        assert_eq!(d.as_ps(), 2_500);
        assert_eq!(SimDuration::from_ns_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_ns_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn cycles_at_frequency() {
        assert_eq!(SimDuration::from_cycles(100, 2.0).as_ns_f64(), 50.0);
        assert_eq!(SimDuration::from_cycles(7, 2.0).as_ps(), 3_500);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_ns(1), SimTime::MAX);
        assert_eq!(
            SimTime::from_ns(1).saturating_since(SimTime::from_ns(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::from_ns(1).checked_since(SimTime::from_ns(5)), None);
        assert_eq!(
            SimDuration::from_ns(1).saturating_sub(SimDuration::from_ns(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert!(SimDuration::from_us(1) > SimDuration::from_ns(999));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_ns(5).to_string(), "5.000ns");
        assert_eq!(SimDuration::from_us(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_ms(5).to_string(), "5.000ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }

    #[test]
    fn div_and_mul() {
        assert_eq!(SimDuration::from_ns(10) / 4, SimDuration::from_ps(2_500));
        assert_eq!(SimDuration::from_ns(3) * 3, SimDuration::from_ns(9));
    }
}
