//! Plain-text table rendering for experiment binaries.
//!
//! Every figure-reproduction binary prints its series as an aligned table so
//! that `EXPERIMENTS.md` can quote output verbatim and downstream scripts can
//! parse it (`column -t`-style: header row, then one row per data point).

use std::fmt::Write as _;

/// An aligned, plain-text table.
///
/// # Examples
///
/// ```
/// use simcore::report::Table;
///
/// let mut t = Table::new(&["load", "p99_us"]);
/// t.row(&["0.5", "1.23"]);
/// t.row(&["0.9", "4.56"]);
/// let s = t.render();
/// assert!(s.contains("load"));
/// assert!(s.lines().count() == 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells (convenient with `format!`).
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-aligned columns (two-space gutters).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i + 1 == ncols {
                    let _ = write!(out, "{cell}");
                } else {
                    let _ = write!(out, "{cell:<width$}  ", width = widths[i]);
                }
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        // Trim trailing newline for cleaner embedding.
        out.pop();
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Renders as RFC-4180-style CSV: comma-separated, `\n` line ends, and
    /// cells containing a comma, quote or newline wrapped in double quotes
    /// (embedded quotes doubled). Ends with a trailing newline.
    pub fn to_csv(&self) -> String {
        self.delimited(',')
    }

    /// Renders as TSV. Cells containing a tab or newline are quoted as in
    /// [`to_csv`](Self::to_csv). Ends with a trailing newline.
    pub fn to_tsv(&self) -> String {
        self.delimited('\t')
    }

    fn delimited(&self, sep: char) -> String {
        let quote_cell = |cell: &str, out: &mut String| {
            if cell.contains(sep) || cell.contains('"') || cell.contains('\n') {
                out.push('"');
                for c in cell.chars() {
                    if c == '"' {
                        out.push('"');
                    }
                    out.push(c);
                }
                out.push('"');
            } else {
                out.push_str(cell);
            }
        };
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(sep);
                }
                quote_cell(cell, out);
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Formats a float with 3 significant decimals, trimming noise.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["x", "1"]);
        t.row(&["yyyy", "2"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        // All value columns start at the same offset.
        let off0 = lines[0].find("long_header").unwrap();
        let off1 = lines[1].find('1').unwrap();
        let off2 = lines[2].find('2').unwrap();
        assert_eq!(off0, off1);
        assert_eq!(off1, off2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.123), "12.30%");
    }

    #[test]
    fn csv_and_tsv_render() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["plain", "1"]);
        t.row(&["needs,quote", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(
            csv,
            "name,value\nplain,1\n\"needs,quote\",\"say \"\"hi\"\"\"\n"
        );
        let tsv = t.to_tsv();
        assert_eq!(
            tsv,
            "name\tvalue\nplain\t1\nneeds,quote\t\"say \"\"hi\"\"\"\n"
        );
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row_owned(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
