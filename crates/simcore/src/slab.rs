//! Free-list slab arena with generation-checked handles.
//!
//! Event payloads that are large, non-`Copy`, or rare (request metadata,
//! protocol messages with heap-owned descriptor lists) are parked in a
//! [`Slab`] and referenced from the event queue by an 8-byte Copy
//! [`Handle`]. That keeps calendar-queue buckets full of small
//! memcpy-able entries — the bucket min-scan cost is proportional to
//! entry size — while the payload is written once and read once.
//!
//! Slots are recycled through a free list, so the steady state performs
//! zero allocation: the slab grows to the high-water mark of concurrently
//! live payloads and then every `insert` reuses a vacated slot. Each slot
//! carries a generation counter, bumped on removal; a [`Handle`] embeds
//! the generation it was minted with, so use-after-take and double-take
//! are deterministic panics instead of silent payload aliasing.

/// A generation-checked reference to a slot in a [`Slab`].
///
/// 8 bytes and `Copy`, so it travels through event queues at memcpy cost.
/// A handle is minted by [`Slab::insert`] and consumed by [`Slab::take`];
/// using it after the slot was vacated panics on the generation check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    idx: u32,
    gen: u32,
}

impl Handle {
    /// The raw slot index (diagnostics only — the generation is what makes
    /// a handle safe to dereference).
    pub fn index(self) -> u32 {
        self.idx
    }
}

/// A growable arena of `T` slots with O(1) insert/take and free-list reuse.
///
/// # Examples
///
/// ```
/// use simcore::slab::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.len(), 2);
/// assert_eq!(slab.take(a), "alpha");
/// let c = slab.insert("gamma"); // reuses a's slot, new generation
/// assert_eq!(slab.take(b), "beta");
/// assert_eq!(slab.take(c), "gamma");
/// assert!(slab.is_empty());
/// ```
pub struct Slab<T> {
    slots: Vec<(u32, Option<T>)>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab pre-sized for `cap` concurrently live payloads.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            len: 0,
        }
    }

    /// Number of live payloads.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no payloads are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (the high-water mark of concurrency).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Stores `val`, returning its handle. Reuses a vacated slot when one
    /// exists; only a new high-water mark allocates.
    pub fn insert(&mut self, val: T) -> Handle {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.1.is_none(), "free-list slot still occupied");
            slot.1 = Some(val);
            Handle { idx, gen: slot.0 }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab capacity exceeds u32");
            self.slots.push((0, Some(val)));
            Handle { idx, gen: 0 }
        }
    }

    /// Removes and returns the payload behind `h`, vacating its slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale: the slot was already taken (its
    /// generation advanced) or never minted by this slab.
    pub fn take(&mut self, h: Handle) -> T {
        let slot = &mut self.slots[h.idx as usize];
        assert_eq!(
            slot.0, h.gen,
            "stale slab handle: slot {} is at generation {}, handle has {}",
            h.idx, slot.0, h.gen
        );
        let val = slot.1.take().expect("slab handle taken twice");
        slot.0 = slot.0.wrapping_add(1);
        self.free.push(h.idx);
        self.len -= 1;
        val
    }

    /// A shared reference to the payload behind `h`, if still live at the
    /// handle's generation.
    pub fn get(&self, h: Handle) -> Option<&T> {
        match self.slots.get(h.idx as usize) {
            Some((gen, Some(val))) if *gen == h.gen => Some(val),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut slab = Slab::with_capacity(2);
        let a = slab.insert(10u64);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        assert_eq!(slab.take(a), 10);
        assert_eq!(slab.take(b), 20);
        assert!(slab.is_empty());
    }

    #[test]
    fn slots_recycle_without_growth() {
        let mut slab = Slab::new();
        let mut handles: Vec<Handle> = (0..8).map(|i| slab.insert(i)).collect();
        let high_water = slab.capacity();
        for _ in 0..100 {
            let h = handles.pop().expect("non-empty");
            let v = slab.take(h);
            handles.insert(0, slab.insert(v + 1));
        }
        assert_eq!(slab.capacity(), high_water, "steady state must not grow");
        assert_eq!(slab.len(), 8);
    }

    #[test]
    #[should_panic(expected = "stale slab handle")]
    fn stale_handle_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(1u8);
        slab.take(a);
        let _b = slab.insert(2); // reuses the slot at a new generation
        slab.take(a); // stale: generation moved on
    }

    #[test]
    fn get_rejects_stale_handles() {
        let mut slab = Slab::new();
        let a = slab.insert("x");
        slab.take(a);
        assert_eq!(slab.get(a), None);
        let b = slab.insert("y");
        assert_eq!(slab.get(b), Some(&"y"));
        assert_eq!(slab.get(a), None, "same slot, older generation");
    }
}
