//! Building blocks for the parallel-in-one-run engine.
//!
//! Sweep-level fan-out ([`crate::parallel`]) cannot speed up *one* large
//! simulation; for that the engine itself must run event windows of
//! independent mesh partitions on different threads. This module holds the
//! engine-agnostic pieces:
//!
//! - [`Partitioning`]: a validated split of `n` scheduling groups into
//!   contiguous, disjoint ranges — one per worker shard. Ranges may be
//!   listed in any order; determinism must never depend on partition order
//!   (the engine merges shard output on the exact `(time, seq)` rank).
//! - [`with_pool`]: a persistent scoped worker pool with spin-polling
//!   channels. Simulation windows are short (microseconds of work), so the
//!   pool is created **once per run** and jobs are exchanged over lock-free
//!   mpsc channels with busy-wait receives — a per-window `thread::scope`
//!   would cost more in spawn/join than the window itself.
//! - [`par_threads`]: the `PAR_THREADS` environment knob, mirroring the
//!   sweep-level `SWEEP_THREADS` convention.
//!
//! Nothing here knows about the simulated system; determinism is the
//! *caller's* obligation (tag jobs, merge results by rank). The pool only
//! guarantees that every job sent is executed exactly once by the worker it
//! was addressed to.

use std::ops::Range;
use std::sync::mpsc;
use std::time::Duration;

/// Busy-wait iterations before a blocked receive starts yielding the CPU.
/// On a machine with a single hardware thread the budget is zero: spinning
/// can never let the other side progress, so both ends go straight to
/// yielding/blocking (the pool stays correct, just cooperatively scheduled).
const SPIN_BUDGET: u32 = 10_000;

/// The effective spin budget for this machine (see [`SPIN_BUDGET`]).
fn spin_budget() -> u32 {
    match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => SPIN_BUDGET,
        _ => 0,
    }
}

/// Hard ceiling on how long a receive may block. Only reachable if a worker
/// died mid-job (a bug); turning a silent deadlock into a loud panic keeps
/// CI failures diagnosable.
const RECV_DEADLINE: Duration = Duration::from_secs(30);

/// A split of `n` items (scheduling groups) into contiguous, disjoint
/// ranges that exactly cover `0..n`.
///
/// Ranges may appear in any order — the engine's output is required to be
/// independent of partition order, and tests exercise permuted layouts.
///
/// # Examples
///
/// ```
/// use simcore::parengine::Partitioning;
///
/// let p = Partitioning::even(10, 4);
/// assert_eq!(p.parts(), 4);
/// assert_eq!(p.ranges()[0], 0..3); // remainder spread over the first parts
/// assert_eq!(p.part_of(9), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    n: usize,
    ranges: Vec<Range<usize>>,
    part_of: Vec<u32>,
}

impl Partitioning {
    /// Builds a partitioning from explicit ranges.
    ///
    /// # Panics
    ///
    /// Panics unless the ranges are non-empty, in-bounds, disjoint, and
    /// together cover every index in `0..n` exactly once.
    pub fn new(n: usize, ranges: Vec<Range<usize>>) -> Self {
        assert!(n > 0, "cannot partition zero items");
        let mut part_of = vec![u32::MAX; n];
        for (p, r) in ranges.iter().enumerate() {
            assert!(!r.is_empty(), "partition {p} is empty ({r:?})");
            assert!(r.end <= n, "partition {p} out of bounds ({r:?} vs n={n})");
            for g in r.clone() {
                assert!(
                    part_of[g] == u32::MAX,
                    "item {g} covered by partitions {} and {p}",
                    part_of[g]
                );
                part_of[g] = p as u32;
            }
        }
        assert!(
            part_of.iter().all(|&p| p != u32::MAX),
            "partitioning does not cover 0..{n}"
        );
        Partitioning { n, ranges, part_of }
    }

    /// Splits `0..n` into `parts` near-equal contiguous ranges (the first
    /// `n % parts` ranges get one extra item). `parts` is clamped to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `parts == 0`.
    pub fn even(n: usize, parts: usize) -> Self {
        assert!(parts > 0, "need at least one partition");
        let parts = parts.min(n);
        let base = n / parts;
        let extra = n % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0;
        for p in 0..parts {
            let len = base + usize::from(p < extra);
            ranges.push(start..start + len);
            start += len;
        }
        Self::new(n, ranges)
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.ranges.len()
    }

    /// Number of items partitioned.
    pub fn items(&self) -> usize {
        self.n
    }

    /// The ranges, in partition order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Which partition owns item `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn part_of(&self, g: usize) -> usize {
        self.part_of[g] as usize
    }
}

/// Worker-thread count for the parallel engine: the `PAR_THREADS`
/// environment variable if set and ≥ 2, otherwise 1 (serial).
///
/// Unlike sweeps, a single run does not default to `available_parallelism`:
/// parallel execution of one run is opt-in, because below a work threshold
/// the serial engine is faster.
pub fn par_threads() -> usize {
    if let Ok(v) = std::env::var("PAR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    1
}

/// Handle for submitting jobs to, and collecting results from, a pool
/// created by [`with_pool`].
pub struct PoolHandle<J, R> {
    senders: Vec<mpsc::Sender<J>>,
    results: mpsc::Receiver<R>,
    in_flight: usize,
    spin_budget: u32,
}

impl<J, R> PoolHandle<J, R> {
    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Jobs submitted but not yet received.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Sends `job` to worker `w`. Never blocks.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range or the worker has died.
    pub fn send(&mut self, w: usize, job: J) {
        self.senders[w].send(job).expect("pool worker died");
        self.in_flight += 1;
    }

    /// Receives one result, in whatever order workers finish. Spins briefly,
    /// then yields; callers needing ordered results must tag jobs.
    ///
    /// # Panics
    ///
    /// Panics if no job is outstanding, or if no result arrives within the
    /// (generous) deadline — which means a worker died mid-job.
    pub fn recv(&mut self) -> R {
        assert!(self.in_flight > 0, "recv() with no job in flight");
        self.in_flight -= 1;
        let mut spins = 0u32;
        loop {
            match self.results.try_recv() {
                Ok(r) => return r,
                Err(mpsc::TryRecvError::Empty) => {
                    if spins < self.spin_budget {
                        spins += 1;
                        std::hint::spin_loop();
                    } else {
                        // Cold path: block properly instead of burning CPU.
                        return self
                            .results
                            .recv_timeout(RECV_DEADLINE)
                            .expect("pool worker died or stalled past deadline");
                    }
                }
                Err(mpsc::TryRecvError::Disconnected) => {
                    panic!("pool worker died with a job in flight")
                }
            }
        }
    }
}

/// Runs `body` with a pool of `workers` persistent threads, each executing
/// jobs through `f(worker_index, job)`.
///
/// The pool lives exactly as long as `body`: workers are spawned once,
/// spin-poll their private job channel (with periodic yields so an idle
/// pool does not starve the scheduler), and exit when the handle is
/// dropped. All results produced by `f` are delivered through
/// [`PoolHandle::recv`] in completion order.
///
/// # Panics
///
/// Panics if `workers == 0`, or propagates a panic from `f` or `body`.
pub fn with_pool<J, R, F, B, T>(workers: usize, f: F, body: B) -> T
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
    B: FnOnce(&mut PoolHandle<J, R>) -> T,
{
    assert!(workers > 0, "need at least one pool worker");
    let budget = spin_budget();
    let (res_tx, res_rx) = mpsc::channel::<R>();
    std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(workers);
        for w in 0..workers {
            let (job_tx, job_rx) = mpsc::channel::<J>();
            senders.push(job_tx);
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move || {
                let mut spins = 0u32;
                loop {
                    match job_rx.try_recv() {
                        Ok(job) => {
                            spins = 0;
                            if res_tx.send(f(w, job)).is_err() {
                                break; // handle dropped mid-send; shutting down
                            }
                        }
                        Err(mpsc::TryRecvError::Empty) => {
                            if spins < budget {
                                spins += 1;
                                std::hint::spin_loop();
                            } else {
                                spins = 0;
                                std::thread::yield_now();
                            }
                        }
                        Err(mpsc::TryRecvError::Disconnected) => break,
                    }
                }
            });
        }
        drop(res_tx);
        let mut handle = PoolHandle {
            senders,
            results: res_rx,
            in_flight: 0,
            spin_budget: budget,
        };
        let out = body(&mut handle);
        drop(handle); // closes job channels; workers exit, scope joins them
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partitioning_covers_with_remainder_up_front() {
        let p = Partitioning::even(10, 4);
        assert_eq!(p.ranges(), &[0..3, 3..6, 6..8, 8..10]);
        assert_eq!(p.parts(), 4);
        assert_eq!(p.items(), 10);
        for g in 0..10 {
            assert!(p.ranges()[p.part_of(g)].contains(&g));
        }
    }

    #[test]
    fn even_clamps_parts_to_items() {
        let p = Partitioning::even(3, 8);
        assert_eq!(p.parts(), 3);
        assert_eq!(p.ranges(), &[0..1, 1..2, 2..3]);
    }

    #[test]
    fn explicit_ranges_may_be_permuted() {
        let p = Partitioning::new(6, vec![4..6, 0..2, 2..4]);
        assert_eq!(p.part_of(5), 0);
        assert_eq!(p.part_of(0), 1);
        assert_eq!(p.part_of(3), 2);
    }

    #[test]
    #[should_panic(expected = "covered by partitions")]
    fn overlapping_ranges_rejected() {
        Partitioning::new(4, vec![0..2, 1..4]);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn gapped_ranges_rejected() {
        Partitioning::new(4, vec![0..1, 2..4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_ranges_rejected() {
        Partitioning::new(4, vec![0..2, 2..5]);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_range_rejected() {
        Partitioning::new(2, vec![0..2, 2..2]);
    }

    #[test]
    fn pool_runs_every_job_on_its_worker() {
        let out = with_pool(
            4,
            |w, x: u64| (w, x * 2),
            |pool| {
                for i in 0..32u64 {
                    pool.send((i % 4) as usize, i);
                }
                let mut got: Vec<(usize, u64)> = (0..32).map(|_| pool.recv()).collect();
                got.sort_unstable();
                got
            },
        );
        let mut want: Vec<(usize, u64)> = (0..32u64).map(|i| ((i % 4) as usize, i * 2)).collect();
        want.sort_unstable();
        assert_eq!(out, want);
    }

    #[test]
    fn pool_survives_many_small_batches() {
        // The engine sends one job per shard per window, thousands of times.
        let total = with_pool(
            3,
            |_, x: u64| x + 1,
            |pool| {
                let mut sum = 0u64;
                for round in 0..500u64 {
                    for w in 0..3 {
                        pool.send(w, round);
                    }
                    for _ in 0..3 {
                        sum += pool.recv();
                    }
                }
                sum
            },
        );
        assert_eq!(total, 3 * (1..=500u64).sum::<u64>());
    }

    #[test]
    fn pool_moves_owned_buffers_both_ways() {
        let v = with_pool(
            2,
            |_, mut v: Vec<u64>| {
                v.push(99);
                v
            },
            |pool| {
                pool.send(0, vec![1, 2]);
                pool.recv()
            },
        );
        assert_eq!(v, vec![1, 2, 99]);
    }

    #[test]
    #[should_panic(expected = "no job in flight")]
    fn recv_without_send_panics() {
        with_pool(1, |_, x: u8| x, |pool| pool.recv());
    }

    #[test]
    fn par_threads_defaults_to_serial() {
        // Cannot assert on the env var itself (tests run in one process),
        // but the parse contract is: absent or garbage means 1.
        assert!(par_threads() >= 1);
    }
}
