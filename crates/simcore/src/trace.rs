//! Versioned record/replay run artifacts — the `TRACE/1.0` contract.
//!
//! Every determinism guarantee in this workspace (the elided/event-driven
//! oracles, the quiet-window parallel engine, the fault layer's empty-plan
//! byte identity) used to be enforced by sha256 digests of figure stdout,
//! which can only say *something* changed *somewhere*. This module turns a
//! run into a first-class, versioned artifact that a replay can diff
//! against event by event, so a regression reports the exact first
//! divergent `(time, seq)` event instead of a digest mismatch.
//!
//! # Artifact format
//!
//! An artifact is JSON Lines: one meta line, then one *run section* per
//! recorded run. A run section is a header line, body lines, and a footer
//! line:
//!
//! ```text
//! {"artifact":"TRACE/1.0","bin":"fig10_comparison","scenario":"fig10_quick","quick":true,"runs":4}
//! {"run":"AC_rss@0.05","version":"TRACE/1.0","engine":"serial_elided","seed":10,
//!  "config_fp":"0x1234","trace_fp":"0x5678","granularity":"summary","checkpoint_every":512,
//!  "params":{"load":"0.05"}}
//! {"e":[t_ps,seq,kind,group,"0xpayload"]}      # full granularity only
//! {"s":[track,kind,loc,t_ps]}                  # full and spans granularity
//! {"c":[index,"0xdigest",t_ps,seq]}            # every granularity
//! {"end":{"events":N,"spans":M,"digest":"0x…","rng":{"nic":A,"faults":B},
//!  "end_ps":T,"completed":C}}
//! ```
//!
//! The header pins the run's full identity: seed, config fingerprint,
//! workload-trace fingerprint, the engine [`choose_engine`] resolved, and
//! the recording granularity. The body is ordered by the executed
//! `(time, seq)` rank — the event queue's total order — and the rolling
//! FNV-1a digest (checkpointed every `checkpoint_every` events) is
//! computed at *every* granularity, so even a compact summary artifact can
//! localize a divergence to one checkpoint block.
//!
//! All three engines execute the identical `(time, seq, event)` sequence,
//! so a recorded artifact is engine-independent: the engine field is
//! provenance, not part of the comparison.
//!
//! # Granularities
//!
//! - [`Granularity::Full`]: every event record, every span point, all
//!   checkpoints. Largest, pinpoints divergence to a single event.
//! - [`Granularity::Spans`]: span points and checkpoints, no per-event
//!   records. The PR-4 span log plus block-level divergence.
//! - [`Granularity::Summary`]: header, checkpoints and footer only. The
//!   golden-trace format: a few hundred bytes per thousand events, still
//!   localizes a divergence to a `checkpoint_every`-event block (the
//!   replayer then re-runs at full granularity and prints the block).
//!
//! [`choose_engine`]: crate::event::run

use crate::telemetry::{parse_json, Json, SpanLog, SpanPoint, TelemetrySink};
use crate::time::SimTime;

/// Schema version stamped into (and required of) every artifact.
pub const TRACE_VERSION: &str = "TRACE/1.0";

/// Default rolling-digest checkpoint interval, in events.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 512;

/// Environment knob for divergence-injection tests: when set to an event
/// index, the [`Recorder`] perturbs that event's recorded time by +1 ps —
/// simulating a buggy engine so tests can assert `replay` catches the
/// mutation at the exact `(time, seq)`. Never set outside tests.
pub const PERTURB_ENV: &str = "AC_TRACE_PERTURB";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one little-endian `u64` word into a running FNV-1a state.
pub fn fnv1a64_fold(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// How much of a run a [`Recorder`] captures (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Per-event records, span points and checkpoints.
    Full,
    /// Span points and checkpoints only.
    Spans,
    /// Checkpoints only (the golden-trace format).
    Summary,
}

impl Granularity {
    /// The schema label (`"full"`, `"spans"`, `"summary"`).
    pub fn label(self) -> &'static str {
        match self {
            Granularity::Full => "full",
            Granularity::Spans => "spans",
            Granularity::Summary => "summary",
        }
    }

    /// Parses a schema label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "full" => Some(Granularity::Full),
            "spans" => Some(Granularity::Spans),
            "summary" => Some(Granularity::Summary),
            _ => None,
        }
    }
}

/// One executed event, as recorded: its `(time, seq)` rank plus a compact
/// world-defined descriptor (kind tag, home group, payload digest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRec {
    /// Virtual time of the event, in picoseconds.
    pub t_ps: u64,
    /// The event queue sequence number (the tie-break rank).
    pub seq: u64,
    /// World-defined kind tag (e.g. Enqueue/Deliver/WorkerDone/…).
    pub kind: u8,
    /// Home group / location of the event.
    pub group: u32,
    /// World-defined payload digest (discriminates same-kind events).
    pub payload: u64,
}

impl EventRec {
    /// Folds this record into a running FNV-1a digest state.
    pub fn fold_into(&self, h: u64) -> u64 {
        let h = fnv1a64_fold(h, self.t_ps);
        let h = fnv1a64_fold(h, self.seq);
        let h = fnv1a64_fold(h, ((self.kind as u64) << 32) | self.group as u64);
        fnv1a64_fold(h, self.payload)
    }
}

/// A rolling-digest checkpoint: the digest after the first `index` events,
/// stamped with the rank of the last event it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Number of events covered (a multiple of `checkpoint_every`).
    pub index: u64,
    /// FNV-1a digest over events `[0, index)`.
    pub digest: u64,
    /// Time of event `index - 1`, in picoseconds.
    pub t_ps: u64,
    /// Seq of event `index - 1`.
    pub seq: u64,
}

/// The recording [`TelemetrySink`]: captures a run's event stream, span
/// log and rolling digest without perturbing the simulation (hooks only
/// read state the simulation already computed; the sink never pushes
/// events, consumes RNG draws, or alters control flow).
///
/// Buffers can be pre-sized with [`Recorder::with_capacity`] so recording
/// stays within an amortized allocation budget; with recording off
/// ([`crate::telemetry::NullSink`]) the hooks compile away entirely and
/// the budget is zero.
#[derive(Debug)]
pub struct Recorder {
    granularity: Granularity,
    checkpoint_every: u64,
    events: Vec<EventRec>,
    spans: SpanLog,
    count: u64,
    digest: u64,
    checkpoints: Vec<Checkpoint>,
    perturb: Option<u64>,
}

impl Recorder {
    /// A recorder at `granularity` with the default checkpoint interval.
    pub fn new(granularity: Granularity) -> Self {
        Self::with_checkpoint_every(granularity, DEFAULT_CHECKPOINT_EVERY)
    }

    /// A recorder with an explicit checkpoint interval (events per block).
    ///
    /// # Panics
    ///
    /// Panics if `checkpoint_every` is zero.
    pub fn with_checkpoint_every(granularity: Granularity, checkpoint_every: u64) -> Self {
        assert!(checkpoint_every > 0, "checkpoint interval must be positive");
        let perturb = std::env::var(PERTURB_ENV).ok().and_then(|v| v.parse().ok());
        Recorder {
            granularity,
            checkpoint_every,
            events: Vec::new(),
            spans: SpanLog::new(),
            count: 0,
            digest: FNV_OFFSET,
            checkpoints: Vec::new(),
            perturb,
        }
    }

    /// Sets the divergence-injection hook explicitly (the programmatic
    /// equivalent of [`PERTURB_ENV`], immune to env races in parallel
    /// tests): event `idx`'s recorded time is bumped by +1 ps.
    pub fn with_perturb(mut self, idx: Option<u64>) -> Self {
        self.perturb = idx;
        self
    }

    /// Pre-sizes the event and span buffers so recording a run of known
    /// size performs a bounded number of (amortized) allocations.
    pub fn with_capacity(granularity: Granularity, events: usize, spans: usize) -> Self {
        let mut r = Self::new(granularity);
        if granularity == Granularity::Full {
            r.events = Vec::with_capacity(events);
            r.checkpoints = Vec::with_capacity(events / DEFAULT_CHECKPOINT_EVERY as usize + 1);
        }
        if granularity != Granularity::Summary {
            r.spans = SpanLog::with_capacity(spans);
        }
        r
    }

    /// The recording granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// The checkpoint interval, in events.
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every
    }

    /// Recorded event records (empty below [`Granularity::Full`]).
    pub fn events(&self) -> &[EventRec] {
        &self.events
    }

    /// The recorded span log (empty at [`Granularity::Summary`]).
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Digest checkpoints so far.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Number of events observed (counted at every granularity).
    pub fn event_count(&self) -> u64 {
        self.count
    }

    /// The rolling FNV-1a digest over all observed events.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

impl TelemetrySink for Recorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn records_events(&self) -> bool {
        true
    }

    #[inline]
    fn span_point(&mut self, track: u32, kind: u16, loc: u32, at: SimTime) {
        if self.granularity != Granularity::Summary {
            self.spans.record(track, kind, loc, at);
        }
    }

    fn event_record(&mut self, at: SimTime, seq: u64, kind: u8, group: u32, payload: u64) {
        let mut t_ps = at.as_ps();
        if self.perturb == Some(self.count) {
            t_ps += 1;
        }
        let rec = EventRec {
            t_ps,
            seq,
            kind,
            group,
            payload,
        };
        self.digest = rec.fold_into(self.digest);
        self.count += 1;
        if self.count.is_multiple_of(self.checkpoint_every) {
            self.checkpoints.push(Checkpoint {
                index: self.count,
                digest: self.digest,
                t_ps,
                seq,
            });
        }
        if self.granularity == Granularity::Full {
            self.events.push(rec);
        }
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Identity of one recorded run, written into its header line.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Human-readable run label (unique within the artifact; the replayer
    /// keys scenario reconstruction on it).
    pub label: String,
    /// The engine that drove the run (provenance, not compared).
    pub engine: &'static str,
    /// The run's master seed.
    pub seed: u64,
    /// Fingerprint of the full configuration (see the recording system).
    pub config_fp: u64,
    /// Fingerprint of the workload trace.
    pub trace_fp: u64,
    /// Topology of the recorded run within a larger composed system, or
    /// `None` for a standalone single-server run. Rack-tier recordings set
    /// this to a canonical `rack:<servers>x<groups>x<group_size>/...` string
    /// naming the rack shape, ToR model and which server the section
    /// belongs to; the replayer compares it as provenance, so an artifact
    /// replayed against a drifted rack layout fails before any event diff.
    pub topology: Option<String>,
    /// Scenario parameters, as ordered string pairs (e.g. `load = "0.05"`).
    pub params: Vec<(String, String)>,
}

/// Per-run closing totals, written into the footer line.
#[derive(Debug, Clone, Default)]
pub struct RunTotals {
    /// Per-stream RNG draw counts (logical `u64` draws, prefetch-adjusted).
    pub rng: Vec<(String, u64)>,
    /// Virtual end time of the run, in picoseconds.
    pub end_ps: u64,
    /// Completed requests.
    pub completed: u64,
}

fn hex(v: u64) -> String {
    format!("\"0x{v:x}\"")
}

/// Appends the artifact meta line.
pub fn write_artifact_meta(out: &mut String, bin: &str, scenario: &str, quick: bool, runs: usize) {
    out.push_str(&format!(
        "{{\"artifact\":{},\"bin\":{},\"scenario\":{},\"quick\":{quick},\"runs\":{runs}}}\n",
        crate::telemetry::json_string(TRACE_VERSION),
        crate::telemetry::json_string(bin),
        crate::telemetry::json_string(scenario),
    ));
}

/// Appends one full run section (header, body, footer) for a finished
/// recording.
pub fn write_run_section(out: &mut String, meta: &RunMeta, rec: &Recorder, totals: &RunTotals) {
    use crate::telemetry::json_string as js;
    out.push_str(&format!(
        "{{\"run\":{},\"version\":{},\"engine\":{},\"seed\":{},\"config_fp\":{},\
         \"trace_fp\":{},\"granularity\":{},\"checkpoint_every\":{}",
        js(&meta.label),
        js(TRACE_VERSION),
        js(meta.engine),
        meta.seed,
        hex(meta.config_fp),
        hex(meta.trace_fp),
        js(rec.granularity().label()),
        rec.checkpoint_every(),
    ));
    // The topology key is written only for composed (rack-tier) runs, so
    // standalone artifacts stay byte-identical to the pre-rack format.
    if let Some(topo) = &meta.topology {
        out.push_str(&format!(",\"topo\":{}", js(topo)));
    }
    out.push_str(",\"params\":{");
    for (i, (k, v)) in meta.params.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", js(k), js(v)));
    }
    out.push_str("}}\n");
    for e in rec.events() {
        out.push_str(&format!(
            "{{\"e\":[{},{},{},{},{}]}}\n",
            e.t_ps,
            e.seq,
            e.kind,
            e.group,
            hex(e.payload)
        ));
    }
    for s in rec.spans().points() {
        out.push_str(&format!(
            "{{\"s\":[{},{},{},{}]}}\n",
            s.track,
            s.kind,
            s.loc,
            s.at.as_ps()
        ));
    }
    for c in rec.checkpoints() {
        out.push_str(&format!(
            "{{\"c\":[{},{},{},{}]}}\n",
            c.index,
            hex(c.digest),
            c.t_ps,
            c.seq
        ));
    }
    out.push_str(&format!(
        "{{\"end\":{{\"events\":{},\"spans\":{},\"digest\":{},\"rng\":{{",
        rec.event_count(),
        rec.spans().len(),
        hex(rec.digest()),
    ));
    for (i, (k, v)) in totals.rng.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", js(k), v));
    }
    out.push_str(&format!(
        "}},\"end_ps\":{},\"completed\":{}}}}}\n",
        totals.end_ps, totals.completed
    ));
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// The artifact meta line, parsed.
#[derive(Debug, Clone)]
pub struct ArtifactMeta {
    /// The figure binary that recorded the artifact.
    pub bin: String,
    /// Scenario key (e.g. `fig10_quick`) the replayer reconstructs from.
    pub scenario: String,
    /// Whether the `--quick` sweep shape was recorded.
    pub quick: bool,
    /// Declared run-section count (validated against the body).
    pub runs: u64,
}

/// One parsed run section.
#[derive(Debug, Clone)]
pub struct ParsedRun {
    /// Run label from the header.
    pub label: String,
    /// Recording engine (provenance only).
    pub engine: String,
    /// Master seed.
    pub seed: u64,
    /// Configuration fingerprint.
    pub config_fp: u64,
    /// Workload-trace fingerprint.
    pub trace_fp: u64,
    /// Composed-system topology (rack shape + server slot), if recorded.
    pub topology: Option<String>,
    /// Recording granularity.
    pub granularity: Granularity,
    /// Checkpoint interval.
    pub checkpoint_every: u64,
    /// Scenario parameters.
    pub params: Vec<(String, String)>,
    /// Event records (full granularity only).
    pub events: Vec<EventRec>,
    /// Span points (full and spans granularity).
    pub spans: Vec<SpanPoint>,
    /// Digest checkpoints.
    pub checkpoints: Vec<Checkpoint>,
    /// Footer totals.
    pub footer: Footer,
}

/// A parsed run footer.
#[derive(Debug, Clone, Default)]
pub struct Footer {
    /// Events the recorder observed.
    pub events: u64,
    /// Span points the recorder stored.
    pub spans: u64,
    /// Final rolling digest.
    pub digest: u64,
    /// Per-stream RNG draw counts.
    pub rng: Vec<(String, u64)>,
    /// Virtual end time (ps).
    pub end_ps: u64,
    /// Completed requests.
    pub completed: u64,
}

/// A fully parsed artifact.
#[derive(Debug, Clone)]
pub struct ParsedArtifact {
    /// The meta line.
    pub meta: ArtifactMeta,
    /// All run sections, in artifact order.
    pub runs: Vec<ParsedRun>,
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    let v = j.get(key).ok_or_else(|| format!("missing key '{key}'"))?;
    json_u64(v).ok_or_else(|| format!("key '{key}' is not a u64"))
}

fn get_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string key '{key}'"))
}

/// A `u64` from either a JSON number (exact below 2^53) or a `"0x…"` hex
/// string (used for digests and payloads, which need all 64 bits).
fn json_u64(j: &Json) -> Option<u64> {
    match j {
        Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9.007_199_254_740_992e15 => {
            Some(*v as u64)
        }
        Json::Str(s) => s
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok()),
        _ => None,
    }
}

fn arr_u64(j: &Json, idx: usize) -> Result<u64, String> {
    j.as_arr()
        .and_then(|a| a.get(idx))
        .and_then(json_u64)
        .ok_or_else(|| format!("array element {idx} is not a u64"))
}

/// Parses a complete artifact.
///
/// # Errors
///
/// Returns a description naming the offending line on malformed JSON, a
/// missing required header key, an unknown schema version, or a truncated
/// run section.
pub fn parse_artifact(text: &str) -> Result<ParsedArtifact, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, meta_line) = lines.next().ok_or("empty artifact")?;
    let meta_json = parse_json(meta_line).map_err(|e| format!("meta line: {e}"))?;
    let version = get_str(&meta_json, "artifact").map_err(|e| format!("meta line: {e}"))?;
    if version != TRACE_VERSION {
        return Err(format!(
            "unsupported artifact version '{version}' (expected '{TRACE_VERSION}')"
        ));
    }
    let meta = ArtifactMeta {
        bin: get_str(&meta_json, "bin")
            .map_err(|e| format!("meta line: {e}"))?
            .to_string(),
        scenario: get_str(&meta_json, "scenario")
            .map_err(|e| format!("meta line: {e}"))?
            .to_string(),
        quick: matches!(meta_json.get("quick"), Some(Json::Bool(true))),
        runs: get_u64(&meta_json, "runs").map_err(|e| format!("meta line: {e}"))?,
    };

    let mut runs: Vec<ParsedRun> = Vec::new();
    let mut cur: Option<ParsedRun> = None;
    for (lineno, line) in lines {
        let ctx = |e: String| format!("line {}: {e}", lineno + 1);
        let j = parse_json(line).map_err(ctx)?;
        if j.get("run").is_some() {
            if let Some(run) = cur.take() {
                return Err(ctx(format!(
                    "run '{}' has no footer before the next header",
                    run.label
                )));
            }
            let version = get_str(&j, "version").map_err(&ctx)?;
            if version != TRACE_VERSION {
                return Err(ctx(format!("unsupported run version '{version}'")));
            }
            let gran_label = get_str(&j, "granularity").map_err(&ctx)?;
            let granularity = Granularity::parse(gran_label)
                .ok_or_else(|| ctx(format!("unknown granularity '{gran_label}'")))?;
            let params = match j.get("params") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| {
                        v.as_str()
                            .map(|s| (k.clone(), s.to_string()))
                            .ok_or_else(|| ctx(format!("param '{k}' is not a string")))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                Some(_) => return Err(ctx("'params' is not an object".into())),
                None => Vec::new(),
            };
            cur = Some(ParsedRun {
                label: get_str(&j, "run").map_err(&ctx)?.to_string(),
                engine: get_str(&j, "engine").map_err(&ctx)?.to_string(),
                seed: get_u64(&j, "seed").map_err(&ctx)?,
                config_fp: get_u64(&j, "config_fp").map_err(&ctx)?,
                trace_fp: get_u64(&j, "trace_fp").map_err(&ctx)?,
                topology: j.get("topo").and_then(Json::as_str).map(String::from),
                granularity,
                checkpoint_every: get_u64(&j, "checkpoint_every").map_err(&ctx)?,
                params,
                events: Vec::new(),
                spans: Vec::new(),
                checkpoints: Vec::new(),
                footer: Footer::default(),
            });
        } else if let Some(e) = j.get("e") {
            let run = cur
                .as_mut()
                .ok_or_else(|| ctx("event outside a run".into()))?;
            run.events.push(EventRec {
                t_ps: arr_u64(e, 0).map_err(&ctx)?,
                seq: arr_u64(e, 1).map_err(&ctx)?,
                kind: arr_u64(e, 2).map_err(&ctx)? as u8,
                group: arr_u64(e, 3).map_err(&ctx)? as u32,
                payload: arr_u64(e, 4).map_err(&ctx)?,
            });
        } else if let Some(s) = j.get("s") {
            let run = cur
                .as_mut()
                .ok_or_else(|| ctx("span outside a run".into()))?;
            run.spans.push(SpanPoint {
                track: arr_u64(s, 0).map_err(&ctx)? as u32,
                kind: arr_u64(s, 1).map_err(&ctx)? as u16,
                loc: arr_u64(s, 2).map_err(&ctx)? as u32,
                at: SimTime::from_ps(arr_u64(s, 3).map_err(&ctx)?),
            });
        } else if let Some(c) = j.get("c") {
            let run = cur
                .as_mut()
                .ok_or_else(|| ctx("checkpoint outside a run".into()))?;
            run.checkpoints.push(Checkpoint {
                index: arr_u64(c, 0).map_err(&ctx)?,
                digest: arr_u64(c, 1).map_err(&ctx)?,
                t_ps: arr_u64(c, 2).map_err(&ctx)?,
                seq: arr_u64(c, 3).map_err(&ctx)?,
            });
        } else if let Some(end) = j.get("end") {
            let mut run = cur
                .take()
                .ok_or_else(|| ctx("footer outside a run".into()))?;
            let rng = match end.get("rng") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| {
                        json_u64(v)
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| ctx(format!("rng count '{k}' is not a u64")))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err(ctx("footer missing 'rng' object".into())),
            };
            run.footer = Footer {
                events: get_u64(end, "events").map_err(&ctx)?,
                spans: get_u64(end, "spans").map_err(&ctx)?,
                digest: get_u64(end, "digest").map_err(&ctx)?,
                rng,
                end_ps: get_u64(end, "end_ps").map_err(&ctx)?,
                completed: get_u64(end, "completed").map_err(&ctx)?,
            };
            runs.push(run);
        } else {
            return Err(ctx("unrecognized line (no run/e/s/c/end key)".into()));
        }
    }
    if let Some(run) = cur {
        return Err(format!("run '{}' has no footer", run.label));
    }
    if meta.runs != runs.len() as u64 {
        return Err(format!(
            "meta declares {} runs but the artifact contains {}",
            meta.runs,
            runs.len()
        ));
    }
    Ok(ParsedArtifact { meta, runs })
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// Totals a [`validate_artifact`] pass computed, for lint reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArtifactStats {
    /// Run sections validated.
    pub runs: usize,
    /// Event records across all runs.
    pub events: u64,
    /// Span points across all runs.
    pub spans: u64,
    /// Digest checkpoints across all runs.
    pub checkpoints: u64,
}

/// Parses and schema-validates an artifact: version fields, required
/// header keys, strictly monotone `(time, seq)` event rank, ascending
/// aligned checkpoints, and footer/body consistency (counts and — at full
/// granularity — the recomputed rolling digest).
///
/// # Errors
///
/// Returns a description of the first violated rule.
pub fn validate_artifact(text: &str) -> Result<ArtifactStats, String> {
    let artifact = parse_artifact(text)?;
    let mut stats = ArtifactStats {
        runs: artifact.runs.len(),
        ..ArtifactStats::default()
    };
    for run in &artifact.runs {
        let label = &run.label;
        if run.checkpoint_every == 0 {
            return Err(format!("run '{label}': checkpoint_every is zero"));
        }
        let mut prev: Option<(u64, u64)> = None;
        let mut digest = FNV_OFFSET;
        for (i, e) in run.events.iter().enumerate() {
            if let Some((pt, ps)) = prev {
                if (e.t_ps, e.seq) <= (pt, ps) {
                    return Err(format!(
                        "run '{label}': event {i} rank (t={}, seq={}) does not advance past \
                         (t={pt}, seq={ps}) — the (time, seq) order must be strictly monotone",
                        e.t_ps, e.seq
                    ));
                }
            }
            prev = Some((e.t_ps, e.seq));
            digest = e.fold_into(digest);
        }
        let mut prev_idx = 0u64;
        for c in &run.checkpoints {
            if c.index <= prev_idx && prev_idx != 0 {
                return Err(format!(
                    "run '{label}': checkpoint indices not strictly ascending at {}",
                    c.index
                ));
            }
            if c.index % run.checkpoint_every != 0 || c.index == 0 {
                return Err(format!(
                    "run '{label}': checkpoint index {} not a positive multiple of \
                     checkpoint_every={}",
                    c.index, run.checkpoint_every
                ));
            }
            prev_idx = c.index;
        }
        if run.granularity == Granularity::Full {
            if run.footer.events != run.events.len() as u64 {
                return Err(format!(
                    "run '{label}': footer declares {} events, body has {}",
                    run.footer.events,
                    run.events.len()
                ));
            }
            if run.footer.digest != digest {
                return Err(format!(
                    "run '{label}': footer digest 0x{:x} does not match the digest \
                     recomputed over the event body (0x{digest:x})",
                    run.footer.digest
                ));
            }
            for c in &run.checkpoints {
                let mut d = FNV_OFFSET;
                for e in &run.events[..c.index as usize] {
                    d = e.fold_into(d);
                }
                if d != c.digest {
                    return Err(format!(
                        "run '{label}': checkpoint {} digest 0x{:x} does not match the \
                         recomputed prefix digest 0x{d:x}",
                        c.index, c.digest
                    ));
                }
            }
        }
        if run.granularity != Granularity::Summary && run.footer.spans != run.spans.len() as u64 {
            return Err(format!(
                "run '{label}': footer declares {} spans, body has {}",
                run.footer.spans,
                run.spans.len()
            ));
        }
        stats.events += run.footer.events;
        stats.spans += run.footer.spans;
        stats.checkpoints += run.checkpoints.len() as u64;
    }
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

/// The first point where a replayed run stops matching its recording.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// Run identity differs before any event is compared (seed, config or
    /// workload fingerprint): the replay reconstructed a different run.
    Provenance {
        /// Which identity field differs.
        field: &'static str,
        /// Recorded value.
        expected: String,
        /// Replayed value.
        actual: String,
    },
    /// Event-level divergence (needs full granularity on at least the
    /// side that carries `Some`): the first index where the records
    /// disagree, or one side ran out.
    Event {
        /// Index into the event stream (0-based).
        index: u64,
        /// The recorded event, if the recording still had one.
        expected: Option<EventRec>,
        /// The replayed event, if the replay still had one.
        actual: Option<EventRec>,
    },
    /// Digest-block divergence (summary/spans recordings): the first
    /// checkpoint whose digest disagrees localizes the divergence to
    /// events `[start, end)`.
    Block {
        /// First event index of the divergent block.
        start: u64,
        /// One past the last event index of the block (`u64::MAX` when
        /// the divergence is only visible in the final footer digest).
        end: u64,
        /// Recorded digest at the block's closing checkpoint.
        expected_digest: u64,
        /// Replayed digest at the same checkpoint.
        actual_digest: u64,
    },
    /// A per-stream RNG draw count differs.
    Rng {
        /// Stream name (e.g. `nic`, `faults`).
        stream: String,
        /// Recorded draw count.
        expected: u64,
        /// Replayed draw count.
        actual: u64,
    },
    /// A footer total differs (event count, completions, end time).
    Count {
        /// Which total.
        what: &'static str,
        /// Recorded value.
        expected: u64,
        /// Replayed value.
        actual: u64,
    },
}

/// Finds the first divergence between a recorded run and its replay, or
/// `None` when they match. `expected` is the recording (any granularity);
/// `actual` should be a full-granularity re-recording so event-level
/// divergence can be pinpointed whenever the recording carries events or
/// checkpoints.
pub fn first_divergence(expected: &ParsedRun, actual: &ParsedRun) -> Option<Divergence> {
    for (field, e, a) in [
        ("seed", expected.seed, actual.seed),
        ("config_fp", expected.config_fp, actual.config_fp),
        ("trace_fp", expected.trace_fp, actual.trace_fp),
    ] {
        if e != a {
            return Some(Divergence::Provenance {
                field,
                expected: format!("0x{e:x}"),
                actual: format!("0x{a:x}"),
            });
        }
    }
    if expected.topology != actual.topology {
        let show = |t: &Option<String>| t.clone().unwrap_or_else(|| "<standalone>".into());
        return Some(Divergence::Provenance {
            field: "topology",
            expected: show(&expected.topology),
            actual: show(&actual.topology),
        });
    }

    if expected.granularity == Granularity::Full && actual.granularity == Granularity::Full {
        let n = expected.events.len().min(actual.events.len());
        for i in 0..n {
            if expected.events[i] != actual.events[i] {
                return Some(Divergence::Event {
                    index: i as u64,
                    expected: Some(expected.events[i]),
                    actual: Some(actual.events[i]),
                });
            }
        }
        if expected.events.len() != actual.events.len() {
            return Some(Divergence::Event {
                index: n as u64,
                expected: expected.events.get(n).copied(),
                actual: actual.events.get(n).copied(),
            });
        }
    } else if expected.checkpoint_every == actual.checkpoint_every {
        let n = expected.checkpoints.len().min(actual.checkpoints.len());
        for i in 0..n {
            let (e, a) = (&expected.checkpoints[i], &actual.checkpoints[i]);
            if e.digest != a.digest {
                return Some(Divergence::Block {
                    start: if i == 0 {
                        0
                    } else {
                        expected.checkpoints[i - 1].index
                    },
                    end: e.index,
                    expected_digest: e.digest,
                    actual_digest: a.digest,
                });
            }
        }
        if expected.footer.digest != actual.footer.digest {
            let start = expected
                .checkpoints
                .get(n.wrapping_sub(1))
                .map_or(0, |c| c.index);
            return Some(Divergence::Block {
                start,
                end: u64::MAX,
                expected_digest: expected.footer.digest,
                actual_digest: actual.footer.digest,
            });
        }
    }

    if expected.footer.digest != actual.footer.digest {
        return Some(Divergence::Count {
            what: "digest",
            expected: expected.footer.digest,
            actual: actual.footer.digest,
        });
    }
    for (what, e, a) in [
        ("events", expected.footer.events, actual.footer.events),
        (
            "completed",
            expected.footer.completed,
            actual.footer.completed,
        ),
        ("end_ps", expected.footer.end_ps, actual.footer.end_ps),
    ] {
        if e != a {
            return Some(Divergence::Count {
                what,
                expected: e,
                actual: a,
            });
        }
    }
    for (stream, e) in &expected.footer.rng {
        let a = actual
            .footer
            .rng
            .iter()
            .find(|(s, _)| s == stream)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        if *e != a {
            return Some(Divergence::Rng {
                stream: stream.clone(),
                expected: *e,
                actual: a,
            });
        }
    }
    None
}

fn kind_label(kind: u8, kind_names: &[&str]) -> String {
    kind_names
        .get(kind as usize)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("kind{kind}"))
}

fn event_line(e: &EventRec, kind_names: &[&str]) -> String {
    format!(
        "t={}ps seq={} {} group={} payload=0x{:x}",
        e.t_ps,
        e.seq,
        kind_label(e.kind, kind_names),
        e.group,
        e.payload
    )
}

fn push_window(
    out: &mut String,
    side: &str,
    events: &[EventRec],
    at: u64,
    window: usize,
    names: &[&str],
) {
    if events.is_empty() {
        return;
    }
    let lo = (at as usize).saturating_sub(window);
    let hi = (at as usize + window + 1).min(events.len());
    out.push_str(&format!("  {side} events [{lo}..{hi}):\n"));
    for (i, e) in events[lo..hi].iter().enumerate() {
        let idx = lo + i;
        let marker = if idx as u64 == at { ">>" } else { "  " };
        out.push_str(&format!("  {marker} #{idx}: {}\n", event_line(e, names)));
    }
}

/// Renders a divergence as a readable multi-line report: the divergent
/// event (expected vs actual), a surrounding window of events from both
/// sides, per-stream RNG draw-count deltas, and engine/config provenance.
///
/// `kind_names` maps the world's kind tags to names (unknown tags render
/// as `kindN`); `window` is the number of context events on each side.
pub fn render_divergence(
    div: &Divergence,
    expected: &ParsedRun,
    actual: &ParsedRun,
    kind_names: &[&str],
    window: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("run '{}': first divergence\n", expected.label));
    match div {
        Divergence::Provenance {
            field,
            expected: e,
            actual: a,
        } => {
            out.push_str(&format!(
                "  provenance mismatch: {field}\n    recorded: {e}\n    replayed: {a}\n  \
                 the replay reconstructed a different run — regenerate the golden \
                 (scripts/regen_golden.sh) if the scenario change is intentional\n"
            ));
        }
        Divergence::Event {
            index,
            expected: e,
            actual: a,
        } => {
            out.push_str(&format!("  first divergent event: index {index}\n"));
            match e {
                Some(e) => out.push_str(&format!("    recorded: {}\n", event_line(e, kind_names))),
                None => out.push_str("    recorded: <event stream ended>\n"),
            }
            match a {
                Some(a) => out.push_str(&format!("    replayed: {}\n", event_line(a, kind_names))),
                None => out.push_str("    replayed: <event stream ended>\n"),
            }
            push_window(
                &mut out,
                "recorded",
                &expected.events,
                *index,
                window,
                kind_names,
            );
            push_window(
                &mut out,
                "replayed",
                &actual.events,
                *index,
                window,
                kind_names,
            );
        }
        Divergence::Block {
            start,
            end,
            expected_digest,
            actual_digest,
        } => {
            if *end == u64::MAX {
                out.push_str(&format!(
                    "  digest diverges after event {start} (tail block): \
                     recorded 0x{expected_digest:x}, replayed 0x{actual_digest:x}\n"
                ));
            } else {
                out.push_str(&format!(
                    "  digest diverges in event block [{start}..{end}): \
                     recorded 0x{expected_digest:x}, replayed 0x{actual_digest:x}\n"
                ));
            }
            if !actual.events.is_empty() {
                let lo = *start as usize;
                let hi = (*end as usize).min(actual.events.len());
                if lo < hi {
                    // A checkpoint block can be hundreds of events; show
                    // only the edges (the recorded side has no per-event
                    // records here, so the exact culprit is unknown).
                    out.push_str("  replayed events in the divergent block:\n");
                    let edge = window.max(1);
                    let head_hi = (lo + edge).min(hi);
                    let tail_lo = hi.saturating_sub(edge).max(head_hi);
                    for (i, e) in actual.events[lo..head_hi].iter().enumerate() {
                        out.push_str(&format!(
                            "     #{}: {}\n",
                            lo + i,
                            event_line(e, kind_names)
                        ));
                    }
                    if tail_lo > head_hi {
                        out.push_str(&format!("     ... {} more events ...\n", tail_lo - head_hi));
                    }
                    for (i, e) in actual.events[tail_lo..hi].iter().enumerate() {
                        out.push_str(&format!(
                            "     #{}: {}\n",
                            tail_lo + i,
                            event_line(e, kind_names)
                        ));
                    }
                }
            }
        }
        Divergence::Rng {
            stream,
            expected: e,
            actual: a,
        } => {
            out.push_str(&format!(
                "  rng draw count diverges on stream '{stream}': recorded {e}, replayed {a}\n"
            ));
        }
        Divergence::Count {
            what,
            expected: e,
            actual: a,
        } => {
            out.push_str(&format!(
                "  footer total '{what}' diverges: recorded {e} (0x{e:x}), \
                 replayed {a} (0x{a:x})\n"
            ));
        }
    }
    out.push_str("  rng draws per stream (recorded -> replayed):\n");
    for (stream, e) in &expected.footer.rng {
        let a = actual
            .footer
            .rng
            .iter()
            .find(|(s, _)| s == stream)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        let delta = a as i64 - *e as i64;
        out.push_str(&format!("    {stream}: {e} -> {a} ({delta:+})\n"));
    }
    out.push_str(&format!(
        "  provenance: engine {} -> {}, seed {}, config_fp 0x{:x}, trace_fp 0x{:x}\n",
        expected.engine, actual.engine, expected.seed, expected.config_fp, expected.trace_fp
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn record_run(n: u64, granularity: Granularity, every: u64) -> Recorder {
        let mut rec = Recorder::with_checkpoint_every(granularity, every);
        for i in 0..n {
            rec.event_record(
                SimTime::from_ps(100 * i + 5),
                i,
                (i % 4) as u8,
                (i % 3) as u32,
                i * 7,
            );
            if granularity != Granularity::Summary && i % 2 == 0 {
                rec.span_point(i as u32, 1, 0, SimTime::from_ps(100 * i));
            }
        }
        rec
    }

    fn artifact_of(rec: &Recorder, label: &str) -> String {
        artifact_with_topology(rec, label, None)
    }

    fn artifact_with_topology(rec: &Recorder, label: &str, topology: Option<String>) -> String {
        let meta = RunMeta {
            label: label.into(),
            engine: "serial_event_driven",
            seed: 7,
            config_fp: 0xABCD,
            trace_fp: 0x1234_5678_9ABC_DEF0,
            topology,
            params: vec![("load".into(), "0.5".into())],
        };
        let totals = RunTotals {
            rng: vec![("nic".into(), 42), ("faults".into(), 0)],
            end_ps: 12_345,
            completed: 99,
        };
        let mut out = String::new();
        write_artifact_meta(&mut out, "test_bin", "test_scenario", true, 1);
        write_run_section(&mut out, &meta, rec, &totals);
        out
    }

    #[test]
    fn roundtrip_full_granularity() {
        let rec = record_run(100, Granularity::Full, 16);
        let text = artifact_of(&rec, "r0");
        let parsed = parse_artifact(&text).expect("parses");
        assert_eq!(parsed.meta.bin, "test_bin");
        assert_eq!(parsed.runs.len(), 1);
        let run = &parsed.runs[0];
        assert_eq!(run.events.len(), 100);
        assert_eq!(run.events, rec.events());
        assert_eq!(run.spans.len(), 50);
        assert_eq!(run.checkpoints.len(), 100 / 16);
        assert_eq!(run.footer.digest, rec.digest());
        assert_eq!(
            run.footer.rng,
            vec![("nic".into(), 42), ("faults".into(), 0)]
        );
        let stats = validate_artifact(&text).expect("validates");
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.events, 100);
    }

    #[test]
    fn topology_roundtrips_and_gates_provenance() {
        let rec = record_run(20, Granularity::Full, 8);
        let topo = "rack:4x2x8/tor500ns100g/srv1";
        let text = artifact_with_topology(&rec, "r0", Some(topo.into()));
        let parsed = parse_artifact(&text).expect("parses");
        assert_eq!(parsed.runs[0].topology.as_deref(), Some(topo));
        validate_artifact(&text).expect("validates");
        // A standalone header omits the key entirely (byte-compatible with
        // pre-rack artifacts) and parses back as None.
        let plain = artifact_of(&rec, "r0");
        assert!(!plain.contains("\"topo\""));
        let none = parse_artifact(&plain).expect("parses");
        assert_eq!(none.runs[0].topology, None);
        // Topology is provenance: a rack section replayed against a drifted
        // layout diverges before any event comparison.
        match first_divergence(&parsed.runs[0], &none.runs[0]) {
            Some(Divergence::Provenance { field, .. }) => assert_eq!(field, "topology"),
            other => panic!("expected provenance divergence, got {other:?}"),
        }
        assert!(first_divergence(&parsed.runs[0], &parsed.runs[0]).is_none());
    }

    #[test]
    fn summary_matches_full_digest() {
        let full = record_run(100, Granularity::Full, 16);
        let summary = record_run(100, Granularity::Summary, 16);
        assert_eq!(full.digest(), summary.digest());
        assert_eq!(full.checkpoints(), summary.checkpoints());
        assert!(summary.events().is_empty());
        assert!(summary.spans().is_empty());
        validate_artifact(&artifact_of(&summary, "r0")).expect("summary validates");
    }

    #[test]
    fn validator_rejects_non_monotone_rank() {
        let mut rec = Recorder::new(Granularity::Full);
        rec.event_record(SimTime::from_ps(100), 5, 0, 0, 0);
        rec.event_record(SimTime::from_ps(100), 5, 0, 0, 1); // same (time, seq)
        let text = artifact_of(&rec, "bad");
        let err = validate_artifact(&text).expect_err("must reject");
        assert!(err.contains("strictly monotone"), "{err}");
    }

    #[test]
    fn validator_rejects_corrupt_digest() {
        let rec = record_run(40, Granularity::Full, 8);
        let text = artifact_of(&rec, "r0");
        // Flip one payload byte in the middle of the body.
        let corrupted = text.replacen("\"0x46\"", "\"0x47\"", 1);
        assert_ne!(corrupted, text, "expected payload 0x46 (10*7) in the body");
        let err = validate_artifact(&corrupted).expect_err("must reject");
        assert!(err.contains("digest"), "{err}");
    }

    #[test]
    fn validator_rejects_wrong_version() {
        let rec = record_run(4, Granularity::Full, 8);
        let text = artifact_of(&rec, "r0").replacen("TRACE/1.0", "TRACE/9.9", 1);
        let err = validate_artifact(&text).expect_err("must reject");
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn first_divergence_pinpoints_flipped_event() {
        let rec = record_run(60, Granularity::Full, 16);
        let base = parse_artifact(&artifact_of(&rec, "r0"))
            .unwrap()
            .runs
            .remove(0);
        let mut other = base.clone();
        other.events[33].payload ^= 1;
        let div = first_divergence(&base, &other).expect("diverges");
        match div {
            Divergence::Event { index, .. } => assert_eq!(index, 33),
            other => panic!("expected event divergence, got {other:?}"),
        }
        let report = render_divergence(&div, &base, &other, &["a", "b", "c", "d"], 2);
        assert!(report.contains("index 33"), "{report}");
        assert!(report.contains(">> #33"), "{report}");
    }

    #[test]
    fn first_divergence_pinpoints_dropped_event() {
        let rec = record_run(60, Granularity::Full, 16);
        let base = parse_artifact(&artifact_of(&rec, "r0"))
            .unwrap()
            .runs
            .remove(0);
        let mut other = base.clone();
        other.events.remove(20);
        let div = first_divergence(&base, &other).expect("diverges");
        match div {
            Divergence::Event { index, .. } => assert_eq!(index, 20),
            other => panic!("expected event divergence, got {other:?}"),
        }
    }

    #[test]
    fn summary_divergence_localizes_block() {
        let base_rec = record_run(64, Granularity::Summary, 16);
        let base = parse_artifact(&artifact_of(&base_rec, "r0"))
            .unwrap()
            .runs
            .remove(0);
        // Re-record with event 40 perturbed, as a buggy engine would.
        let mut other_rec = Recorder::with_checkpoint_every(Granularity::Full, 16);
        for i in 0..64u64 {
            let t = if i == 40 { 100 * i + 6 } else { 100 * i + 5 };
            other_rec.event_record(SimTime::from_ps(t), i, (i % 4) as u8, (i % 3) as u32, i * 7);
        }
        let other = parse_artifact(&artifact_of(&other_rec, "r0"))
            .unwrap()
            .runs
            .remove(0);
        let div = first_divergence(&base, &other).expect("diverges");
        match div {
            Divergence::Block { start, end, .. } => {
                assert_eq!((start, end), (32, 48), "block containing event 40");
            }
            other => panic!("expected block divergence, got {other:?}"),
        }
        let report = render_divergence(&div, &base, &other, &[], 8);
        assert!(report.contains("[32..48)"), "{report}");
        assert!(
            report.contains("t=4006ps"),
            "replayed block listing: {report}"
        );
        // A small window elides the middle of the block instead of dumping
        // all of it.
        let short = render_divergence(&div, &base, &other, &[], 2);
        assert!(short.contains("... 12 more events ..."), "{short}");
        assert!(!short.contains("t=4006ps"), "{short}");
    }

    #[test]
    fn rng_divergence_reported() {
        let rec = record_run(8, Granularity::Summary, 16);
        let base = parse_artifact(&artifact_of(&rec, "r0"))
            .unwrap()
            .runs
            .remove(0);
        let mut other = base.clone();
        other.footer.rng[0].1 = 43;
        let div = first_divergence(&base, &other).expect("diverges");
        assert_eq!(
            div,
            Divergence::Rng {
                stream: "nic".into(),
                expected: 42,
                actual: 43
            }
        );
        let report = render_divergence(&div, &base, &other, &[], 2);
        assert!(report.contains("nic: 42 -> 43 (+1)"), "{report}");
    }

    #[test]
    fn provenance_divergence_wins() {
        let rec = record_run(8, Granularity::Full, 16);
        let base = parse_artifact(&artifact_of(&rec, "r0"))
            .unwrap()
            .runs
            .remove(0);
        let mut other = base.clone();
        other.config_fp ^= 1;
        other.events[0].payload ^= 1;
        match first_divergence(&base, &other).expect("diverges") {
            Divergence::Provenance { field, .. } => assert_eq!(field, "config_fp"),
            other => panic!("expected provenance divergence, got {other:?}"),
        }
    }

    #[test]
    fn matching_runs_have_no_divergence() {
        let rec = record_run(50, Granularity::Full, 16);
        let base = parse_artifact(&artifact_of(&rec, "r0"))
            .unwrap()
            .runs
            .remove(0);
        assert_eq!(first_divergence(&base, &base.clone()), None);
    }

    #[test]
    fn parser_rejects_truncated_section() {
        let rec = record_run(8, Granularity::Full, 16);
        let text = artifact_of(&rec, "r0");
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        let err = parse_artifact(&truncated).expect_err("must reject");
        assert!(err.contains("footer"), "{err}");
    }
}
