//! Deterministic fault injection plans.
//!
//! A [`FaultPlan`] is a declarative, seeded description of everything that
//! goes wrong during a run: worker straggler intervals (service-time
//! inflation), worker/manager core failures at a fixed virtual time, NoC
//! message drop/delay, and migration-FIFO stall storms. The plan is pure
//! data — the simulated system consults it at well-defined points and pushes
//! any resulting fault events itself, so replaying the same plan against the
//! same workload is bit-for-bit reproducible.
//!
//! Two invariants make the plan safe to thread through every system:
//!
//! 1. **Empty plan ⇒ byte-identical runs.** [`FaultPlan::default`] injects
//!    nothing, draws nothing, and takes no branches the healthy simulation
//!    would not take, so a run with the default plan produces exactly the
//!    output of a build without the fault layer.
//! 2. **RNG-stream isolation.** The only stochastic fault component (NoC
//!    drop/delay) draws from its own stream
//!    ([`rng::streams::FAULTS`]), derived from [`FaultPlan::seed`] rather
//!    than the workload seed, so enabling faults never perturbs arrival,
//!    service, or scheduler draws.

use crate::rng::{self, stream_rng};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// A service-time inflation interval for a contiguous range of cores.
///
/// While `from <= now < until`, any request *starting* service on a core in
/// `[first_core, last_core]` has its service time multiplied by `slowdown`.
/// Overlapping stragglers compose multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// First affected core (global core id, inclusive).
    pub first_core: usize,
    /// Last affected core (global core id, inclusive).
    pub last_core: usize,
    /// Interval start (inclusive).
    pub from: SimTime,
    /// Interval end (exclusive).
    pub until: SimTime,
    /// Service-time multiplier; must be `>= 1.0`.
    pub slowdown: f64,
}

/// A worker core that fails permanently at `at`.
///
/// The request in service at that instant loses all progress; how the
/// surrounding system reacts (resteer vs. strand) is the system's policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Global core id of the failing worker.
    pub core: usize,
    /// Failure instant.
    pub at: SimTime,
}

/// A manager core that fails permanently at `at`.
///
/// Only meaningful for systems with a manager plane (Altocumulus groups);
/// scheduler baselines ignore manager failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManagerFailure {
    /// Group index whose manager fails.
    pub group: usize,
    /// Failure instant.
    pub at: SimTime,
}

/// Stochastic NoC faults: UPDATE gossip drops and uniform message delays.
///
/// Drops apply only to best-effort queue-length UPDATEs (a lossy gossip
/// channel); MIGRATE/ACK/NACK ride a reliable channel and can only be
/// delayed. Decisions are drawn from the plan's isolated RNG stream via
/// [`FaultPlan::noc_rng`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocFaults {
    /// Probability an UPDATE message is silently dropped.
    pub drop_prob: f64,
    /// Probability any message is delayed by `delay`.
    pub delay_prob: f64,
    /// Extra latency applied to delayed messages.
    pub delay: SimDuration,
}

/// A migration receive-FIFO stall storm for one group.
///
/// While `from <= now < until`, the group's receive FIFO refuses all
/// incoming MIGRATE batches, so senders see NACKs as if the FIFO were full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoStall {
    /// Group whose receive FIFO stalls.
    pub group: usize,
    /// Stall start (inclusive).
    pub from: SimTime,
    /// Stall end (exclusive).
    pub until: SimTime,
}

/// A complete, deterministic fault schedule for one run.
///
/// # Examples
///
/// ```
/// use simcore::faults::{FaultPlan, Straggler};
/// use simcore::time::{SimDuration, SimTime};
///
/// let mut plan = FaultPlan::default();
/// assert!(plan.is_empty());
/// plan.stragglers.push(Straggler {
///     first_core: 4,
///     last_core: 7,
///     from: SimTime::from_us(10),
///     until: SimTime::from_us(50),
///     slowdown: 4.0,
/// });
/// assert!(!plan.is_empty());
/// let d = SimDuration::from_ns(800);
/// assert_eq!(plan.inflate(5, SimTime::from_us(20), d), SimDuration::from_ns(3200));
/// assert_eq!(plan.inflate(5, SimTime::from_us(60), d), d); // interval over
/// assert_eq!(plan.inflate(0, SimTime::from_us(20), d), d); // core unaffected
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the plan's isolated RNG stream (NoC drop/delay draws).
    pub seed: u64,
    /// Straggler (service-inflation) intervals.
    pub stragglers: Vec<Straggler>,
    /// Permanent worker-core failures.
    pub worker_failures: Vec<WorkerFailure>,
    /// Permanent manager-core failures.
    pub manager_failures: Vec<ManagerFailure>,
    /// Stochastic NoC drop/delay, if any.
    pub noc: Option<NocFaults>,
    /// Migration receive-FIFO stall storms.
    pub fifo_stalls: Vec<FifoStall>,
}

impl FaultPlan {
    /// Returns `true` when the plan injects nothing at all.
    ///
    /// An empty plan is the byte-identity guarantee: systems must gate every
    /// fault-path branch, event push, and RNG draw on this being `false`.
    pub fn is_empty(&self) -> bool {
        self.stragglers.is_empty()
            && self.worker_failures.is_empty()
            && self.manager_failures.is_empty()
            && self.noc.is_none()
            && self.fifo_stalls.is_empty()
    }

    /// Validates internal consistency, panicking on malformed entries.
    ///
    /// # Panics
    ///
    /// On inverted intervals, `slowdown < 1.0`, or probabilities outside
    /// `[0, 1]`.
    pub fn validate(&self) {
        for s in &self.stragglers {
            assert!(
                s.first_core <= s.last_core,
                "straggler core range inverted: {} > {}",
                s.first_core,
                s.last_core
            );
            assert!(s.from < s.until, "straggler interval inverted");
            assert!(
                s.slowdown >= 1.0,
                "straggler slowdown {} < 1.0 would speed the core up",
                s.slowdown
            );
        }
        for st in &self.fifo_stalls {
            assert!(st.from < st.until, "fifo stall interval inverted");
        }
        if let Some(n) = &self.noc {
            assert!(
                (0.0..=1.0).contains(&n.drop_prob),
                "drop_prob {} out of [0,1]",
                n.drop_prob
            );
            assert!(
                (0.0..=1.0).contains(&n.delay_prob),
                "delay_prob {} out of [0,1]",
                n.delay_prob
            );
        }
    }

    /// Combined service-time multiplier for `core` at instant `at`.
    ///
    /// Overlapping straggler intervals compose multiplicatively; a core with
    /// no active straggler returns exactly `1.0`.
    pub fn slowdown(&self, core: usize, at: SimTime) -> f64 {
        let mut factor = 1.0;
        for s in &self.stragglers {
            if core >= s.first_core && core <= s.last_core && at >= s.from && at < s.until {
                factor *= s.slowdown;
            }
        }
        factor
    }

    /// Inflates a service duration by the active slowdown for `core` at `at`.
    ///
    /// With no active straggler (or `slowdown == 1.0`) the input is returned
    /// unchanged — bit-for-bit, with no float round trip.
    pub fn inflate(&self, core: usize, at: SimTime, d: SimDuration) -> SimDuration {
        if self.stragglers.is_empty() {
            return d;
        }
        let f = self.slowdown(core, at);
        if f == 1.0 {
            return d;
        }
        SimDuration::from_ps((d.as_ps() as f64 * f).round() as u64)
    }

    /// Returns `true` if `core` has a scheduled failure at or before `at`.
    pub fn worker_dead(&self, core: usize, at: SimTime) -> bool {
        self.worker_failures
            .iter()
            .any(|f| f.core == core && f.at <= at)
    }

    /// Returns `true` if `group`'s receive FIFO is storm-stalled at `at`.
    pub fn recv_stalled(&self, group: usize, at: SimTime) -> bool {
        self.fifo_stalls
            .iter()
            .any(|s| s.group == group && at >= s.from && at < s.until)
    }

    /// The plan's NoC fault decider, or `None` when NoC faults are disabled.
    ///
    /// The RNG is derived from the plan seed on the dedicated
    /// [`rng::streams::FAULTS`] stream, so NoC draws never perturb workload
    /// or scheduler randomness.
    pub fn noc_rng(&self) -> Option<NocFaultRng> {
        self.noc.map(|faults| NocFaultRng {
            faults,
            rng: stream_rng(self.seed, rng::streams::FAULTS),
            draws: 0,
        })
    }

    /// Generates a deterministic stress plan of the given `intensity`.
    ///
    /// `worker_cores` lists the global core ids that execute requests in the
    /// target system (for Altocumulus, managers excluded). `intensity` in
    /// `[0, 1]` scales every fault dimension: straggler count and severity,
    /// permanent worker deaths, and NoC drop/delay probability. Faults are
    /// spread across `[horizon/8, 7*horizon/8)` so the run's warmup and
    /// drain phases stay clean. The same `(seed, worker_cores, intensity,
    /// horizon)` always yields the same plan.
    pub fn stress(seed: u64, worker_cores: &[usize], intensity: f64, horizon: SimTime) -> Self {
        assert!((0.0..=1.0).contains(&intensity), "intensity out of [0,1]");
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        if intensity == 0.0 || worker_cores.is_empty() {
            return plan;
        }
        let mut rng = stream_rng(seed, rng::streams::FAULTS ^ 0xF00D);
        let span = horizon.as_ps();
        let lo = span / 8;
        let hi = span - lo;
        let n = worker_cores.len();

        let stragglers = ((n as f64) * intensity * 0.25).round() as usize;
        for _ in 0..stragglers {
            let core = worker_cores[rng.random_range(0..n)];
            let start = lo + rng.random_range(0..(hi - lo));
            let len = (span / 8).max(1);
            plan.stragglers.push(Straggler {
                first_core: core,
                last_core: core,
                from: SimTime::from_ps(start),
                until: SimTime::from_ps(start.saturating_add(len)),
                slowdown: 2.0 + 6.0 * rng.random::<f64>(),
            });
        }

        let deaths = ((n as f64) * intensity * 0.125).round() as usize;
        let mut dead: Vec<usize> = Vec::new();
        for _ in 0..deaths {
            let core = worker_cores[rng.random_range(0..n)];
            if dead.contains(&core) {
                continue;
            }
            dead.push(core);
            plan.worker_failures.push(WorkerFailure {
                core,
                at: SimTime::from_ps(lo + rng.random_range(0..(hi - lo))),
            });
        }

        plan.noc = Some(NocFaults {
            drop_prob: 0.1 * intensity,
            delay_prob: 0.2 * intensity,
            delay: SimDuration::from_ns(500),
        });
        plan
    }
}

/// Verdict for one message offered to the faulty NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocDecision {
    /// Deliver normally.
    Deliver,
    /// Silently drop (lossy channel only).
    Drop,
    /// Deliver after the extra delay.
    Delay(SimDuration),
}

/// Stateful NoC fault decider; one per run, created by [`FaultPlan::noc_rng`].
///
/// Draw order is part of the determinism contract: [`NocFaultRng::lossy`]
/// always makes exactly two draws (drop, then delay) and
/// [`NocFaultRng::reliable`] exactly one (delay), regardless of outcome, so
/// the decision sequence depends only on how many messages of each class
/// were sent before — never on which way earlier coins landed.
#[derive(Debug)]
pub struct NocFaultRng {
    faults: NocFaults,
    rng: StdRng,
    draws: u64,
}

impl NocFaultRng {
    /// Decision for a lossy-channel message (queue-length UPDATE gossip):
    /// may be dropped or delayed.
    pub fn lossy(&mut self) -> NocDecision {
        let drop = self.rng.random_bool(self.faults.drop_prob);
        let delay = self.rng.random_bool(self.faults.delay_prob);
        self.draws += 2;
        if drop {
            NocDecision::Drop
        } else if delay {
            NocDecision::Delay(self.faults.delay)
        } else {
            NocDecision::Deliver
        }
    }

    /// Decision for a reliable-channel message (MIGRATE/ACK/NACK): never
    /// dropped, but may be delayed.
    pub fn reliable(&mut self) -> NocDecision {
        self.draws += 1;
        if self.rng.random_bool(self.faults.delay_prob) {
            NocDecision::Delay(self.faults.delay)
        } else {
            NocDecision::Deliver
        }
    }

    /// Total decision draws made so far (`lossy` counts 2, `reliable` 1,
    /// matching the fixed per-call draw discipline documented above). Part
    /// of the record/replay contract: two runs that agree on every event
    /// must also agree on this count.
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        plan.validate();
        assert_eq!(plan.slowdown(0, SimTime::from_us(5)), 1.0);
        assert!(!plan.worker_dead(0, SimTime::MAX));
        assert!(!plan.recv_stalled(0, SimTime::MAX));
        assert!(plan.noc_rng().is_none());
    }

    #[test]
    fn overlapping_stragglers_compose_multiplicatively() {
        let plan = FaultPlan {
            stragglers: vec![
                Straggler {
                    first_core: 0,
                    last_core: 3,
                    from: SimTime::ZERO,
                    until: SimTime::from_us(100),
                    slowdown: 2.0,
                },
                Straggler {
                    first_core: 2,
                    last_core: 5,
                    from: SimTime::from_us(10),
                    until: SimTime::from_us(20),
                    slowdown: 3.0,
                },
            ],
            ..FaultPlan::default()
        };
        plan.validate();
        assert_eq!(plan.slowdown(2, SimTime::from_us(15)), 6.0);
        assert_eq!(plan.slowdown(2, SimTime::from_us(50)), 2.0);
        assert_eq!(plan.slowdown(5, SimTime::from_us(15)), 3.0);
        assert_eq!(plan.slowdown(9, SimTime::from_us(15)), 1.0);
        // Interval end is exclusive.
        assert_eq!(plan.slowdown(4, SimTime::from_us(20)), 1.0);
    }

    #[test]
    fn inflate_identity_without_active_straggler() {
        let plan = FaultPlan {
            stragglers: vec![Straggler {
                first_core: 1,
                last_core: 1,
                from: SimTime::from_ns(10),
                until: SimTime::from_ns(20),
                slowdown: 1.0,
            }],
            ..FaultPlan::default()
        };
        // slowdown == 1.0 must return the exact input, no float round trip.
        let odd = SimDuration::from_ps(1_234_567_891);
        assert_eq!(plan.inflate(1, SimTime::from_ns(15), odd), odd);
    }

    #[test]
    fn worker_death_is_permanent() {
        let plan = FaultPlan {
            worker_failures: vec![WorkerFailure {
                core: 7,
                at: SimTime::from_us(3),
            }],
            ..FaultPlan::default()
        };
        assert!(!plan.worker_dead(7, SimTime::from_us(2)));
        assert!(plan.worker_dead(7, SimTime::from_us(3)));
        assert!(plan.worker_dead(7, SimTime::MAX));
        assert!(!plan.worker_dead(6, SimTime::MAX));
    }

    #[test]
    fn noc_rng_is_deterministic_and_isolated() {
        let plan = FaultPlan {
            seed: 99,
            noc: Some(NocFaults {
                drop_prob: 0.5,
                delay_prob: 0.5,
                delay: SimDuration::from_ns(100),
            }),
            ..FaultPlan::default()
        };
        let seq = |p: &FaultPlan| {
            let mut r = p.noc_rng().unwrap();
            (0..64).map(|_| r.lossy()).collect::<Vec<_>>()
        };
        assert_eq!(seq(&plan), seq(&plan));
        // A different plan seed gives a different decision sequence.
        let other = FaultPlan {
            seed: 100,
            ..plan.clone()
        };
        assert_ne!(seq(&plan), seq(&other));
        // The stream is the dedicated FAULTS stream, decorrelated from the
        // workload streams derived from the same master seed.
        let mut workload = stream_rng(99, rng::streams::ARRIVALS);
        let mut faults = stream_rng(99, rng::streams::FAULTS);
        assert_ne!(workload.random::<u64>(), faults.random::<u64>());
    }

    #[test]
    fn zero_prob_noc_always_delivers() {
        let plan = FaultPlan {
            noc: Some(NocFaults {
                drop_prob: 0.0,
                delay_prob: 0.0,
                delay: SimDuration::from_ns(100),
            }),
            ..FaultPlan::default()
        };
        let mut r = plan.noc_rng().unwrap();
        for _ in 0..256 {
            assert_eq!(r.lossy(), NocDecision::Deliver);
            assert_eq!(r.reliable(), NocDecision::Deliver);
        }
    }

    #[test]
    fn stress_plan_is_deterministic_and_scales() {
        let cores: Vec<usize> = (0..64).filter(|c| c % 16 != 0).collect();
        let horizon = SimTime::from_us(500);
        let a = FaultPlan::stress(5, &cores, 0.5, horizon);
        let b = FaultPlan::stress(5, &cores, 0.5, horizon);
        assert_eq!(a, b);
        a.validate();
        assert!(!a.is_empty());

        let zero = FaultPlan::stress(5, &cores, 0.0, horizon);
        assert!(zero.is_empty());

        let heavy = FaultPlan::stress(5, &cores, 1.0, horizon);
        heavy.validate();
        assert!(heavy.stragglers.len() > a.stragglers.len());
        assert!(heavy.worker_failures.len() >= a.worker_failures.len());
        assert!(heavy.noc.unwrap().drop_prob > a.noc.unwrap().drop_prob);
        // Faults land inside the sheltered middle of the horizon.
        for f in &heavy.worker_failures {
            assert!(f.at.as_ps() >= horizon.as_ps() / 8);
            assert!(f.at.as_ps() < horizon.as_ps() - horizon.as_ps() / 8);
        }
    }
}
