//! Analytic service timelines for worker-plane event elision.
//!
//! A [`Timeline`] holds events whose future is *locally determined* —
//! service completions, descriptor deliveries, serialized manager ops
//! whose timing is fixed the moment they are scheduled — so an engine can
//! keep them out of its main [`EventQueue`](crate::event) entirely while
//! preserving the exact global execution order: every entry still carries
//! a sequence number reserved from the main queue
//! ([`EventQueue::reserve_seqs`](crate::event::EventQueue::reserve_seqs))
//! at the precise instant the per-event engine would have pushed it, so
//! merging the timeline head with the main-queue head by `(time, seq)`
//! replays the per-event order bit-for-bit — ties included.
//!
//! # Structure
//!
//! The timeline is a *lane merge*, not one big heap. Each lane is any
//! stream of events scheduled almost-chronologically: a `VecDeque` kept
//! sorted by appending, with the rare out-of-order schedule handled by a
//! backwards scan from the tail. Callers pick the partition that makes
//! their lanes monotone — per *producer* (a worker can only be given new
//! work after finishing old work) or, better, per event *class* when each
//! class's delay from the scheduling instant is constant or tightly
//! clustered (a descriptor delivery is `now + transfer latency`, so the
//! class lane is a pure FIFO; completions are `now + service`, sorted up
//! to the service-time spread). A `BinaryHeap` of 24-byte
//! `(time, seq, lane)` keys merges the lane heads, with lazy
//! invalidation: a key is acted on only if it still matches its lane's
//! head — `(time, seq)` is globally unique — and stale keys (superseded
//! by a front-of-lane insert) are dropped on contact. With a handful of
//! class lanes the merge frontier is a couple of compares per pop —
//! far cheaper than running every event through a full priority queue.
//!
//! [`WorkerPlane`] selects between the batched engine and the per-event
//! differential oracle; [`worker_plane`] reads the `WORKER_PLANE`
//! environment knob the same way `PAR_THREADS` selects the parallel
//! engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Which engine drives the worker plane (request lifecycle events) of a
/// simulation run.
///
/// Both engines produce byte-identical observable output — completions,
/// stats, telemetry spans, RNG draw counts and the virtual
/// `peak_event_queue` ledger; they differ only in how many events flow
/// through the main queue (and therefore in wall-clock time and the
/// reported `events` count). `Elided` is the default; `EventDriven` is
/// kept as the differential oracle, exactly like the manager plane's
/// `ControlPlane::EventDriven`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerPlane {
    /// Worker-plane events (deliveries, completions, serialized manager
    /// ops) are held on analytic [`Timeline`] lanes and lazily
    /// materialized in exact `(time, seq)` order, never entering the main
    /// event queue.
    #[default]
    Elided,
    /// Every worker-plane event is a discrete event in the main queue —
    /// the pre-elision path, kept as the differential oracle.
    EventDriven,
}

/// Resolves the effective worker plane: the `WORKER_PLANE` environment
/// variable (`elided` / `event_driven`, case-insensitive) when set and
/// well-formed, else `default`.
///
/// Note this only selects between byte-identical engines; downgrades that
/// the engines themselves require (active fault plans, the parallel
/// engine's quiet-window protocol) are applied *after* this resolution and
/// cannot be overridden.
pub fn worker_plane(default: WorkerPlane) -> WorkerPlane {
    match std::env::var("WORKER_PLANE") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "elided" => WorkerPlane::Elided,
            "event_driven" | "event-driven" | "eventdriven" => WorkerPlane::EventDriven,
            _ => default,
        },
        Err(_) => default,
    }
}

/// A `(time, seq)`-ordered merge of per-producer event lanes (see the
/// module docs for the structure).
///
/// Deliberately minimal: no dynamic sequence allocation (callers reserve
/// seqs from their main [`EventQueue`](crate::event::EventQueue) so global
/// tie-breaks stay exact), no horizon, no instrumentation. Lanes and the
/// head heap are pre-sized at construction so steady-state push/pop stay
/// allocation-free.
pub struct Timeline<E> {
    lanes: Vec<VecDeque<(SimTime, u64, E)>>,
    /// Merge frontier: `Reverse((time, seq, lane))` keys, at least one
    /// valid key per non-empty lane plus lazily-dropped stale ones.
    heads: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    len: usize,
}

impl<E> Timeline<E> {
    /// An empty timeline with `lanes` producer lanes, each pre-sized for
    /// `per_lane` pending entries.
    pub fn new(lanes: usize, per_lane: usize) -> Self {
        Timeline {
            lanes: (0..lanes)
                .map(|_| VecDeque::with_capacity(per_lane))
                .collect(),
            heads: BinaryHeap::with_capacity(lanes + 16),
            len: 0,
        }
    }

    /// Total number of pending entries across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending entries, retaining capacity.
    pub fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.heads.clear();
        self.len = 0;
    }

    /// Schedules `ev` at `(at, seq)` on `lane`. The seq must come from the
    /// same counter as the main queue's (via `reserve_seqs`) for
    /// cross-container ordering to be meaningful.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn push(&mut self, lane: usize, at: SimTime, seq: u64, ev: E) {
        let q = &mut self.lanes[lane];
        // Almost always an append; a short backwards scan covers the rare
        // out-of-order schedule (e.g. a small descriptor overtaking a big
        // one on the same transfer lane).
        let key = (at, seq);
        let mut pos = q.len();
        while pos > 0 && (q[pos - 1].0, q[pos - 1].1) > key {
            pos -= 1;
        }
        if pos == q.len() {
            q.push_back((at, seq, ev));
        } else {
            q.insert(pos, (at, seq, ev));
        }
        if pos == 0 {
            // New lane head: publish its key (any previous key for this
            // lane is now stale and will be dropped lazily).
            self.heads.push(Reverse((at, seq, lane as u32)));
        }
        self.len += 1;
    }

    /// The `(time, seq)` rank of the earliest pending entry. Mutable
    /// because stale merge keys are discarded on contact.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        loop {
            let &Reverse((t, s, lane)) = self.heads.peek()?;
            match self.lanes[lane as usize].front() {
                Some(&(ht, hs, _)) if (ht, hs) == (t, s) => return Some((t, s)),
                _ => {
                    self.heads.pop();
                }
            }
        }
    }

    /// Removes and returns the earliest pending entry.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        loop {
            let Reverse((t, s, lane)) = self.heads.pop()?;
            let q = &mut self.lanes[lane as usize];
            let valid = matches!(q.front(), Some(&(ht, hs, _)) if (ht, hs) == (t, s));
            if !valid {
                continue; // stale key, superseded by a front insert
            }
            let entry = q.pop_front().expect("validated non-empty");
            if let Some(&(nt, ns, _)) = q.front() {
                self.heads.push(Reverse((nt, ns, lane)));
            }
            self.len -= 1;
            return Some(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn pops_in_time_then_seq_order_across_lanes() {
        let mut tl = Timeline::new(3, 2);
        tl.push(0, t(30), 5, "c");
        tl.push(1, t(10), 9, "a");
        tl.push(2, t(30), 2, "b");
        tl.push(1, t(40), 11, "d");
        assert_eq!(tl.len(), 4);
        assert_eq!(tl.peek_key(), Some((t(10), 9)));
        let order: Vec<&str> = std::iter::from_fn(|| tl.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c", "d"]);
        assert!(tl.is_empty());
        assert_eq!(tl.pop().map(|(_, _, e)| e), None::<&str>);
    }

    #[test]
    fn seq_breaks_exact_time_ties() {
        let mut tl = Timeline::new(4, 1);
        for (lane, seq) in [7u64, 3, 11, 5].into_iter().enumerate() {
            tl.push(lane, t(100), seq, seq);
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| tl.pop().map(|(_, s, _)| s)).collect();
        assert_eq!(seqs, [3, 5, 7, 11]);
    }

    #[test]
    fn out_of_order_lane_insert_supersedes_head() {
        // A later push that out-ranks the current lane head must win the
        // merge, and the superseded (stale) key must be dropped silently.
        let mut tl = Timeline::new(2, 2);
        tl.push(0, t(50), 4, "late");
        tl.push(0, t(20), 7, "early"); // front insert on lane 0
        tl.push(1, t(30), 1, "mid");
        assert_eq!(tl.peek_key(), Some((t(20), 7)));
        let order: Vec<&str> = std::iter::from_fn(|| tl.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, ["early", "mid", "late"]);
        assert_eq!(tl.len(), 0);
    }

    #[test]
    fn interleaved_push_pop_keeps_merge_exact() {
        // Mirror of the dispatch→deliver→done cadence: pops interleaved
        // with pushes into the lane just popped from.
        let mut tl = Timeline::new(2, 2);
        tl.push(0, t(10), 0, 0u32);
        tl.push(1, t(15), 1, 1);
        assert_eq!(tl.pop().map(|(_, _, e)| e), Some(0));
        tl.push(0, t(12), 2, 2); // same lane, beats lane 1's head
        assert_eq!(tl.pop().map(|(_, _, e)| e), Some(2));
        assert_eq!(tl.pop().map(|(_, _, e)| e), Some(1));
        assert!(tl.is_empty());
    }

    #[test]
    fn clear_retains_nothing() {
        let mut tl = Timeline::new(1, 1);
        tl.push(0, t(1), 0, ());
        tl.clear();
        assert!(tl.is_empty());
        assert_eq!(tl.peek_key(), None);
    }

    #[test]
    fn worker_plane_defaults() {
        assert_eq!(WorkerPlane::default(), WorkerPlane::Elided);
    }
}
