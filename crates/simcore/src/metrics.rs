//! Latency metrics: a log-linear histogram (HDR-style) plus SLO accounting.
//!
//! Tail-latency experiments need accurate high quantiles over millions of
//! samples without storing them all. [`LatencyHistogram`] buckets values with
//! bounded relative error (< ~1.6% with the default 64 sub-buckets) and
//! supports merging, which lets parallel sweep workers combine results.

use crate::time::SimDuration;
use std::fmt;

/// Number of linear sub-buckets per power-of-two range (must be a power of 2).
const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6; // log2(SUB_BUCKETS)

/// A histogram of [`SimDuration`] samples with bounded relative error.
///
/// # Examples
///
/// ```
/// use simcore::metrics::LatencyHistogram;
/// use simcore::time::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for ns in 1..=1000u64 {
///     h.record(SimDuration::from_ns(ns));
/// }
/// assert_eq!(h.count(), 1000);
/// let p99 = h.quantile(0.99).as_ns_f64();
/// assert!((p99 - 990.0).abs() / 990.0 < 0.02, "p99 was {p99}");
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ps: u128,
    min_ps: u64,
    max_ps: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Vec::new(),
            count: 0,
            sum_ps: 0,
            min_ps: u64::MAX,
            max_ps: 0,
        }
    }

    fn index_for(value: u64) -> usize {
        // Values below SUB_BUCKETS get exact buckets; above, log-linear.
        if value < SUB_BUCKETS {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros(); // exp >= SUB_BITS
        let shift = exp - SUB_BITS;
        let sub = (value >> shift) - SUB_BUCKETS; // in [0, SUB_BUCKETS)
        ((exp - SUB_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize
    }

    /// Lowest representative value (ps) for bucket `idx` — used when
    /// reporting quantiles. We report the bucket midpoint to halve bias.
    fn value_for(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_BUCKETS {
            return idx;
        }
        let group = idx / SUB_BUCKETS; // >= 1
        let sub = idx % SUB_BUCKETS;
        let base = (SUB_BUCKETS + sub) << (group - 1);
        let width = 1u64 << (group - 1);
        base + width / 2
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let ps = d.as_ps();
        let idx = Self::index_for(ps);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ps += ps as u128;
        self.min_ps = self.min_ps.min(ps);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True iff no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of all samples, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_ps((self.sum_ps / self.count as u128) as u64)
    }

    /// Exact smallest sample, or zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps(self.min_ps)
        }
    }

    /// Exact largest sample, or zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ps(self.max_ps)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) with bounded relative error; returns the
    /// exact max for q = 1 and zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket midpoints can land outside the observed range at
                // the extremes; clamp to the exact min/max.
                return SimDuration::from_ps(Self::value_for(idx).clamp(self.min_ps, self.max_ps));
            }
        }
        self.max()
    }

    /// Fraction of samples strictly greater than `threshold`.
    pub fn fraction_above(&self, threshold: SimDuration) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let cutoff = Self::index_for(threshold.as_ps());
        let mut above = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if idx > cutoff {
                above += c;
            }
        }
        above as f64 / self.count as f64
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, &src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        self.min_ps = self.min_ps.min(other.min_ps);
        self.max_ps = self.max_ps.max(other.max_ps);
    }

    /// A compact multi-quantile summary.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LatencyHistogram(n={}, mean={}, p99={}, max={})",
            self.count,
            self.mean(),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// Point-in-time summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean latency.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 90th percentile.
    pub p90: SimDuration,
    /// 99th percentile (the paper's SLO metric).
    pub p99: SimDuration,
    /// 99.9th percentile.
    pub p999: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p90={} p99={} p99.9={} max={}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.p999, self.max
        )
    }
}

/// Counts SLO violations against a fixed latency target.
///
/// # Examples
///
/// ```
/// use simcore::metrics::SloTracker;
/// use simcore::time::SimDuration;
///
/// let mut slo = SloTracker::new(SimDuration::from_us(10));
/// slo.observe(SimDuration::from_us(5));
/// slo.observe(SimDuration::from_us(15));
/// assert_eq!(slo.violations(), 1);
/// assert_eq!(slo.violation_ratio(), 0.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SloTracker {
    target: SimDuration,
    total: u64,
    violations: u64,
}

impl SloTracker {
    /// Creates a tracker for the given latency target.
    pub fn new(target: SimDuration) -> Self {
        SloTracker {
            target,
            total: 0,
            violations: 0,
        }
    }

    /// The latency target.
    pub fn target(&self) -> SimDuration {
        self.target
    }

    /// Records a completed request latency; returns `true` iff it violated
    /// the SLO (strictly exceeded the target).
    pub fn observe(&mut self, latency: SimDuration) -> bool {
        self.total += 1;
        let violated = latency > self.target;
        if violated {
            self.violations += 1;
        }
        violated
    }

    /// Would `latency` violate the SLO? (Does not record.)
    pub fn would_violate(&self, latency: SimDuration) -> bool {
        latency > self.target
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of violations.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Violations / total, or 0 when empty.
    pub fn violation_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.violations as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.99), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn exact_small_values() {
        let mut h = LatencyHistogram::new();
        for ps in [1u64, 2, 3, 63] {
            h.record(SimDuration::from_ps(ps));
        }
        assert_eq!(h.min().as_ps(), 1);
        assert_eq!(h.max().as_ps(), 63);
        assert_eq!(h.quantile(0.0).as_ps(), 1);
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        // Log-spaced values across 9 decades.
        for i in 0..100_000u64 {
            let v = 1.0f64 + (i as f64 / 100_000.0) * 9.0; // exponent 0..9
            h.record(SimDuration::from_ps(10f64.powf(v) as u64));
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let est = h.quantile(q).as_ps() as f64;
            let exact = 10f64.powf(1.0 + q * 9.0);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.03, "q={q} est={est} exact={exact} rel={rel}");
        }
    }

    #[test]
    fn mean_and_max_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_ns(10));
        h.record(SimDuration::from_ns(20));
        h.record(SimDuration::from_ns(30));
        assert_eq!(h.mean(), SimDuration::from_ns(20));
        assert_eq!(h.max(), SimDuration::from_ns(30));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_one_is_max() {
        let mut h = LatencyHistogram::new();
        for ns in [5u64, 500, 50_000] {
            h.record(SimDuration::from_ns(ns));
        }
        assert_eq!(h.quantile(1.0), SimDuration::from_ns(50_000));
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn quantile_rejects_bad_q() {
        LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for ns in 1..=500u64 {
            a.record(SimDuration::from_ns(ns));
        }
        for ns in 501..=1000u64 {
            b.record(SimDuration::from_ns(ns));
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.quantile(0.5).as_ns_f64();
        assert!((p50 - 500.0).abs() / 500.0 < 0.02, "p50={p50}");
        assert_eq!(a.max(), SimDuration::from_ns(1000));
        assert_eq!(a.min(), SimDuration::from_ns(1));
    }

    #[test]
    fn fraction_above_threshold() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=100u64 {
            h.record(SimDuration::from_us(ns));
        }
        let f = h.fraction_above(SimDuration::from_us(90));
        assert!((f - 0.10).abs() < 0.03, "f={f}");
        assert_eq!(h.fraction_above(SimDuration::from_us(1000)), 0.0);
    }

    #[test]
    fn slo_tracker_counts() {
        let mut t = SloTracker::new(SimDuration::from_us(1));
        assert!(!t.observe(SimDuration::from_ns(999)));
        assert!(!t.observe(SimDuration::from_us(1))); // equal is not a violation
        assert!(t.observe(SimDuration::from_ns(1001)));
        assert_eq!(t.total(), 3);
        assert_eq!(t.violations(), 1);
        assert!((t.violation_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!(t.would_violate(SimDuration::from_us(2)));
    }

    #[test]
    fn summary_fields_consistent() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=10_000u64 {
            h.record(SimDuration::from_ns(ns));
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0usize;
        for ps in (0..10_000_000u64).step_by(997) {
            let idx = LatencyHistogram::index_for(ps);
            assert!(idx >= last, "index not monotone at {ps}");
            last = idx;
        }
    }

    #[test]
    fn bucket_value_within_range() {
        for ps in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1_000,
            123_456,
            10_000_000_000,
        ] {
            let idx = LatencyHistogram::index_for(ps);
            let rep = LatencyHistogram::value_for(idx) as f64;
            let rel = (rep - ps as f64).abs() / (ps.max(1) as f64);
            assert!(rel <= 0.02 || ps < 64, "ps={ps} rep={rep} rel={rel}");
        }
    }
}
