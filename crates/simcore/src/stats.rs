//! Steady-state statistics: batch means and confidence intervals.
//!
//! Simulation estimates of tail latency are themselves random variables.
//! The batch-means method splits a run's observations into contiguous
//! batches, treats batch averages as (approximately) independent samples,
//! and yields a confidence interval on the mean — the standard way to
//! quantify how trustworthy a single-run number is without replications.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Point estimate of the mean.
    pub mean: f64,
    /// Half-width of the confidence interval.
    pub half_width: f64,
    /// Number of batches used.
    pub batches: usize,
}

impl MeanCi {
    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Relative precision (half-width / mean), or infinity at mean 0.
    pub fn relative(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Two-sided Student-t critical values at 95% confidence for `df` degrees of
/// freedom (clamped to the asymptotic 1.96 beyond the table).
fn t_crit_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Batch-means 95% confidence interval on the mean of `samples`, discarding
/// the first `warmup` observations (transient) and splitting the rest into
/// `batches` equal batches.
///
/// Returns `None` when there are not enough observations for at least two
/// batches of two observations each.
///
/// # Examples
///
/// ```
/// use simcore::stats::batch_means_ci;
/// let xs: Vec<f64> = (0..10_000).map(|i| (i % 7) as f64).collect();
/// let ci = batch_means_ci(&xs, 100, 20).unwrap();
/// assert!((ci.mean - 3.0).abs() < 0.1);
/// assert!(ci.half_width < 0.2);
/// ```
pub fn batch_means_ci(samples: &[f64], warmup: usize, batches: usize) -> Option<MeanCi> {
    if batches < 2 {
        return None;
    }
    let body = samples.get(warmup..)?;
    let per = body.len() / batches;
    if per < 2 {
        return None;
    }
    let means: Vec<f64> = (0..batches)
        .map(|b| {
            let chunk = &body[b * per..(b + 1) * per];
            chunk.iter().sum::<f64>() / per as f64
        })
        .collect();
    let grand = means.iter().sum::<f64>() / batches as f64;
    let var = means.iter().map(|m| (m - grand).powi(2)).sum::<f64>() / (batches as f64 - 1.0);
    let se = (var / batches as f64).sqrt();
    Some(MeanCi {
        mean: grand,
        half_width: t_crit_95(batches - 1) * se,
        batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_data_zero_width() {
        let xs = vec![5.0; 1000];
        let ci = batch_means_ci(&xs, 0, 10).unwrap();
        assert_eq!(ci.mean, 5.0);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.lo(), 5.0);
        assert_eq!(ci.hi(), 5.0);
    }

    #[test]
    fn interval_covers_true_mean() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| 10.0 + rng.random::<f64>() - 0.5)
            .collect();
        let ci = batch_means_ci(&xs, 1000, 30).unwrap();
        assert!(ci.lo() <= 10.0 && 10.0 <= ci.hi(), "{ci:?}");
        assert!(ci.relative() < 0.01);
    }

    #[test]
    fn warmup_discards_transient() {
        // Transient of huge values then steady 1.0.
        let mut xs = vec![1000.0; 500];
        xs.extend(std::iter::repeat_n(1.0, 10_000));
        let with = batch_means_ci(&xs, 500, 10).unwrap();
        assert!((with.mean - 1.0).abs() < 1e-9);
        let without = batch_means_ci(&xs, 0, 10).unwrap();
        assert!(without.mean > 1.0);
    }

    #[test]
    fn too_few_samples() {
        assert!(batch_means_ci(&[1.0, 2.0], 0, 2).is_none());
        assert!(batch_means_ci(&[1.0; 100], 0, 1).is_none());
        assert!(batch_means_ci(&[1.0; 10], 9, 2).is_none());
    }

    #[test]
    fn wider_with_fewer_batches() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.random::<f64>() * 100.0).collect();
        let few = batch_means_ci(&xs, 0, 4).unwrap();
        let many = batch_means_ci(&xs, 0, 30).unwrap();
        // t-critical shrinks and the SE averages down with more batches.
        assert!(
            few.half_width > many.half_width,
            "few={few:?} many={many:?}"
        );
    }

    #[test]
    fn t_table_sane() {
        assert!(t_crit_95(1) > 12.0);
        assert!((t_crit_95(100) - 1.96).abs() < 1e-9);
        assert!(t_crit_95(5) < t_crit_95(2));
    }
}
