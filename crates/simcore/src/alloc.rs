//! Counting global allocator — the allocation-budget harness.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and counts every
//! allocation (including reallocations, which may move). Test binaries
//! install it as their `#[global_allocator]` and assert that the simulator's
//! steady-state loop performs **zero** allocations per event:
//!
//! ```ignore
//! use simcore::alloc::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let before = ALLOC.allocations();
//! // ... run the warmed-up hot loop ...
//! assert_eq!(ALLOC.allocations() - before, 0);
//! ```
//!
//! Counter reads are monotone snapshots; meaningful deltas require that no
//! other thread allocates between the two reads, so allocation-budget tests
//! keep all phases inside a single `#[test]` function.

// The delegating GlobalAlloc impl below is the one unavoidable use of
// `unsafe` in simcore; everything else stays deny-by-default.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-delegating allocator that counts calls and bytes.
#[derive(Debug, Default)]
pub struct CountingAlloc {
    allocs: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAlloc {
    /// Creates a zeroed counter (usable in `static` position).
    pub const fn new() -> Self {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Total number of allocation calls (alloc + alloc_zeroed + realloc)
    /// since process start.
    pub fn allocations(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Total bytes requested across those calls.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
