//! Simulation-native telemetry: request-lifecycle spans, time-series
//! probes, and structured export.
//!
//! The simulator's hot path reports to a [`TelemetrySink`]; worlds are
//! generic over the sink type, so the default [`NullSink`] monomorphizes
//! every hook into nothing — telemetry-off runs pay zero instructions and
//! zero allocations. The recording implementation, [`Telemetry`], captures:
//!
//! - **span points** ([`SpanLog`]): timestamped lifecycle transitions of a
//!   *track* (one request), reconstructable into a contiguous critical-path
//!   breakdown and exportable as Chrome-trace/Perfetto JSON
//!   ([`chrome_trace_json`]) or a phase-latency table
//!   ([`phase_latency_table`]);
//! - **probe samples** ([`ProbeSet`]): periodic readings of simulation
//!   state (queue depths, EWMA load, FIFO occupancy) stored in pre-sized
//!   ring buffers and exportable as JSONL ([`ProbeSet::to_jsonl`]).
//!
//! The non-perturbation invariant: a sink only *reads* values the
//! simulation already computed. Recording never pushes events, consumes
//! RNG draws, or feeds anything back into the model, so every simulated
//! number is byte-identical with telemetry on or off (pinned by the
//! determinism tests in `crates/bench/tests/determinism.rs`).
//!
//! [`validate_chrome_trace`] and [`validate_probe_jsonl`] re-parse exported
//! artifacts with a dependency-free JSON reader; the `trace_lint` binary
//! and the CI smoke step run them against real exports.

use crate::report::Table;
use crate::time::SimTime;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Receiver of telemetry emitted by a simulation hot path.
///
/// Every method has a no-op default, so `impl TelemetrySink for MySink {}`
/// plus the overrides you care about is enough. Hot paths should gate any
/// *extra work* (computing a sample, formatting) behind
/// [`enabled`](Self::enabled); plain recording calls can be unconditional —
/// against [`NullSink`] they compile away entirely.
pub trait TelemetrySink {
    /// True iff this sink records anything. Lets callers skip computing
    /// sample values that would be thrown away.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Records that `track` (e.g. a request) reached lifecycle point `kind`
    /// at `at`, at location `loc` (e.g. a core or group id).
    #[inline]
    fn span_point(&mut self, _track: u32, _kind: u16, _loc: u32, _at: SimTime) {}

    /// Registers a probe series named `name` for sub-entity `key` (e.g. a
    /// group id) and returns its series id for later [`probe`](Self::probe)
    /// calls. The no-op default returns a dummy id.
    #[inline]
    fn register_series(&mut self, _name: &'static str, _key: u32) -> u32 {
        0
    }

    /// Records one sample of probe series `series`.
    #[inline]
    fn probe(&mut self, _series: u32, _at: SimTime, _value: f64) {}

    /// True iff this sink wants per-event records
    /// ([`event_record`](Self::event_record)). Worlds gate the descriptor
    /// computation (kind tag, payload digest) behind this, exactly like
    /// [`enabled`](Self::enabled) gates probe-sample computation; the
    /// default `false` lets the whole record path compile away.
    #[inline]
    fn records_events(&self) -> bool {
        false
    }

    /// Records that the event ranked `(at, seq)` in the queue's total
    /// order was executed, with a world-defined descriptor (`kind` tag,
    /// home `group`, `payload` digest). See [`crate::trace::Recorder`].
    #[inline]
    fn event_record(&mut self, _at: SimTime, _seq: u64, _kind: u8, _group: u32, _payload: u64) {}
}

/// The telemetry-off sink: every hook is a no-op and
/// [`enabled`](TelemetrySink::enabled) is `false`, so monomorphized hot
/// paths contain no trace of telemetry at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {}

/// One recorded lifecycle point of a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanPoint {
    /// The entity this point belongs to (e.g. a trace request index).
    pub track: u32,
    /// World-defined lifecycle point kind (e.g. "service start").
    pub kind: u16,
    /// World-defined location (e.g. the core or group involved).
    pub loc: u32,
    /// Simulated instant of the transition.
    pub at: SimTime,
}

/// Append-only log of [`SpanPoint`]s.
///
/// Points of one track must be appended in non-decreasing time order (the
/// natural order for a discrete-event simulation, where recording happens
/// at the current virtual instant); points of different tracks interleave
/// freely. Consecutive points of a track delimit one *segment* of its
/// lifecycle, so a track recorded from arrival to completion decomposes
/// exactly: segment durations sum to the track's end-to-end latency.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    points: Vec<SpanPoint>,
}

impl SpanLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Creates an empty log with room for `points` entries, so recording
    /// stays allocation-free until the capacity is exceeded (growth beyond
    /// it is amortized doubling).
    pub fn with_capacity(points: usize) -> Self {
        SpanLog {
            points: Vec::with_capacity(points),
        }
    }

    /// Appends one point.
    #[inline]
    pub fn record(&mut self, track: u32, kind: u16, loc: u32, at: SimTime) {
        self.points.push(SpanPoint {
            track,
            kind,
            loc,
            at,
        });
    }

    /// All recorded points, in recording order.
    pub fn points(&self) -> &[SpanPoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points grouped by track: a stable sort by track id, so each track's
    /// points keep their recording (= chronological) order.
    pub fn sorted_by_track(&self) -> Vec<SpanPoint> {
        let mut sorted = self.points.clone();
        sorted.sort_by_key(|p| p.track);
        sorted
    }

    /// Calls `f` with every (from, to) pair of consecutive points of the
    /// same track, across all tracks.
    pub fn for_each_segment(&self, mut f: impl FnMut(&SpanPoint, &SpanPoint)) {
        let sorted = self.sorted_by_track();
        for w in sorted.windows(2) {
            if w[0].track == w[1].track {
                f(&w[0], &w[1]);
            }
        }
    }
}

/// One probe reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSample {
    /// Simulated instant the reading was taken.
    pub at: SimTime,
    /// The sampled value.
    pub value: f64,
}

/// A pre-sized ring buffer of [`ProbeSample`]s for one series.
///
/// The ring allocates its full capacity once at registration; pushes never
/// allocate. When full, the oldest sample is overwritten and counted in
/// [`dropped`](Self::dropped).
#[derive(Debug, Clone)]
pub struct ProbeRing {
    name: String,
    key: u32,
    capacity: usize,
    /// Index of the oldest sample once the ring has wrapped.
    start: usize,
    samples: Vec<ProbeSample>,
    dropped: u64,
}

impl ProbeRing {
    fn new(name: &str, key: u32, capacity: usize) -> Self {
        assert!(capacity > 0, "probe ring capacity must be positive");
        ProbeRing {
            name: name.to_string(),
            key,
            capacity,
            start: 0,
            samples: Vec::with_capacity(capacity),
            dropped: 0,
        }
    }

    #[inline]
    fn push(&mut self, at: SimTime, value: f64) {
        let s = ProbeSample { at, value };
        if self.samples.len() < self.capacity {
            self.samples.push(s);
        } else {
            self.samples[self.start] = s;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Metric name of the series (e.g. `netrx_depth`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sub-entity key (e.g. the group id).
    pub fn key(&self) -> u32 {
        self.key
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True iff no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained samples in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &ProbeSample> {
        self.samples[self.start..]
            .iter()
            .chain(self.samples[..self.start].iter())
    }
}

/// Default per-series ring capacity of [`ProbeSet`].
pub const DEFAULT_PROBE_CAPACITY: usize = 4096;

/// A set of named probe series with uniform ring capacity.
#[derive(Debug, Clone)]
pub struct ProbeSet {
    capacity: usize,
    series: Vec<ProbeRing>,
}

impl ProbeSet {
    /// Creates an empty set whose series each retain up to `capacity`
    /// samples.
    pub fn new(capacity: usize) -> Self {
        ProbeSet {
            capacity,
            series: Vec::new(),
        }
    }

    /// Registers a series and returns its id.
    pub fn add_series(&mut self, name: &str, key: u32) -> u32 {
        let id = self.series.len() as u32;
        self.series.push(ProbeRing::new(name, key, self.capacity));
        id
    }

    /// Appends a sample to series `id`. Unknown ids are ignored (debug
    /// builds assert).
    #[inline]
    pub fn push(&mut self, id: u32, at: SimTime, value: f64) {
        debug_assert!((id as usize) < self.series.len(), "unregistered series");
        if let Some(ring) = self.series.get_mut(id as usize) {
            ring.push(at, value);
        }
    }

    /// The registered series.
    pub fn series(&self) -> &[ProbeRing] {
        &self.series
    }

    /// Total retained samples across all series.
    pub fn sample_count(&self) -> usize {
        self.series.iter().map(|s| s.len()).sum()
    }

    /// Renders every retained sample as JSON Lines, one object per line:
    ///
    /// ```json
    /// {"series":"netrx_depth","key":2,"t_ps":1234000,"value":3}
    /// ```
    ///
    /// `t_ps` is the exact picosecond timestamp (no float rounding).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ring in &self.series {
            for s in ring.iter() {
                let _ = writeln!(
                    out,
                    "{{\"series\":{},\"key\":{},\"t_ps\":{},\"value\":{}}}",
                    json_string(ring.name()),
                    ring.key(),
                    s.at.as_ps(),
                    json_number(s.value),
                );
            }
        }
        out
    }
}

impl Default for ProbeSet {
    fn default() -> Self {
        Self::new(DEFAULT_PROBE_CAPACITY)
    }
}

/// The recording sink: a [`SpanLog`] plus a [`ProbeSet`].
///
/// Create one per run (series registration happens inside the traced run)
/// and export afterwards. Pre-size with [`with_capacity`](Self::with_capacity)
/// to keep recording allocation-free in steady state.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Request-lifecycle span points.
    pub spans: SpanLog,
    /// Time-series probe rings.
    pub probes: ProbeSet,
}

impl Telemetry {
    /// Creates an empty recorder with default capacities.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Creates a recorder pre-sized for `span_points` lifecycle points and
    /// `probe_capacity` retained samples per series.
    pub fn with_capacity(span_points: usize, probe_capacity: usize) -> Self {
        Telemetry {
            spans: SpanLog::with_capacity(span_points),
            probes: ProbeSet::new(probe_capacity),
        }
    }
}

impl TelemetrySink for Telemetry {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn span_point(&mut self, track: u32, kind: u16, loc: u32, at: SimTime) {
        self.spans.record(track, kind, loc, at);
    }

    fn register_series(&mut self, name: &'static str, key: u32) -> u32 {
        self.probes.add_series(name, key)
    }

    #[inline]
    fn probe(&mut self, series: u32, at: SimTime, value: f64) {
        self.probes.push(series, at, value);
    }
}

/// Renders a [`SpanLog`] as Chrome-trace JSON (the format Perfetto and
/// `chrome://tracing` load).
///
/// Each track becomes one `tid` under `pid` 1; each segment becomes a
/// complete (`"ph":"X"`) event whose name is `segment_name(from_kind,
/// to_kind)`. Timestamps are microseconds (the Chrome trace unit) with
/// picosecond precision preserved in the fractional digits, so segments of
/// one track are exactly contiguous — which is what the well-nestedness
/// check of [`validate_chrome_trace`] verifies.
pub fn chrome_trace_json<F>(log: &SpanLog, mut segment_name: F) -> String
where
    F: FnMut(u16, u16) -> &'static str,
{
    // ~130 bytes per event; pre-size to avoid quadratic re-growth.
    let mut out = String::with_capacity(64 + log.len() * 140);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    log.for_each_segment(|a, b| {
        if !first {
            out.push(',');
        }
        first = false;
        let ts = a.at.as_ps() as f64 / 1e6;
        let dur = (b.at.as_ps() - a.at.as_ps()) as f64 / 1e6;
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"request\",\"ph\":\"X\",\"ts\":{ts:.6},\
             \"dur\":{dur:.6},\"pid\":1,\"tid\":{},\
             \"args\":{{\"from_loc\":{},\"to_loc\":{}}}}}",
            json_string(segment_name(a.kind, b.kind)),
            a.track,
            a.loc,
            b.loc,
        );
    });
    out.push_str("]}");
    out
}

/// Builds the phase-latency breakdown table of a [`SpanLog`]:
///
/// | column | meaning |
/// |---|---|
/// | `phase` | segment name (first-appearance order) |
/// | `count` | segments recorded |
/// | `mean_ns` / `p99_ns` | distribution of that phase's duration |
/// | `share` | fraction of total recorded time spent in the phase |
/// | `p99_cohort_mean_ns` | mean duration *within the slowest 1 % of tracks* |
///
/// The last column is the "where does the tail come from" view: comparing
/// it against `mean_ns` shows which phase inflates for the requests that
/// set the p99.
pub fn phase_latency_table<F>(log: &SpanLog, mut segment_name: F) -> Table
where
    F: FnMut(u16, u16) -> &'static str,
{
    // (track, phase index, duration) per segment, phases in first-appearance
    // order for a deterministic table.
    let mut names: Vec<&'static str> = Vec::new();
    let mut name_idx: HashMap<&'static str, usize> = HashMap::new();
    let mut segments: Vec<(u32, usize, u64)> = Vec::new();
    let mut track_total: HashMap<u32, u64> = HashMap::new();
    log.for_each_segment(|a, b| {
        let name = segment_name(a.kind, b.kind);
        let idx = *name_idx.entry(name).or_insert_with(|| {
            names.push(name);
            names.len() - 1
        });
        let dur = b.at.as_ps() - a.at.as_ps();
        segments.push((a.track, idx, dur));
        *track_total.entry(a.track).or_insert(0) += dur;
    });

    // Slowest-1% track cohort by total recorded duration.
    let mut totals: Vec<u64> = track_total.values().copied().collect();
    totals.sort_unstable();
    let cutoff = if totals.is_empty() {
        0
    } else {
        totals[((totals.len() - 1) as f64 * 0.99).round() as usize]
    };

    let n = names.len();
    let mut count = vec![0u64; n];
    let mut sum = vec![0u64; n];
    let mut durs: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut slow_count = vec![0u64; n];
    let mut slow_sum = vec![0u64; n];
    for &(track, idx, dur) in &segments {
        count[idx] += 1;
        sum[idx] += dur;
        durs[idx].push(dur);
        if track_total[&track] >= cutoff {
            slow_count[idx] += 1;
            slow_sum[idx] += dur;
        }
    }
    let grand_total: u64 = sum.iter().sum();

    let mut t = Table::new(&[
        "phase",
        "count",
        "mean_ns",
        "p99_ns",
        "share",
        "p99_cohort_mean_ns",
    ]);
    for i in 0..n {
        durs[i].sort_unstable();
        let p99 = durs[i][((durs[i].len() - 1) as f64 * 0.99).round() as usize];
        let mean_ns = sum[i] as f64 / count[i] as f64 / 1e3;
        let slow_mean_ns = if slow_count[i] > 0 {
            slow_sum[i] as f64 / slow_count[i] as f64 / 1e3
        } else {
            0.0
        };
        t.row(&[
            names[i],
            &count[i].to_string(),
            &format!("{mean_ns:.1}"),
            &format!("{:.1}", p99 as f64 / 1e3),
            &crate::report::pct(if grand_total > 0 {
                sum[i] as f64 / grand_total as f64
            } else {
                0.0
            }),
            &format!("{slow_mean_ns:.1}"),
        ]);
    }
    t
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` always includes a decimal point or exponent — valid JSON.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

// ---------------------------------------------------------------------------
// Dependency-free JSON reading, for validating exported artifacts.
// ---------------------------------------------------------------------------

/// A parsed JSON value (the validator's minimal model; objects keep key
/// order and allow duplicates, which JSON permits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// First value under `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our exports;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Decode exactly one multi-byte UTF-8 scalar (2-4 bytes
                    // by the lead byte) — never re-validate the whole tail.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a description (with byte offset) on malformed input or trailing
/// garbage.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Summary of a validated Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Trace events in the file.
    pub events: usize,
    /// Distinct `tid` tracks.
    pub tracks: usize,
}

/// Parses `input` as Chrome-trace JSON and checks the structural contract
/// [`chrome_trace_json`] promises: a `traceEvents` array of complete
/// (`"ph":"X"`) events with `name`/`ts`/`dur`/`pid`/`tid`, and — per track —
/// well-nested (here: non-overlapping, since the per-request critical path
/// is flat) spans when ordered by start time.
///
/// # Errors
///
/// Returns a description of the first malformed event or overlap found.
pub fn validate_chrome_trace(input: &str) -> Result<ChromeTraceStats, String> {
    let doc = parse_json(input)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing traceEvents array")?;
    let mut by_track: HashMap<u64, Vec<(f64, f64)>> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let field = |k: &str| ev.get(k).ok_or_else(|| format!("event {i}: missing {k}"));
        field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: name not a string"))?;
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: ph not a string"))?;
        if ph != "X" {
            return Err(format!("event {i}: expected complete event, got ph={ph}"));
        }
        let ts = field("ts")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: ts not a number"))?;
        let dur = field("dur")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: dur not a number"))?;
        let tid = field("tid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: tid not a number"))?;
        field("pid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: pid not a number"))?;
        if !(ts >= 0.0 && dur >= 0.0) {
            return Err(format!("event {i}: negative ts/dur"));
        }
        by_track.entry(tid as u64).or_default().push((ts, dur));
    }
    // Flat spans: ordered by start, each must begin no earlier than the
    // previous one ends (1 ns slack for float formatting).
    const SLACK_US: f64 = 1e-3;
    for (tid, spans) in &mut by_track {
        spans.sort_by(|a, b| a.partial_cmp(b).expect("finite ts"));
        for w in spans.windows(2) {
            let (ts0, dur0) = w[0];
            let (ts1, _) = w[1];
            if ts1 + SLACK_US < ts0 + dur0 {
                return Err(format!("track {tid}: spans overlap ({ts0}+{dur0} > {ts1})"));
            }
        }
    }
    Ok(ChromeTraceStats {
        events: events.len(),
        tracks: by_track.len(),
    })
}

/// Validates a probe-series JSONL export: every non-empty line must be an
/// object with a string `series`, numeric `key`, integer `t_ps` and numeric
/// `value`. Returns the number of samples.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate_probe_jsonl(input: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let field = |k: &str| {
            obj.get(k)
                .ok_or_else(|| format!("line {}: missing {k}", lineno + 1))
        };
        field("series")?
            .as_str()
            .ok_or_else(|| format!("line {}: series not a string", lineno + 1))?;
        field("key")?
            .as_f64()
            .ok_or_else(|| format!("line {}: key not a number", lineno + 1))?;
        let t_ps = field("t_ps")?
            .as_f64()
            .ok_or_else(|| format!("line {}: t_ps not a number", lineno + 1))?;
        if t_ps < 0.0 || t_ps.fract() != 0.0 {
            return Err(format!(
                "line {}: t_ps not a non-negative integer",
                lineno + 1
            ));
        }
        field("value")?
            .as_f64()
            .ok_or_else(|| format!("line {}: value not a number", lineno + 1))?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(track: u32, kind: u16, loc: u32, ns: u64) -> SpanPoint {
        SpanPoint {
            track,
            kind,
            loc,
            at: SimTime::from_ns(ns),
        }
    }

    fn demo_log() -> SpanLog {
        let mut log = SpanLog::new();
        // Track 0: 0 -> 10 -> 30; track 1 interleaved: 5 -> 25.
        log.record(0, 0, 7, SimTime::from_ns(0));
        log.record(1, 0, 8, SimTime::from_ns(5));
        log.record(0, 1, 7, SimTime::from_ns(10));
        log.record(1, 2, 8, SimTime::from_ns(25));
        log.record(0, 2, 9, SimTime::from_ns(30));
        log
    }

    #[test]
    fn segments_group_by_track_in_order() {
        let log = demo_log();
        let mut seen = Vec::new();
        log.for_each_segment(|a, b| seen.push((a.track, a.at, b.at)));
        assert_eq!(
            seen,
            vec![
                (0, SimTime::from_ns(0), SimTime::from_ns(10)),
                (0, SimTime::from_ns(10), SimTime::from_ns(30)),
                (1, SimTime::from_ns(5), SimTime::from_ns(25)),
            ]
        );
        assert_eq!(log.points().len(), 5);
        assert_eq!(log.sorted_by_track()[0], pt(0, 0, 7, 0));
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.span_point(0, 0, 0, SimTime::ZERO);
        assert_eq!(s.register_series("x", 0), 0);
        s.probe(0, SimTime::ZERO, 1.0);
    }

    #[test]
    fn telemetry_records_through_the_sink_trait() {
        let mut t = Telemetry::with_capacity(16, 8);
        assert!(t.enabled());
        let id = t.register_series("depth", 3);
        t.probe(id, SimTime::from_ns(1), 2.0);
        t.span_point(9, 1, 2, SimTime::from_ns(4));
        assert_eq!(t.probes.sample_count(), 1);
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.probes.series()[0].key(), 3);
    }

    #[test]
    fn probe_ring_wraps_and_counts_drops() {
        let mut ring = ProbeRing::new("x", 0, 3);
        for i in 0..5u64 {
            ring.push(SimTime::from_ns(i), i as f64);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let vals: Vec<f64> = ring.iter().map(|s| s.value).collect();
        assert_eq!(vals, vec![2.0, 3.0, 4.0], "oldest samples overwritten");
        let times: Vec<u64> = ring.iter().map(|s| s.at.as_ps()).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "chronological order");
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let mut probes = ProbeSet::new(4);
        let a = probes.add_series("netrx_depth", 0);
        let b = probes.add_series("ewma_erlangs", 1);
        probes.push(a, SimTime::from_ns(100), 3.0);
        probes.push(b, SimTime::from_ns(100), 0.75);
        probes.push(a, SimTime::from_ns(300), 4.0);
        let jsonl = probes.to_jsonl();
        assert_eq!(validate_probe_jsonl(&jsonl), Ok(3));
        assert!(jsonl.contains("\"t_ps\":100000"));
    }

    #[test]
    fn chrome_trace_round_trips_through_the_validator() {
        let log = demo_log();
        let json = chrome_trace_json(&log, |from, _to| match from {
            0 => "queue",
            1 => "service",
            _ => "other",
        });
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(
            stats,
            ChromeTraceStats {
                events: 3,
                tracks: 2
            }
        );
        assert!(json.contains("\"name\":\"queue\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn validator_rejects_overlapping_spans() {
        let json = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0.0,"dur":5.0,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":2.0,"dur":1.0,"pid":1,"tid":1}
        ]}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
        // Same spans on different tracks are fine.
        let ok = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0.0,"dur":5.0,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":2.0,"dur":1.0,"pid":1,"tid":2}
        ]}"#;
        assert!(validate_chrome_trace(ok).is_ok());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"name\":\"a\"}]}").is_err(),
            "events must carry ph/ts/dur"
        );
        assert!(validate_probe_jsonl("{\"series\":\"x\"}").is_err());
        assert!(
            validate_probe_jsonl("{\"series\":\"x\",\"key\":0,\"t_ps\":1.5,\"value\":2}").is_err()
        );
    }

    #[test]
    fn phase_table_sums_to_latency_breakdown() {
        let log = demo_log();
        let t = phase_latency_table(&log, |from, _| if from == 0 { "queue" } else { "service" });
        let rendered = t.render();
        assert!(rendered.contains("queue"), "{rendered}");
        assert!(rendered.contains("service"), "{rendered}");
        // queue: 10ns (track 0) + 20ns (track 1) = 30ns of 50ns total.
        assert!(rendered.contains("60.00%"), "{rendered}");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"s":"x\n\"yA","b":true,"n":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"yA"));
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }
}
