//! Rack-scale tier: N servers composed under a two-level scheduler.
//!
//! The paper evaluates one 256-core server; a rack of them needs an
//! *inter-server* policy on top of the intra-server migration mesh.
//! Following RackSched (OSDI '20) — and Rain's in-network refinement of the
//! same split — this module adds that tier as a first-class subsystem:
//!
//! - **Level 1 (inter-server, at the ToR):** power-of-k least-load routing
//!   with per-connection affinity. New connections sample `k` candidate
//!   servers from the ToR's request-outstanding estimate and bind to the
//!   least loaded; established connections stick to their server (intra-
//!   server state such as RSS steering and manager queues stays warm)
//!   unless its load spills past a configurable multiple of the sampled
//!   best, or the server is detected dead.
//! - **Level 2 (intra-server):** each server is a full [`Altocumulus`]
//!   world with its own group mesh and migration machinery (or a d-FCFS /
//!   JBSQ baseline for head-to-head rack comparisons), driven through the
//!   existing calendar-queue engine stack unchanged — `choose_engine`
//!   downgrades per server exactly as in single-server runs.
//!
//! The ToR hop is modeled like the `hw` transfer paths ([`rpcstack::nic::
//! Transfer`], [`crate::hw::fifo::BoundedFifo`]): a fixed switch latency
//! plus store-and-forward serialization on the destination downlink, whose
//! occupancy is a per-port drain clock (queueing delay surfaces in
//! [`RoutingStats::tor_max_queue_ps`]). Per-server fault plans reuse
//! [`simcore::faults`] wholesale, and a whole-server-death scenario layers
//! on top: requests in flight to (or unfinished on) a dead server are
//! retried through the ToR after a client timeout, and connections rebind
//! once the death is detected — the PR-5 takeover machinery then absorbs
//! any *intra*-server faults on the survivors.
//!
//! # Determinism contract
//!
//! Routing is a single serial pass over the global trace in arrival order,
//! drawing only from the isolated [`streams::RACK`] RNG stream (zero draws
//! when the rack has one server, so a 1-server rack is byte-identical to
//! the bare world). Per-server simulations are mutually independent once
//! the routing pass has fixed their sub-traces, so they may run under
//! [`simcore::parallel_map`] at any thread count — results are merged in a
//! fixed (finish, server, completion-seq) order. Completions, stats, RNG
//! draw counts and TRACE/1.0 recordings are therefore byte-identical
//! across `SWEEP_THREADS` values and repeated invocations.

use crate::config::AcConfig;
use crate::system::{AcResult, Altocumulus};
use rand::rngs::StdRng;
use rand::Rng;
use schedulers::common::{RpcSystem, SystemResult};
use schedulers::dfcfs::{DFcfs, DFcfsConfig};
use schedulers::jbsq::{Jbsq, JbsqConfig, JbsqVariant};
use simcore::faults::FaultPlan;
use simcore::rng::{stream_rng, streams, BatchedRng};
use simcore::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use workload::request::{Completion, Request, RequestId};
use workload::trace::Trace;

/// Modeled top-of-rack switch: every request pays one switch hop plus
/// store-and-forward serialization on the destination server's downlink
/// port. Port occupancy is a drain clock per server, so bursts toward one
/// server queue behind each other exactly like a bounded egress FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TorConfig {
    /// Fixed one-way switch traversal latency per request.
    pub hop_latency: SimDuration,
    /// Downlink bandwidth in Gbit/s; `0` models an infinitely fast fabric
    /// (no serialization, no port queueing) — used by identity tests.
    pub link_gbps: u64,
    /// Delay between a server dying and the ToR health machinery marking
    /// it dead (until then, new requests are still routed at it and lost
    /// into the void, to be retried).
    pub detect_delay: SimDuration,
    /// Client-side retry timer: a request swallowed by a dead server is
    /// re-sent this long after `max(send time, death instant)`. Must be at
    /// least `detect_delay`, so a retry is never re-routed to the same
    /// dead server and the retry cascade provably terminates.
    pub retry_timeout: SimDuration,
}

impl TorConfig {
    /// Defaults for a commodity rack: 500 ns hop, 100 Gbit/s downlinks,
    /// 50 µs failure detection, 100 µs client retry.
    pub fn paper() -> Self {
        TorConfig {
            hop_latency: SimDuration::from_ns(500),
            link_gbps: 100,
            detect_delay: SimDuration::from_us(50),
            retry_timeout: SimDuration::from_us(100),
        }
    }

    /// A transparent fabric: zero hop latency, infinite bandwidth,
    /// immediate detection. A 1-server rack under this ToR reproduces the
    /// bare server byte-for-byte.
    pub fn ideal() -> Self {
        TorConfig {
            hop_latency: SimDuration::ZERO,
            link_gbps: 0,
            detect_delay: SimDuration::ZERO,
            retry_timeout: SimDuration::from_us(100),
        }
    }

    /// Store-and-forward serialization delay of a `bytes`-byte message on
    /// one downlink (zero for the infinite fabric).
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        if self.link_gbps == 0 {
            SimDuration::ZERO
        } else {
            // bits * (1000 ps per Gbit-bit) / gbps, rounded up.
            SimDuration::from_ps((bytes as u64 * 8_000).div_ceil(self.link_gbps))
        }
    }
}

/// The inter-server routing policy (level 1 of the two-level scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutePolicy {
    /// Candidate servers sampled per routing decision (RackSched's
    /// power-of-k). `k >=` live servers degenerates to full least-load.
    pub power_k: usize,
    /// Per-connection affinity: keep a connection on its bound server
    /// (warm RSS steering and manager state) instead of re-deciding per
    /// request.
    pub affinity: bool,
    /// A bound connection spills to the sampled best server when its
    /// server's outstanding estimate exceeds
    /// `spill_factor * best + spill_slack`.
    pub spill_factor: u32,
    /// Additive slack of the spill test (absorbs small-load noise).
    pub spill_slack: u32,
    /// The ToR's a-priori estimate of mean request service time, used only
    /// by its request-outstanding load tracker (the ToR cannot see real
    /// per-server queues, exactly like RackSched's switch).
    pub est_service: SimDuration,
}

impl Default for RoutePolicy {
    fn default() -> Self {
        RoutePolicy {
            power_k: 2,
            affinity: true,
            spill_factor: 2,
            spill_slack: 8,
            est_service: SimDuration::from_ns(850),
        }
    }
}

impl RoutePolicy {
    /// Pure least-load over `k` sampled candidates, no affinity — the
    /// stateless lower layer on its own, for A/B routing comparisons.
    pub fn least_load(k: usize) -> Self {
        RoutePolicy {
            power_k: k,
            affinity: false,
            ..Default::default()
        }
    }
}

/// What runs inside each server of the rack.
#[derive(Debug, Clone)]
pub enum ServerSpec {
    /// A full Altocumulus world (group mesh, migration, faults).
    Ac(AcConfig),
    /// A d-FCFS baseline server.
    DFcfs(DFcfsConfig),
    /// A JBSQ hardware-scheduler baseline server.
    Jbsq(JbsqVariant, JbsqConfig),
}

impl ServerSpec {
    /// Worker cores per server.
    pub fn cores(&self) -> usize {
        match self {
            ServerSpec::Ac(cfg) => cfg.total_cores(),
            ServerSpec::DFcfs(cfg) => cfg.cores,
            ServerSpec::Jbsq(_, cfg) => cfg.cores,
        }
    }

    /// Short system label for tables and topology strings.
    pub fn label(&self) -> &'static str {
        match self {
            ServerSpec::Ac(_) => "AC",
            ServerSpec::DFcfs(_) => "d-FCFS",
            ServerSpec::Jbsq(v, _) => v.name(),
        }
    }
}

/// A whole-server-death event: at `at`, every request running, queued or
/// in flight to `server` is gone; completions that finished strictly
/// before `at` survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerDeath {
    /// Index of the dying server.
    pub server: usize,
    /// Instant of death.
    pub at: SimTime,
}

/// Configuration of a rack: `servers` copies of `template` behind one ToR.
#[derive(Debug, Clone)]
pub struct RackConfig {
    /// Number of servers in the rack.
    pub servers: usize,
    /// Per-server system. Server `i` runs this spec with its seed offset
    /// by `i` (so servers are decorrelated but server 0 reproduces the
    /// template exactly) and `server_faults[i]` installed if present.
    pub template: ServerSpec,
    /// The modeled ToR switch.
    pub tor: TorConfig,
    /// Inter-server routing policy.
    pub policy: RoutePolicy,
    /// Per-server intra-server fault plans: empty for a healthy rack, or
    /// exactly one [`FaultPlan`] per server.
    pub server_faults: Vec<FaultPlan>,
    /// Whole-server deaths (at most one per server).
    pub deaths: Vec<ServerDeath>,
    /// Master seed of the rack tier; routing draws only from its
    /// [`streams::RACK`] stream.
    pub seed: u64,
}

impl RackConfig {
    /// A rack of `servers` ACint servers of `groups`×`group_size` cores
    /// each, under the default ToR and routing policy.
    pub fn ac(servers: usize, groups: usize, group_size: usize, mean_service: SimDuration) -> Self {
        let policy = RoutePolicy {
            est_service: mean_service,
            ..Default::default()
        };
        RackConfig {
            servers,
            template: ServerSpec::Ac(AcConfig::ac_int(groups, group_size, mean_service)),
            tor: TorConfig::paper(),
            policy,
            server_faults: Vec::new(),
            deaths: Vec::new(),
            seed: 0,
        }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on zero servers, zero `power_k`, a fault-plan vector whose
    /// length is neither 0 nor `servers`, a death naming a nonexistent
    /// server or repeating one, or a retry timeout shorter than the
    /// detection delay (which could retry into the undetected dead server
    /// forever).
    pub fn validate(&self) {
        assert!(self.servers >= 1, "rack needs at least one server");
        assert!(self.policy.power_k >= 1, "power-of-k needs k >= 1");
        assert!(
            self.server_faults.is_empty() || self.server_faults.len() == self.servers,
            "server_faults must be empty or one plan per server"
        );
        for plan in &self.server_faults {
            plan.validate();
        }
        let mut seen = vec![false; self.servers];
        for d in &self.deaths {
            assert!(d.server < self.servers, "death targets nonexistent server");
            assert!(!seen[d.server], "server {} dies twice", d.server);
            seen[d.server] = true;
        }
        if !self.deaths.is_empty() {
            assert!(
                self.tor.retry_timeout >= self.tor.detect_delay,
                "retry_timeout must cover detect_delay so retries terminate"
            );
        }
    }

    /// Worker cores per server.
    pub fn cores_per_server(&self) -> usize {
        self.template.cores()
    }

    /// Total simulated cores in the rack.
    pub fn total_cores(&self) -> usize {
        self.servers * self.cores_per_server()
    }

    /// Content fingerprint over the whole rack shape (servers, template,
    /// ToR, policy, fault plans, deaths, seed).
    pub fn fingerprint(&self) -> u64 {
        simcore::trace::fnv1a64(format!("{self:?}").as_bytes())
    }

    /// Canonical topology string recorded into the TRACE/1.0 run header of
    /// server `server`'s sub-run, so a replay against a drifted rack shape
    /// fails at provenance before any event comparison.
    pub fn topology(&self, server: usize) -> String {
        format!(
            "rack:{}x{}:{}/fp{:016x}/srv{}",
            self.servers,
            self.cores_per_server(),
            self.template.label(),
            self.fingerprint(),
            server
        )
    }

    /// The concrete spec server `idx` runs: the template with its seed
    /// offset by `idx` and the server's fault plan (if any) installed.
    pub fn server_spec(&self, idx: usize) -> ServerSpec {
        let mut spec = self.template.clone();
        let plan = self.server_faults.get(idx);
        match &mut spec {
            ServerSpec::Ac(cfg) => {
                cfg.seed = cfg.seed.wrapping_add(idx as u64);
                if let Some(p) = plan {
                    cfg.faults = p.clone();
                }
            }
            ServerSpec::DFcfs(cfg) => {
                cfg.seed = cfg.seed.wrapping_add(idx as u64);
                if let Some(p) = plan {
                    cfg.faults = p.clone();
                }
            }
            ServerSpec::Jbsq(_, cfg) => {
                if let Some(p) = plan {
                    cfg.faults = p.clone();
                }
            }
        }
        spec
    }

    /// Instant server `s` dies, if a death is scheduled for it.
    pub fn death_of(&self, s: usize) -> Option<SimTime> {
        self.deaths.iter().find(|d| d.server == s).map(|d| d.at)
    }
}

/// Counters of the inter-server routing pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutingStats {
    /// Connections bound to a server for the first time.
    pub new_bindings: u64,
    /// Requests that stayed on their connection's bound server.
    pub affinity_hits: u64,
    /// Connections rebound because their server's load spilled past the
    /// sampled best.
    pub affinity_rebinds: u64,
    /// Connections rebound off a detected-dead server.
    pub dead_rebinds: u64,
    /// `u64` words drawn from the [`streams::RACK`] stream (provenance;
    /// zero for a 1-server rack).
    pub rack_rng_draws: u64,
    /// Worst downlink-port queueing delay observed, in picoseconds.
    pub tor_max_queue_ps: u64,
    /// Requests sent at a dead-but-undetected server (lost in the void,
    /// retried after the client timeout).
    pub limbo_redirects: u64,
    /// Requests running or queued on a server at its death, retried.
    pub death_retries: u64,
    /// Requests dropped because every server was detected dead.
    pub lost: u64,
}

/// The finished simulation of one server.
#[derive(Debug)]
pub enum ServerOutcome {
    /// An Altocumulus server's full result.
    Ac(Box<AcResult>),
    /// A baseline (or empty) server's latency/completion result.
    Baseline(SystemResult),
}

impl ServerOutcome {
    /// The latency/completion result, uniform across systems.
    pub fn system(&self) -> &SystemResult {
        match self {
            ServerOutcome::Ac(r) => &r.system,
            ServerOutcome::Baseline(s) => s,
        }
    }

    /// Simulator events processed (0 for baselines, which do not account
    /// events in their result).
    pub fn events(&self) -> u64 {
        match self {
            ServerOutcome::Ac(r) => r.summary.events,
            ServerOutcome::Baseline(_) => 0,
        }
    }

    /// Peak event-queue population (0 for baselines).
    pub fn peak_queue(&self) -> usize {
        match self {
            ServerOutcome::Ac(r) => r.summary.peak_queue,
            ServerOutcome::Baseline(_) => 0,
        }
    }

    /// Label of the engine that drove the run.
    pub fn engine(&self) -> &'static str {
        match self {
            ServerOutcome::Ac(r) => r.engine,
            ServerOutcome::Baseline(_) => "baseline",
        }
    }
}

/// Output of the serial routing pass: per-server sub-traces plus
/// everything needed to merge and to record the run.
#[derive(Debug)]
pub struct RackRouting {
    /// Per-server workload, with request ids renumbered `0..n` locally
    /// (every server run is a fully standard single-server run).
    pub sub_traces: Vec<Trace>,
    /// Per server: local request id → index into the global trace.
    pub global_of: Vec<Vec<usize>>,
    /// Eagerly-computed simulations of servers that die mid-run (their
    /// results are needed *during* routing to decide which requests
    /// survived and which retry).
    pub dead_runs: Vec<Option<ServerOutcome>>,
    /// Routing counters.
    pub stats: RoutingStats,
}

/// Per-server accounting of a rack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerRun {
    /// `srv<i>` display label.
    pub label: String,
    /// Engine that drove this server's run.
    pub engine: &'static str,
    /// Requests routed into this server's sub-trace.
    pub assigned: usize,
    /// Completions credited to this server after death truncation.
    pub completed: usize,
    /// Simulator events processed.
    pub events: u64,
    /// Peak event-queue population.
    pub peak_queue: usize,
}

/// Result of a whole-rack run.
#[derive(Debug)]
pub struct RackResult {
    /// Merged rack-level latency/completion result. Completion ids and
    /// arrival instants are in *global trace* terms (arrival = ToR
    /// arrival, so latency includes the switch hop and any death/retry
    /// penalty); core ids are globalized as `server * cores_per_server +
    /// core`.
    pub system: SystemResult,
    /// Requests offered to the rack.
    pub offered: usize,
    /// Inter-server routing counters.
    pub routing: RoutingStats,
    /// Per-server accounting, indexed by server.
    pub per_server: Vec<ServerRun>,
    /// Total simulator events across all servers.
    pub events: u64,
    /// Largest per-server peak event-queue population.
    pub peak_queue: usize,
}

/// A rack of servers behind a modeled ToR. See [module docs](self).
#[derive(Debug, Clone)]
pub struct RackWorld {
    cfg: RackConfig,
}

/// Runs one server spec over its sub-trace. Empty sub-traces short-circuit
/// to an empty result (an idle server never enters its event loop).
fn run_server(spec: &ServerSpec, trace: &Trace) -> ServerOutcome {
    if trace.is_empty() {
        return ServerOutcome::Baseline(SystemResult::with_capacity(0));
    }
    match spec {
        ServerSpec::Ac(cfg) => {
            ServerOutcome::Ac(Box::new(Altocumulus::new(cfg.clone()).run_detailed(trace)))
        }
        ServerSpec::DFcfs(cfg) => ServerOutcome::Baseline(DFcfs::new(cfg.clone()).run(trace)),
        ServerSpec::Jbsq(v, cfg) => {
            ServerOutcome::Baseline(Jbsq::with_config(*v, cfg.clone()).run(trace))
        }
    }
}

/// Serial routing-pass state (see [`RackWorld::route`]).
struct Router<'a> {
    cfg: &'a RackConfig,
    trace: &'a Trace,
    rng: BatchedRng<StdRng>,
    /// Connection → bound server (looked up by key only, never iterated,
    /// so the map's order cannot leak into results).
    bind: HashMap<u32, usize>,
    /// Per-server downlink drain clock (ps).
    port_busy: Vec<u64>,
    /// Per-server estimated-finish heap: the ToR's outstanding counter.
    load: Vec<BinaryHeap<Reverse<u64>>>,
    /// Sub-traces under construction.
    sub: Vec<Vec<Request>>,
    /// Local id → global trace index.
    map: Vec<Vec<usize>>,
    /// Death instant per server (ps), from the configured schedule.
    death_ps: Vec<Option<u64>>,
    /// Detection instant per server (ps).
    detect_ps: Vec<Option<u64>>,
    /// Finalized sub-traces of dead servers (already simulated).
    final_trace: Vec<Option<Trace>>,
    dead_runs: Vec<Option<ServerOutcome>>,
    /// Pending retry sends: (retry instant ps, global trace index).
    retries: BinaryHeap<Reverse<(u64, usize)>>,
    stats: RoutingStats,
    cores: usize,
    mean_ps: u64,
}

impl Router<'_> {
    fn is_detected_dead(&self, s: usize, now_ps: u64) -> bool {
        self.detect_ps[s].is_some_and(|d| now_ps >= d)
    }

    /// Outstanding estimate of server `s` at `now`: heap entries whose
    /// estimated finish has passed are drained first.
    fn load_of(&mut self, s: usize, now_ps: u64) -> usize {
        while self.load[s].peek().is_some_and(|&Reverse(f)| f <= now_ps) {
            self.load[s].pop();
        }
        self.load[s].len()
    }

    /// Least-loaded of `power_k` sampled live candidates (tie → lowest
    /// index). Sampling is skipped — zero draws — when `k` covers the
    /// whole live set.
    fn sample_best(&mut self, live: &[usize], now_ps: u64) -> usize {
        let k = self.cfg.policy.power_k.min(live.len());
        let cands: Vec<usize> = if k == live.len() {
            live.to_vec()
        } else {
            let mut picked: Vec<usize> = Vec::with_capacity(k);
            while picked.len() < k {
                let i = self.rng.random_range(0..live.len());
                if !picked.contains(&i) {
                    picked.push(i);
                }
            }
            picked.into_iter().map(|i| live[i]).collect()
        };
        let mut best = cands[0];
        let mut best_load = self.load_of(best, now_ps);
        for &s in &cands[1..] {
            let l = self.load_of(s, now_ps);
            if l < best_load || (l == best_load && s < best) {
                best = s;
                best_load = l;
            }
        }
        best
    }

    /// Applies the two-level policy: affinity first, power-of-k least-load
    /// where a decision is needed.
    fn pick(&mut self, live: &[usize], conn: u32, now_ps: u64) -> usize {
        if live.len() == 1 {
            // No choice to make and no RNG to draw (this keeps a 1-server
            // rack byte-identical to the bare server).
            let s = live[0];
            if self.cfg.policy.affinity && self.bind.insert(conn, s) != Some(s) {
                self.stats.new_bindings += 1;
            } else if self.cfg.policy.affinity {
                self.stats.affinity_hits += 1;
            }
            return s;
        }
        let pol = self.cfg.policy;
        let bound = if pol.affinity {
            self.bind.get(&conn).copied()
        } else {
            None
        };
        if let Some(b) = bound {
            if self.is_detected_dead(b, now_ps) {
                let best = self.sample_best(live, now_ps);
                self.stats.dead_rebinds += 1;
                self.bind.insert(conn, best);
                return best;
            }
            let best = self.sample_best(live, now_ps);
            let lb = self.load_of(b, now_ps) as u64;
            let lbest = self.load_of(best, now_ps) as u64;
            if lb > u64::from(pol.spill_factor) * lbest + u64::from(pol.spill_slack) {
                self.stats.affinity_rebinds += 1;
                self.bind.insert(conn, best);
                return best;
            }
            self.stats.affinity_hits += 1;
            return b;
        }
        let best = self.sample_best(live, now_ps);
        if pol.affinity {
            self.stats.new_bindings += 1;
            self.bind.insert(conn, best);
        }
        best
    }

    /// Routes one send (first attempt or retry) of global request
    /// `global` at instant `send_ps`.
    fn route_one(&mut self, global: usize, send_ps: u64) {
        let live: Vec<usize> = (0..self.cfg.servers)
            .filter(|&s| !self.is_detected_dead(s, send_ps))
            .collect();
        if live.is_empty() {
            self.stats.lost += 1;
            return;
        }
        let r = self.trace.requests()[global];
        let s = self.pick(&live, r.conn.0, send_ps);

        // ToR hop: switch latency + store-and-forward on the downlink.
        let ser = self.cfg.tor.serialization(r.size_bytes).as_ps();
        let hop = self.cfg.tor.hop_latency.as_ps();
        let start = send_ps.max(self.port_busy[s]);
        let queued = start - send_ps;
        self.port_busy[s] = start + ser;
        self.stats.tor_max_queue_ps = self.stats.tor_max_queue_ps.max(queued);
        let arr = start + ser + hop;

        // The ToR's outstanding estimate grows whether or not the server
        // is secretly dead — it believes it delivered the request.
        let outstanding = self.load_of(s, send_ps) as u64;
        let est = arr + self.mean_ps + self.mean_ps * outstanding / self.cores as u64;
        self.load[s].push(Reverse(est));

        if let Some(d) = self.death_ps[s] {
            if arr >= d {
                // Swallowed by a dead (possibly not-yet-detected) server:
                // the client retries after its timeout.
                self.stats.limbo_redirects += 1;
                let retry = send_ps.max(d) + self.cfg.tor.retry_timeout.as_ps();
                self.retries.push(Reverse((retry, global)));
                return;
            }
        }
        let local = self.sub[s].len() as u64;
        self.sub[s].push(Request {
            id: RequestId(local),
            arrival: SimTime::from_ps(arr),
            service: r.service,
            kind: r.kind,
            conn: r.conn,
            size_bytes: r.size_bytes,
        });
        self.map[s].push(global);
    }

    /// Processes server `s`'s death at `d_ps`: its sub-trace is final
    /// (nothing routes into a dead server), so simulate it now, keep
    /// completions that finished strictly before the death, and schedule
    /// a client retry for everything else.
    fn process_death(&mut self, s: usize, d_ps: u64) {
        let trace = Trace::new(std::mem::take(&mut self.sub[s]));
        let outcome = run_server(&self.cfg.server_spec(s), &trace);
        let mut survived = vec![false; trace.len()];
        for c in &outcome.system().completions {
            if c.finish.as_ps() < d_ps {
                survived[c.id.0 as usize] = true;
            }
        }
        let retry = d_ps + self.cfg.tor.retry_timeout.as_ps();
        for (local, ok) in survived.iter().enumerate() {
            if !ok {
                self.stats.death_retries += 1;
                self.retries.push(Reverse((retry, self.map[s][local])));
            }
        }
        self.final_trace[s] = Some(trace);
        self.dead_runs[s] = Some(outcome);
    }

    /// Runs every death marker and pending retry scheduled at or before
    /// `t_ps`, in time order (deaths first on ties, retries tie-broken by
    /// global index via the heap key).
    fn drain_until(&mut self, t_ps: u64, deaths: &[(u64, usize)], di: &mut usize) {
        loop {
            let next_death = deaths.get(*di).filter(|&&(at, _)| at <= t_ps);
            let next_retry = self
                .retries
                .peek()
                .filter(|&&Reverse((at, _))| at <= t_ps)
                .copied();
            match (next_death, next_retry) {
                (None, None) => break,
                (Some(&(at, s)), r) if r.is_none_or(|Reverse((rt, _))| at <= rt) => {
                    self.process_death(s, at);
                    *di += 1;
                }
                (_, Some(Reverse((rt, global)))) => {
                    self.retries.pop();
                    self.route_one(global, rt);
                }
                // (Some, None) always satisfies the second arm's guard.
                (Some(_), None) => unreachable!(),
            }
        }
    }
}

impl RackWorld {
    /// Creates the rack.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` violates its invariants (see
    /// [`RackConfig::validate`]).
    pub fn new(cfg: RackConfig) -> Self {
        cfg.validate();
        RackWorld { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &RackConfig {
        &self.cfg
    }

    /// The serial inter-server routing pass: walks the global trace in
    /// arrival order, interleaving death markers and client retries in
    /// time order, and fixes each server's sub-trace. Fully serial and
    /// thread-count independent by construction.
    pub fn route(&self, trace: &Trace) -> RackRouting {
        let n = self.cfg.servers;
        let mut deaths: Vec<(u64, usize)> = self
            .cfg
            .deaths
            .iter()
            .map(|d| (d.at.as_ps(), d.server))
            .collect();
        deaths.sort_unstable();
        let mut death_ps = vec![None; n];
        let mut detect_ps = vec![None; n];
        for &(at, s) in &deaths {
            death_ps[s] = Some(at);
            detect_ps[s] = Some(at + self.cfg.tor.detect_delay.as_ps());
        }
        let mut router = Router {
            cfg: &self.cfg,
            trace,
            rng: BatchedRng::new(stream_rng(self.cfg.seed, streams::RACK)),
            bind: HashMap::new(),
            port_busy: vec![0; n],
            load: vec![BinaryHeap::new(); n],
            sub: vec![Vec::new(); n],
            map: vec![Vec::new(); n],
            death_ps,
            detect_ps,
            final_trace: (0..n).map(|_| None).collect(),
            dead_runs: (0..n).map(|_| None).collect(),
            retries: BinaryHeap::new(),
            stats: RoutingStats::default(),
            cores: self.cfg.cores_per_server().max(1),
            mean_ps: self.cfg.policy.est_service.as_ps().max(1),
        };
        let mut di = 0;
        for (i, r) in trace.iter().enumerate() {
            let t = r.arrival.as_ps();
            router.drain_until(t, &deaths, &mut di);
            router.route_one(i, t);
        }
        router.drain_until(u64::MAX, &deaths, &mut di);
        router.stats.rack_rng_draws = router.rng.draws();
        let sub_traces = (0..n)
            .map(|s| {
                router.final_trace[s]
                    .take()
                    .unwrap_or_else(|| Trace::new(std::mem::take(&mut router.sub[s])))
            })
            .collect();
        RackRouting {
            sub_traces,
            global_of: router.map,
            dead_runs: router.dead_runs,
            stats: router.stats,
        }
    }

    /// Runs the rack over `trace`: routing pass, per-server simulations
    /// (order-preserving [`simcore::parallel_map`] across `threads`
    /// workers — byte-identical for every thread count), deterministic
    /// merge. Dead servers were already simulated during routing and are
    /// not re-run.
    pub fn run(&self, trace: &Trace, threads: usize) -> RackResult {
        let mut routing = self.route(trace);
        let dead_runs = std::mem::take(&mut routing.dead_runs);
        let jobs: Vec<(usize, Option<ServerOutcome>)> = dead_runs.into_iter().enumerate().collect();
        let outcomes: Vec<ServerOutcome> = simcore::parallel_map(jobs, threads, |_, (s, pre)| {
            pre.unwrap_or_else(|| run_server(&self.cfg.server_spec(s), &routing.sub_traces[s]))
        });

        let cores = self.cfg.cores_per_server();
        // Deterministic merge: sort key is (finish, server, per-server
        // completion sequence), so equal-finish ties never depend on
        // thread scheduling and a 1-server rack preserves its server's
        // completion order exactly.
        let mut merged: Vec<(u64, usize, u64, Completion)> = Vec::with_capacity(trace.len());
        let mut credited = vec![0usize; self.cfg.servers];
        for (s, out) in outcomes.iter().enumerate() {
            let cut = self.cfg.death_of(s).map(|t| t.as_ps());
            for (ci, c) in out.system().completions.iter().enumerate() {
                if cut.is_some_and(|d| c.finish.as_ps() >= d) {
                    continue;
                }
                credited[s] += 1;
                let global = routing.global_of[s][c.id.0 as usize];
                merged.push((
                    c.finish.as_ps(),
                    s,
                    ci as u64,
                    Completion {
                        id: RequestId(global as u64),
                        arrival: trace.requests()[global].arrival,
                        finish: c.finish,
                        core: s * cores + c.core,
                        migrated: c.migrated,
                    },
                ));
            }
        }
        merged.sort_unstable_by_key(|&(f, s, ci, _)| (f, s, ci));
        let mut system = SystemResult::with_capacity(merged.len());
        for (_, _, _, c) in merged {
            system.record(c);
        }

        let per_server = outcomes
            .iter()
            .enumerate()
            .map(|(s, out)| ServerRun {
                label: format!("srv{s}"),
                engine: out.engine(),
                assigned: routing.sub_traces[s].len(),
                completed: credited[s],
                events: out.events(),
                peak_queue: out.peak_queue(),
            })
            .collect::<Vec<_>>();
        let events = per_server.iter().map(|p| p.events).sum();
        let peak_queue = per_server.iter().map(|p| p.peak_queue).max().unwrap_or(0);
        RackResult {
            system,
            offered: trace.len(),
            routing: routing.stats,
            per_server,
            events,
            peak_queue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_math() {
        let tor = TorConfig::paper(); // 100 Gbit/s
                                      // 300 B = 2400 bits at 100 Gbit/s = 24 ns.
        assert_eq!(tor.serialization(300), SimDuration::from_ns(24));
        assert_eq!(TorConfig::ideal().serialization(1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn topology_string_is_stable_per_config() {
        let cfg = RackConfig::ac(4, 2, 8, SimDuration::from_ns(850));
        assert_eq!(cfg.topology(3), cfg.clone().topology(3));
        assert!(cfg.topology(0).starts_with("rack:4x16:AC/fp"));
        assert_ne!(cfg.topology(0), cfg.topology(1));
        let mut other = cfg.clone();
        other.seed = 99;
        assert_ne!(cfg.topology(0), other.topology(0));
    }

    #[test]
    #[should_panic(expected = "retry_timeout must cover detect_delay")]
    fn short_retry_timeout_is_rejected() {
        let mut cfg = RackConfig::ac(2, 2, 4, SimDuration::from_ns(850));
        cfg.deaths = vec![ServerDeath {
            server: 1,
            at: SimTime::from_us(10),
        }];
        cfg.tor.retry_timeout = SimDuration::from_ns(1);
        cfg.tor.detect_delay = SimDuration::from_us(50);
        RackWorld::new(cfg);
    }

    #[test]
    fn server_zero_reproduces_the_template_seed() {
        let cfg = RackConfig::ac(4, 2, 8, SimDuration::from_ns(850));
        let ServerSpec::Ac(s0) = cfg.server_spec(0) else {
            panic!("template is AC")
        };
        let ServerSpec::Ac(t) = cfg.template.clone() else {
            panic!()
        };
        assert_eq!(s0.seed, t.seed);
        let ServerSpec::Ac(s1) = cfg.server_spec(1) else {
            panic!()
        };
        assert_eq!(s1.seed, t.seed.wrapping_add(1));
    }
}
