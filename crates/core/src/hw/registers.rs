//! Migration registers (MRs) and parameter registers (PRs) of the manager
//! tile (paper Fig. 6, §V-B).
//!
//! MRs stage the descriptors of an in-flight migration (the paper bounds them
//! at E[N̂q] ≈ 11 entries × 14 B = 154 B per manager). PRs hold the runtime
//! parameters the controller reads when generating messages: `Period`,
//! `Bulk`, `Concurrency`, the migration threshold `T`, and the queue-length
//! vector `q`.

use crate::hw::messages::Descriptor;
use simcore::time::SimDuration;

/// The migration-register file: a bounded staging buffer for descriptors
/// being migrated out of (or into) this manager.
#[derive(Debug, Clone)]
pub struct MigrationRegisters {
    slots: Vec<Descriptor>,
    capacity: usize,
}

impl MigrationRegisters {
    /// Creates an MR file with `capacity` descriptor slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MR capacity must be positive");
        MigrationRegisters {
            slots: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// The paper's 11-entry (154 B) MR file.
    pub fn paper_sized() -> Self {
        Self::new(11)
    }

    /// Stages descriptors for an outgoing MIGRATE. Only as many as fit are
    /// accepted; the rest are returned so the caller can leave them queued.
    pub fn stage(&mut self, descriptors: Vec<Descriptor>) -> Vec<Descriptor> {
        let free = self.capacity - self.slots.len();
        let mut rest = descriptors;
        let take = rest.len().min(free);
        let staged: Vec<Descriptor> = rest.drain(..take).collect();
        self.slots.extend(staged);
        rest
    }

    /// Invalidates `n` staged entries after an ACK (paper: the source
    /// invalidates req_num entries on ACK).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` entries are staged.
    pub fn invalidate(&mut self, n: usize) {
        assert!(n <= self.slots.len(), "invalidating more MRs than staged");
        self.slots.drain(..n);
    }

    /// Drains and returns all staged entries (used on NACK to restore them
    /// to the NetRX queue in the simulation).
    pub fn drain(&mut self) -> Vec<Descriptor> {
        std::mem::take(&mut self.slots)
    }

    /// Number of staged descriptors.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.slots.len()
    }

    /// Total capacity in descriptors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total size in bytes (14 B per slot).
    pub fn size_bytes(&self) -> u32 {
        self.capacity as u32 * crate::hw::messages::DESCRIPTOR_BYTES
    }
}

/// The parameter registers written by PREDICT_CONFIG and read by the
/// controller/migrator.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterRegisters {
    /// Interval between runtime invocations.
    pub period: SimDuration,
    /// Maximum descriptors batched per migration decision.
    pub bulk: usize,
    /// Concurrent MIGRATE flows per decision.
    pub concurrency: usize,
    /// Current migration threshold `T` (queue length).
    pub threshold: usize,
    /// Latest known queue length of every manager (`q` vector), refreshed by
    /// UPDATE messages.
    pub queue_lens: Vec<u32>,
}

impl ParameterRegisters {
    /// Creates PRs for an `n_managers` system with the given initial
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics on zero bulk/concurrency or `concurrency > bulk` (each MIGRATE
    /// must carry at least one descriptor).
    pub fn new(n_managers: usize, period: SimDuration, bulk: usize, concurrency: usize) -> Self {
        assert!(bulk > 0, "bulk must be positive");
        assert!(concurrency > 0, "concurrency must be positive");
        assert!(
            concurrency <= bulk,
            "concurrency {concurrency} exceeds bulk {bulk}: messages would be empty"
        );
        ParameterRegisters {
            period,
            bulk,
            concurrency,
            threshold: usize::MAX,
            queue_lens: vec![0; n_managers],
        }
    }

    /// The per-MIGRATE message size `S = Bulk / Concurrency` (paper §V-A),
    /// at least 1.
    pub fn message_size(&self) -> usize {
        (self.bulk / self.concurrency).max(1)
    }

    /// Handles an UPDATE from `src`.
    pub fn record_update(&mut self, src: usize, queue_len: u32) {
        if src < self.queue_lens.len() {
            self.queue_lens[src] = queue_len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;
    use workload::request::RequestId;

    fn desc(i: u64) -> Descriptor {
        Descriptor {
            id: RequestId(i),
            trace_idx: i as usize,
            first_enqueued: SimTime::ZERO,
        }
    }

    #[test]
    fn stage_respects_capacity() {
        let mut mr = MigrationRegisters::new(4);
        let rest = mr.stage((0..6).map(desc).collect());
        assert_eq!(mr.len(), 4);
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].id, RequestId(4));
    }

    #[test]
    fn invalidate_on_ack() {
        let mut mr = MigrationRegisters::new(8);
        mr.stage((0..5).map(desc).collect());
        mr.invalidate(3);
        assert_eq!(mr.len(), 2);
        assert_eq!(mr.drain().first().unwrap().id, RequestId(3));
        assert!(mr.is_empty());
    }

    #[test]
    #[should_panic(expected = "more MRs than staged")]
    fn over_invalidate_panics() {
        let mut mr = MigrationRegisters::new(4);
        mr.stage(vec![desc(0)]);
        mr.invalidate(2);
    }

    #[test]
    fn paper_sizing() {
        let mr = MigrationRegisters::paper_sized();
        assert_eq!(mr.capacity(), 11);
        assert_eq!(mr.size_bytes(), 154);
    }

    #[test]
    fn message_size_is_bulk_over_concurrency() {
        let pr = ParameterRegisters::new(4, SimDuration::from_ns(200), 16, 8);
        assert_eq!(pr.message_size(), 2);
        let pr = ParameterRegisters::new(4, SimDuration::from_ns(200), 40, 4);
        assert_eq!(pr.message_size(), 10);
        let pr = ParameterRegisters::new(4, SimDuration::from_ns(200), 3, 3);
        assert_eq!(pr.message_size(), 1);
    }

    #[test]
    fn update_recording() {
        let mut pr = ParameterRegisters::new(3, SimDuration::from_ns(200), 16, 4);
        pr.record_update(1, 42);
        assert_eq!(pr.queue_lens, vec![0, 42, 0]);
        pr.record_update(99, 7); // out of range: ignored
        assert_eq!(pr.queue_lens.len(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds bulk")]
    fn concurrency_cannot_exceed_bulk() {
        ParameterRegisters::new(4, SimDuration::from_ns(200), 4, 8);
    }
}
