//! The software–hardware interface: custom `altom_*` instructions vs. x86
//! MSRs (paper §VI, Table III).
//!
//! The runtime touches the messaging hardware a handful of times per period:
//! reading the queue-length vector and threshold (`altom_status`), pushing
//! the q broadcast (`altom_update`), rewriting parameters
//! (`altom_predict_config`), and triggering sends (`altom_send`). With the
//! custom ISA each touch is a register-level micro-op (~1 cycle); through
//! MSRs each is a `rdmsr`/`wrmsr` syscall of ~100 cycles on Sandy Bridge-EP.

use simcore::time::SimDuration;
use std::fmt;

/// How the user-level runtime reaches the messaging hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interface {
    /// Custom `altom_*` instructions issued directly from user space.
    Isa,
    /// Standard x86 model-specific registers via `rdmsr`/`wrmsr`.
    Msr,
}

impl Interface {
    /// Cost of one hardware register access through this interface at
    /// `ghz` GHz.
    pub fn per_op(self, ghz: f64) -> SimDuration {
        match self {
            Interface::Isa => SimDuration::from_cycles(2, ghz),
            Interface::Msr => SimDuration::from_cycles(100, ghz),
        }
    }

    /// Cost of one runtime invocation (Algorithm 1) through this interface:
    /// the paper's worst-case 18 ns of prediction arithmetic (2 muls, 2
    /// adds, 3 compares at 2 GHz) plus `ops` hardware accesses.
    pub fn runtime_cost(self, ops: u32, ghz: f64) -> SimDuration {
        // 2 multiplications (7 cycles each), 2 additions (1 each), 3
        // comparisons (2 each): 22 cycles of arithmetic; with the register
        // accesses below this lands at the paper's ~18 ns worst case on ISA.
        let predict = SimDuration::from_cycles(22, ghz);
        predict + self.per_op(ghz) * ops as u64
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Interface::Isa => "ISA",
            Interface::Msr => "MSR",
        }
    }
}

impl fmt::Display for Interface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The custom instruction set of Table III, as data (useful for docs/tests
/// and for the experiment binaries that print the ISA summary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    /// Mnemonic with operands.
    pub mnemonic: &'static str,
    /// Paper description.
    pub description: &'static str,
}

/// Table III: the four `altom_*` instructions.
pub fn instruction_set() -> [Instruction; 4] {
    [
        Instruction {
            mnemonic: "altom_send r1, r2, r3",
            description: "send local MR offset (r1) content to MR entry ID (r2) with a batch size (r3)",
        },
        Instruction {
            mnemonic: "altom_status r3, r4, r5",
            description: "returns local header, tail, and threshold pointers",
        },
        Instruction {
            mnemonic: "altom_update r6, q<n,1>",
            description: "update local rx queue depth (r6) to all managers (vector reg of length n, stride 1)",
        },
        Instruction {
            mnemonic: "altom_predict_config r7",
            description: "update migration related registers",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_much_cheaper_than_msr() {
        let isa = Interface::Isa.per_op(2.0);
        let msr = Interface::Msr.per_op(2.0);
        assert_eq!(msr, SimDuration::from_ns(50)); // 100 cycles @ 2GHz
        assert_eq!(isa, SimDuration::from_ns(1));
        assert!(msr.as_ns_f64() / isa.as_ns_f64() >= 50.0);
    }

    #[test]
    fn runtime_cost_isa_near_paper_18ns() {
        // Paper §VIII-E: worst-case prediction latency ~18ns at 2 GHz, plus
        // a few register ops.
        let c = Interface::Isa.runtime_cost(4, 2.0);
        assert!(
            (15.0..=25.0).contains(&c.as_ns_f64()),
            "runtime cost {c} should be ~18ns"
        );
    }

    #[test]
    fn runtime_cost_msr_hundreds_of_ns() {
        let c = Interface::Msr.runtime_cost(6, 2.0);
        assert!(c.as_ns_f64() > 250.0, "MSR runtime cost {c}");
    }

    #[test]
    fn four_instructions() {
        let isa = instruction_set();
        assert_eq!(isa.len(), 4);
        assert!(isa.iter().any(|i| i.mnemonic.starts_with("altom_send")));
        assert!(isa.iter().all(|i| !i.description.is_empty()));
    }

    #[test]
    fn labels() {
        assert_eq!(Interface::Isa.to_string(), "ISA");
        assert_eq!(Interface::Msr.to_string(), "MSR");
    }
}
