//! The four Altocumulus message types (paper Table II, Fig. 8).
//!
//! Only descriptors travel: each queued RPC is represented by a 14 B
//! descriptor (8 B pointer + 48-bit address, §V-B) while the payload stays in
//! the LLC — the key traffic saving over ZygOS-style whole-message moves.

use simcore::time::SimTime;
use workload::request::RequestId;

/// Bytes per migrated descriptor (8 B message pointer + 6 B address).
pub const DESCRIPTOR_BYTES: u32 = 14;

/// Bytes of MIGRATE/UPDATE header (req_num, src_mid, dst_mid, tail pointer).
pub const HEADER_BYTES: u32 = 16;

/// A 14-byte descriptor of one queued RPC request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// The request it points at.
    pub id: RequestId,
    /// Index into the driving trace (simulation bookkeeping).
    pub trace_idx: usize,
    /// When the request first arrived at a NetRX queue.
    pub first_enqueued: SimTime,
}

/// One Altocumulus protocol message between manager tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Proactively move descriptors from `src` to `dst` (Table II: MIGRATE).
    Migrate {
        /// Sending manager.
        src: usize,
        /// Receiving manager.
        dst: usize,
        /// The batched descriptors (req_num = len()).
        descriptors: Vec<Descriptor>,
        /// Exchange token correlating this MIGRATE with its ACK/NACK (and
        /// with the sender's staged-migration timeout under fault
        /// injection). `0` = untracked; otherwise `pending_id + 1`. Rides in
        /// the existing header's req_num field, so it adds no wire bytes.
        token: u64,
    },
    /// Broadcast of the local queue depth (Table II: UPDATE).
    Update {
        /// Originating manager.
        src: usize,
        /// Its NetRX queue depth at send time.
        queue_len: u32,
    },
    /// Acknowledge a completed MIGRATE: the source may invalidate its MR
    /// entries.
    Ack {
        /// Manager acknowledging (the migration destination).
        src: usize,
        /// Number of descriptors accepted.
        accepted: usize,
        /// Token echoed from the MIGRATE being acknowledged (`0` =
        /// untracked).
        token: u64,
    },
    /// Reject a MIGRATE (full receive FIFO / MRs); descriptors ride back so
    /// the simulated source can restore them (in hardware they were never
    /// invalidated from the source MRs).
    Nack {
        /// Manager rejecting.
        src: usize,
        /// The rejected descriptors.
        descriptors: Vec<Descriptor>,
        /// Token echoed from the MIGRATE being rejected (`0` = untracked).
        token: u64,
    },
}

impl Message {
    /// Wire size in bytes (drives NoC serialization).
    pub fn wire_bytes(&self) -> u32 {
        match self {
            Message::Migrate { descriptors, .. } => {
                HEADER_BYTES + DESCRIPTOR_BYTES * descriptors.len() as u32
            }
            Message::Update { .. } => HEADER_BYTES,
            Message::Ack { .. } => HEADER_BYTES,
            // The NACK itself is header-only on the wire; descriptors stay in
            // the source MR. We carry them in the enum for bookkeeping only.
            Message::Nack { .. } => HEADER_BYTES,
        }
    }

    /// Short label for logging/stats.
    pub fn label(&self) -> &'static str {
        match self {
            Message::Migrate { .. } => "MIGRATE",
            Message::Update { .. } => "UPDATE",
            Message::Ack { .. } => "ACK",
            Message::Nack { .. } => "NACK",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(i: u64) -> Descriptor {
        Descriptor {
            id: RequestId(i),
            trace_idx: i as usize,
            first_enqueued: SimTime::ZERO,
        }
    }

    #[test]
    fn descriptor_is_14_bytes_on_wire() {
        let m = Message::Migrate {
            src: 0,
            dst: 1,
            descriptors: vec![desc(1)],
            token: 0,
        };
        assert_eq!(m.wire_bytes(), HEADER_BYTES + 14);
    }

    #[test]
    fn bulk_migrate_scales_linearly() {
        let m = Message::Migrate {
            src: 0,
            dst: 1,
            descriptors: (0..40).map(desc).collect(),
            token: 0,
        };
        assert_eq!(m.wire_bytes(), 16 + 14 * 40);
    }

    #[test]
    fn control_messages_are_header_only() {
        assert_eq!(
            Message::Update {
                src: 0,
                queue_len: 9
            }
            .wire_bytes(),
            16
        );
        assert_eq!(
            Message::Ack {
                src: 0,
                accepted: 8,
                token: 0
            }
            .wire_bytes(),
            16
        );
        assert_eq!(
            Message::Nack {
                src: 0,
                descriptors: vec![desc(0); 8],
                token: 0
            }
            .wire_bytes(),
            16
        );
    }

    #[test]
    fn labels() {
        assert_eq!(
            Message::Update {
                src: 0,
                queue_len: 0
            }
            .label(),
            "UPDATE"
        );
        assert_eq!(
            Message::Migrate {
                src: 0,
                dst: 1,
                descriptors: vec![],
                token: 0
            }
            .label(),
            "MIGRATE"
        );
    }

    #[test]
    fn migrate_much_smaller_than_payload_moves() {
        // ZygOS moves whole messages (up to ~2KB); we move 14B descriptors.
        let m = Message::Migrate {
            src: 0,
            dst: 1,
            descriptors: vec![desc(0)],
            token: 0,
        };
        assert!(m.wire_bytes() < 2048 / 10);
    }
}
