//! The hardware messaging mechanism of the manager tile (paper §V, Fig. 6).
//!
//! Modeled components: bounded send/receive [`fifo`]s, the migration and
//! parameter [`registers`], the four protocol [`messages`], and the
//! software–hardware [`interface`] (custom `altom_*` ISA vs. x86 MSRs).

pub mod fifo;
pub mod interface;
pub mod messages;
pub mod registers;

pub use fifo::BoundedFifo;
pub use interface::{instruction_set, Instruction, Interface};
pub use messages::{Descriptor, Message, DESCRIPTOR_BYTES, HEADER_BYTES};
pub use registers::{MigrationRegisters, ParameterRegisters};
