//! The hardware messaging mechanism of the manager tile (paper §V, Fig. 6).
//!
//! Modeled components: bounded send/receive [`fifo`]s, the migration and
//! parameter [`registers`], the four protocol [`messages`], and the
//! software–hardware [`interface`] (custom `altom_*` ISA vs. x86 MSRs).

pub mod fifo;
pub mod interface;
pub mod messages;
pub mod registers;

pub use fifo::BoundedFifo;
pub use interface::{instruction_set, Instruction, Interface};
pub use messages::{Descriptor, Message, DESCRIPTOR_BYTES, HEADER_BYTES};
pub use registers::{MigrationRegisters, ParameterRegisters};

/// Uniform occupancy view over the bounded hardware buffers, so telemetry
/// probes can sample any of them (send/receive FIFOs, migration registers)
/// without caring which structure backs the slot count.
pub trait Occupancy {
    /// Entries currently held.
    fn occupancy(&self) -> usize;
    /// Maximum entries the structure can hold.
    fn slots(&self) -> usize;
    /// `occupancy / slots` in `[0, 1]`; the value telemetry probes export.
    fn fill_fraction(&self) -> f64 {
        if self.slots() == 0 {
            0.0
        } else {
            self.occupancy() as f64 / self.slots() as f64
        }
    }
}

impl<T> Occupancy for BoundedFifo<T> {
    fn occupancy(&self) -> usize {
        self.len()
    }
    fn slots(&self) -> usize {
        self.capacity()
    }
}

impl Occupancy for MigrationRegisters {
    fn occupancy(&self) -> usize {
        self.len()
    }
    fn slots(&self) -> usize {
        self.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_reports_fill_fraction() {
        let mut fifo: BoundedFifo<u32> = BoundedFifo::new(4);
        assert_eq!(fifo.fill_fraction(), 0.0);
        fifo.push(1).unwrap();
        fifo.push(2).unwrap();
        assert_eq!(fifo.occupancy(), 2);
        assert_eq!(fifo.slots(), 4);
        assert_eq!(fifo.fill_fraction(), 0.5);

        let mrs = MigrationRegisters::paper_sized();
        assert_eq!(mrs.occupancy(), 0);
        assert!(mrs.slots() > 0);
        assert_eq!(mrs.fill_fraction(), 0.0);
    }
}
