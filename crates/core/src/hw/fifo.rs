//! Bounded send/receive FIFOs of the manager-tile messaging hardware.
//!
//! The paper sizes each FIFO at 16 entries of 14 B descriptors (224 B per
//! FIFO, §V-B); a full receive FIFO is what triggers a NACK.

use std::collections::VecDeque;

/// A bounded FIFO that rejects pushes when full (hardware semantics — the
/// controller must check before enqueuing, and a full receive FIFO NACKs the
/// incoming MIGRATE).
///
/// # Examples
///
/// ```
/// use altocumulus::hw::fifo::BoundedFifo;
///
/// let mut f = BoundedFifo::new(2);
/// assert!(f.push(1).is_ok());
/// assert!(f.push(2).is_ok());
/// assert_eq!(f.push(3), Err(3)); // full: value handed back
/// assert_eq!(f.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    stalled: bool,
}

impl<T> BoundedFifo<T> {
    /// Creates a FIFO holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        BoundedFifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            stalled: false,
        }
    }

    /// The paper's 16-entry send/receive FIFO.
    pub fn paper_sized() -> Self {
        Self::new(16)
    }

    /// Attempts to enqueue; on a full FIFO the value is returned to the
    /// caller (who will NACK or drop).
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the FIFO is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.stalled || self.items.len() >= self.capacity {
            return Err(value);
        }
        self.items.push_back(value);
        Ok(())
    }

    /// Stalls the FIFO: until [`unstall`](Self::unstall), every push is
    /// rejected and the FIFO reports full regardless of occupancy. Models a
    /// fault-injected controller wedge (the NACK-storm scenario); draining
    /// via [`pop`](Self::pop) still works.
    pub fn stall(&mut self) {
        self.stalled = true;
    }

    /// Clears a [`stall`](Self::stall); occupancy-based semantics resume.
    pub fn unstall(&mut self) {
        self.stalled = false;
    }

    /// True while the FIFO is fault-stalled.
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Dequeues the head, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True iff at capacity (or fault-stalled — a stalled FIFO presents as
    /// full to the controller, which is what triggers the NACK).
    pub fn is_full(&self) -> bool {
        self.stalled || self.items.len() >= self.capacity
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut f = BoundedFifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        let out: Vec<i32> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rejects_when_full_and_recovers() {
        let mut f = BoundedFifo::new(1);
        f.push("a").unwrap();
        assert!(f.is_full());
        assert_eq!(f.push("b"), Err("b"));
        assert_eq!(f.pop(), Some("a"));
        assert!(f.push("b").is_ok());
    }

    #[test]
    fn paper_sized_is_16() {
        let f = BoundedFifo::<u8>::paper_sized();
        assert_eq!(f.capacity(), 16);
        assert_eq!(f.free(), 16);
    }

    #[test]
    fn free_tracks_occupancy() {
        let mut f = BoundedFifo::new(3);
        f.push(()).unwrap();
        assert_eq!(f.free(), 2);
        assert_eq!(f.len(), 1);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        BoundedFifo::<u8>::new(0);
    }

    #[test]
    fn stall_rejects_pushes_and_presents_full() {
        let mut f = BoundedFifo::new(4);
        f.push(1).unwrap();
        f.stall();
        assert!(f.is_stalled());
        assert!(f.is_full(), "a stalled FIFO presents as full");
        assert_eq!(f.push(2), Err(2));
        // Draining still works while stalled.
        assert_eq!(f.pop(), Some(1));
        f.unstall();
        assert!(!f.is_full());
        assert!(f.push(2).is_ok());
    }
}
