//! Migration-effectiveness and prediction-accuracy accounting (paper
//! §VIII-D, Fig. 12; §IX-C, Fig. 13).
//!
//! The paper classifies each migrated request by comparing its fate with
//! and without migration. We reproduce that by replaying the *identical*
//! trace through a migration-disabled twin (the counterfactual baseline)
//! and diffing per-request latencies:
//!
//! - **Eff.** — violated in the baseline, saved by migration.
//! - **InEff. w/o harm** — violated in neither (moved needlessly, but to a
//!   shorter queue).
//! - **InEff. w/o benefit** — violated in both (moved too late/too little).
//! - **False** — harmful mis-prediction: satisfied SLO in the baseline,
//!   violates after migration.

use schedulers::common::SystemResult;
use simcore::time::SimDuration;
use std::collections::HashSet;

/// A fixed-capacity bitset over trace indices.
///
/// The runtime tags every request it predicts will violate its SLO. On the
/// hot path that tag used to be a `HashSet<usize>` insert — an allocating,
/// hashing operation per staged descriptor. Trace indices are dense in
/// `0..trace_len`, so a word-packed bitset sized once up front gives O(1)
/// insert/contains with zero steady-state allocations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredictedSet {
    words: Vec<u64>,
    len: usize,
}

impl PredictedSet {
    /// Creates a set able to hold indices `0..capacity` without allocating
    /// again.
    pub fn with_capacity(capacity: usize) -> Self {
        PredictedSet {
            words: vec![0u64; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Inserts `idx`, growing if it exceeds the initial capacity (growth only
    /// happens off the pinned-budget path). Returns `true` if newly inserted.
    pub fn insert(&mut self, idx: usize) -> bool {
        let (word, bit) = (idx / 64, idx % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        if fresh {
            self.words[word] |= mask;
            self.len += 1;
        }
        fresh
    }

    /// Whether `idx` has been inserted.
    pub fn contains(&self, idx: usize) -> bool {
        let (word, bit) = (idx / 64, idx % 64);
        self.words.get(word).is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Number of distinct indices inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no index has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl FromIterator<usize> for PredictedSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = PredictedSet::default();
        for idx in iter {
            s.insert(idx);
        }
        s
    }
}

/// Per-category counts of migrated requests (Fig. 12(b)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectivenessBreakdown {
    /// Migrations that saved an SLO violation.
    pub effective: u64,
    /// Migrations of requests that were never in danger.
    pub ineffective_no_harm: u64,
    /// Migrations that failed to save a doomed request.
    pub ineffective_no_benefit: u64,
    /// Harmful mis-predictions that *created* a violation.
    pub false_harmful: u64,
}

impl EffectivenessBreakdown {
    /// Total migrated requests accounted.
    pub fn total(&self) -> u64 {
        self.effective + self.ineffective_no_harm + self.ineffective_no_benefit + self.false_harmful
    }

    /// Fraction of migrations that were effective (the paper reports 42%
    /// at the best operating point).
    pub fn effective_ratio(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.effective as f64 / t as f64
        }
    }
}

/// Classifies every migrated request by diffing the Altocumulus run against
/// its migration-disabled counterfactual on the same trace.
///
/// `migrated` holds the trace indices of requests that actually moved.
///
/// # Panics
///
/// Panics if the two results cover different trace lengths.
pub fn classify_effectiveness(
    baseline: &SystemResult,
    with_migration: &SystemResult,
    migrated: &HashSet<usize>,
    trace_len: usize,
    slo: SimDuration,
) -> EffectivenessBreakdown {
    let base = baseline.latencies_by_request(trace_len);
    let with = with_migration.latencies_by_request(trace_len);
    let mut out = EffectivenessBreakdown::default();
    for &idx in migrated {
        let (Some(b), Some(w)) = (
            base.get(idx).copied().flatten(),
            with.get(idx).copied().flatten(),
        ) else {
            continue;
        };
        let b_viol = b > slo;
        let w_viol = w > slo;
        match (b_viol, w_viol) {
            (true, false) => out.effective += 1,
            (false, false) => out.ineffective_no_harm += 1,
            (true, true) => out.ineffective_no_benefit += 1,
            (false, true) => out.false_harmful += 1,
        }
    }
    out
}

/// Prediction accuracy (paper §IV): the ratio of correctly predicted SLO
/// violations to the total number of actual violations. Ground truth is the
/// counterfactual baseline run; a prediction is "correct" when the predicted
/// request would indeed have violated without intervention.
pub fn prediction_accuracy(
    baseline: &SystemResult,
    predicted: &PredictedSet,
    trace_len: usize,
    slo: SimDuration,
) -> f64 {
    let base = baseline.latencies_by_request(trace_len);
    let mut actual = 0u64;
    let mut caught = 0u64;
    for (idx, l) in base.iter().enumerate() {
        let Some(l) = l else { continue };
        if *l > slo {
            actual += 1;
            if predicted.contains(idx) {
                caught += 1;
            }
        }
    }
    if actual == 0 {
        1.0
    } else {
        caught as f64 / actual as f64
    }
}

/// Prediction accuracy measured on a *predict-only* run (the paper's §IV
/// metric): the run itself never migrates, so its violations are the ground
/// truth and its `predicted` set is the model's output on the unperturbed
/// trajectory.
pub fn prediction_accuracy_self(
    result: &SystemResult,
    predicted: &PredictedSet,
    trace_len: usize,
    slo: SimDuration,
) -> f64 {
    prediction_accuracy(result, predicted, trace_len, slo)
}

/// Requests whose SLO fate *changed* between two runs — handy for debugging
/// scheduler changes and for the Fig. 12(c) false-migration count.
pub fn fate_changes(
    baseline: &SystemResult,
    other: &SystemResult,
    trace_len: usize,
    slo: SimDuration,
) -> (u64, u64) {
    let base = baseline.latencies_by_request(trace_len);
    let with = other.latencies_by_request(trace_len);
    let mut saved = 0;
    let mut harmed = 0;
    for idx in 0..trace_len {
        let (Some(b), Some(w)) = (
            base.get(idx).copied().flatten(),
            with.get(idx).copied().flatten(),
        ) else {
            continue;
        };
        match (b > slo, w > slo) {
            (true, false) => saved += 1,
            (false, true) => harmed += 1,
            _ => {}
        }
    }
    (saved, harmed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimTime;
    use workload::request::{Completion, RequestId};

    fn result_with(latencies_ns: &[u64]) -> SystemResult {
        let mut r = SystemResult::with_capacity(latencies_ns.len());
        for (i, &l) in latencies_ns.iter().enumerate() {
            r.record(Completion {
                id: RequestId(i as u64),
                arrival: SimTime::ZERO,
                finish: SimTime::from_ns(l),
                core: 0,
                migrated: false,
            });
        }
        r
    }

    #[test]
    fn four_way_classification() {
        let slo = SimDuration::from_ns(100);
        // idx: 0 eff (150->50), 1 no-harm (50->40), 2 no-benefit (150->140),
        // 3 false (50->150), 4 not migrated (ignored).
        let base = result_with(&[150, 50, 150, 50, 999]);
        let with = result_with(&[50, 40, 140, 150, 999]);
        let migrated: HashSet<usize> = [0, 1, 2, 3].into_iter().collect();
        let b = classify_effectiveness(&base, &with, &migrated, 5, slo);
        assert_eq!(b.effective, 1);
        assert_eq!(b.ineffective_no_harm, 1);
        assert_eq!(b.ineffective_no_benefit, 1);
        assert_eq!(b.false_harmful, 1);
        assert_eq!(b.total(), 4);
        assert!((b.effective_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn accuracy_is_recall_of_violations() {
        let slo = SimDuration::from_ns(100);
        // Violations in baseline: idx 0, 2, 4. Predicted: 0, 2, 3.
        let base = result_with(&[150, 50, 150, 50, 150]);
        let predicted: PredictedSet = [0, 2, 3].into_iter().collect();
        let acc = prediction_accuracy(&base, &predicted, 5, slo);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_without_violations_is_one() {
        let base = result_with(&[10, 20, 30]);
        let acc = prediction_accuracy(&base, &PredictedSet::default(), 3, SimDuration::from_us(1));
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn fate_changes_counts_both_directions() {
        let slo = SimDuration::from_ns(100);
        let base = result_with(&[150, 150, 50, 50]);
        let with = result_with(&[50, 150, 150, 50]);
        let (saved, harmed) = fate_changes(&base, &with, 4, slo);
        assert_eq!(saved, 1);
        assert_eq!(harmed, 1);
    }

    #[test]
    fn predicted_set_semantics() {
        let mut s = PredictedSet::with_capacity(100);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(!s.insert(63), "duplicate insert must report false");
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(63) && s.contains(64));
        assert!(!s.contains(1) && !s.contains(1000));
        // Growth past the initial capacity still works (off the hot path).
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn empty_breakdown() {
        let b = EffectivenessBreakdown::default();
        assert_eq!(b.total(), 0);
        assert_eq!(b.effective_ratio(), 0.0);
    }
}
