//! Configuration of an Altocumulus deployment.

use crate::hw::interface::Interface;
use crate::runtime::predictor::ThresholdPolicy;
use queueing::threshold::ThresholdModel;
use rpcstack::nic::Steering;
use rpcstack::stack::StackModel;
use simcore::faults::FaultPlan;
use simcore::time::SimDuration;
pub use simcore::timeline::WorkerPlane;

/// How the NIC attaches to the CPU (paper §VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// Hardware-terminated integrated NIC (ACint): NIC→manager transfers at
    /// cache-coherence speed, intra-group dispatch in hardware.
    Integrated,
    /// Commodity PCIe NIC with RSS (ACrss): NIC→manager over PCIe, manager
    /// software dispatches at ~70 cycles/message.
    RssPcie,
}

impl Attachment {
    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Attachment::Integrated => "AC_int",
            Attachment::RssPcie => "AC_rss",
        }
    }
}

/// Which imbalance-pattern roles a manager acts on (ablation knob; the
/// paper's design uses all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternPolicy {
    /// Hill + Valley + Pairing (the paper's classifier).
    All,
    /// Only the threshold trigger — no pattern-driven migrations.
    ThresholdOnly,
}

/// How the simulator executes the manager control plane (UPDATE delivery
/// and idle periods). Both modes model *identical* physics — same message
/// latencies, same per-period estimator updates — and produce bit-identical
/// results; they differ only in how many simulator events they cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlPlane {
    /// Manager-plane event elision (the default): UPDATEs are delivered
    /// through per-group mailboxes drained lazily at the destination's next
    /// tick, and fully quiescent groups fast-forward across idle periods
    /// instead of re-arming a timer event every `period`.
    #[default]
    Elided,
    /// The legacy event-based path: one `Msg` event per UPDATE per peer and
    /// one `Tick` event per group per period, unconditionally. Kept as the
    /// differential-testing oracle (like `BinaryHeapQueue` for the calendar
    /// queue).
    EventDriven,
}

/// Graceful-degradation policy: how the system reacts to the faults a
/// [`FaultPlan`] injects. The default turns every optional reaction off so
/// that healthy runs keep today's byte-identical behavior; fault studies
/// opt into [`Resilience::hardened`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resilience {
    /// After a NACK (or a migrate timeout), refuse to plan migrations to
    /// that destination for this long. `None` = no backoff: NACKed
    /// descriptors simply requeue, exactly the pre-fault-layer behavior.
    pub nack_backoff: Option<SimDuration>,
    /// Declare a staged MIGRATE lost if no ACK/NACK arrives within this
    /// window, then resteer its descriptors back into the local NetRX.
    /// `None` disables the timer (but manager failures in the plan imply a
    /// 50 µs default so migrations to dead managers cannot hang forever).
    pub migrate_timeout: Option<SimDuration>,
    /// Delay between a manager's death and a neighbor group assuming its
    /// NetRX queue (failure-detection plus handoff cost).
    pub takeover_delay: SimDuration,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience {
            nack_backoff: None,
            migrate_timeout: None,
            takeover_delay: SimDuration::from_us(1),
        }
    }
}

impl Resilience {
    /// The fault-study policy: 2 µs NACK backoff, 50 µs migrate timeout,
    /// 1 µs takeover delay.
    pub fn hardened() -> Self {
        Resilience {
            nack_backoff: Some(SimDuration::from_us(2)),
            migrate_timeout: Some(SimDuration::from_us(50)),
            takeover_delay: SimDuration::from_us(1),
        }
    }
}

/// Full configuration of an Altocumulus system.
#[derive(Debug, Clone)]
pub struct AcConfig {
    /// Number of groups (= manager cores = NetRX queues).
    pub groups: usize,
    /// Cores per group including the manager (paper default 16: one manager
    /// + 15 workers).
    pub group_size: usize,
    /// Migration/runtime period `P` (paper sweeps 10–1000 ns; default 200).
    pub period: SimDuration,
    /// Max descriptors batched per migration decision (paper sweeps 8–40;
    /// default 16).
    pub bulk: usize,
    /// Concurrent MIGRATE flows per decision (paper: n/4, n/2 or n; default
    /// 8 for 16 managers).
    pub concurrency: usize,
    /// Threshold selection policy.
    pub threshold: ThresholdPolicy,
    /// Software–hardware interface (custom ISA vs MSR).
    pub interface: Interface,
    /// NIC attachment.
    pub attachment: Attachment,
    /// RPC stack executed per request.
    pub stack: StackModel,
    /// Per-worker queue bound including the in-service slot. 1 = strict
    /// local c-FCFS (queueing stays at the manager, where it can migrate);
    /// 2 = JBSQ(2)-style prefetch that hides dispatch latency.
    pub local_bound: usize,
    /// Descriptors moved per serialized manager dispatch operation (ACrss
    /// only; one 70-cycle op can carry a cache line of descriptors).
    pub dispatch_batch: usize,
    /// Offline-profiled mean service time (µ input of Fig. 5).
    pub mean_service: SimDuration,
    /// Master toggle for the proactive runtime (off = plain grouped d-FCFS,
    /// the "before the runtime has started" baseline of Fig. 14).
    pub migration_enabled: bool,
    /// The Algorithm-1 line-8 guard that forbids migrations into
    /// equally-long queues (ablation: disabling it allows harmful moves).
    pub guard_enabled: bool,
    /// Run the predictor every period but *do not* migrate: requests beyond
    /// the threshold are only recorded in `MigrationStats::predicted`.
    /// Used to measure prediction accuracy on the unperturbed trajectory
    /// (the paper's accuracy metric, §IV).
    pub predict_only: bool,
    /// Which pattern roles trigger migrations (ablation).
    pub patterns: PatternPolicy,
    /// Optional multi-application isolation: groups partitioned among
    /// tenants, steering and migration confined within each tenant's
    /// partition (the paper's future-work study; see [`crate::tenancy`]).
    pub tenancy: Option<crate::tenancy::Tenancy>,
    /// NIC steering across NetRX queues.
    pub steering: Steering,
    /// Simulator execution strategy for the manager control plane.
    pub control_plane: ControlPlane,
    /// Simulator execution strategy for the worker plane (request
    /// lifecycle events). Like [`ControlPlane`], both modes are
    /// byte-identical in every observable; `Elided` batches
    /// delivery/completion events on analytic timelines. Runs with a
    /// non-empty fault plan and the parallel engine downgrade to
    /// `EventDriven` internally regardless of this setting.
    pub worker_plane: WorkerPlane,
    /// Injected faults. The default (empty) plan reproduces healthy runs
    /// byte-for-byte; see [`simcore::faults`].
    pub faults: FaultPlan,
    /// Degradation policy applied when faults strike.
    pub resilience: Resilience,
    /// RNG seed.
    pub seed: u64,
}

impl AcConfig {
    /// ACint defaults: `groups` groups of `group_size` cores on an
    /// integrated NIC, paper-default migration parameters
    /// (P=200 ns, Bulk=16, Concurrency=min(8, groups)).
    pub fn ac_int(groups: usize, group_size: usize, mean_service: SimDuration) -> Self {
        AcConfig {
            groups,
            group_size,
            period: SimDuration::from_ns(200),
            bulk: 16,
            concurrency: 8.min(groups.max(1)),
            threshold: ThresholdPolicy::Model(ThresholdModel::paper_fixed()),
            interface: Interface::Isa,
            attachment: Attachment::Integrated,
            stack: StackModel::nano_rpc(),
            local_bound: 1,
            dispatch_batch: 4,
            mean_service,
            migration_enabled: true,
            guard_enabled: true,
            predict_only: false,
            patterns: PatternPolicy::All,
            tenancy: None,
            steering: Steering::rss(),
            control_plane: ControlPlane::Elided,
            worker_plane: WorkerPlane::Elided,
            faults: FaultPlan::default(),
            resilience: Resilience::default(),
            seed: 0,
        }
    }

    /// ACrss defaults: commodity PCIe RSS NIC, eRPC-class stack, manager
    /// software dispatch.
    pub fn ac_rss(groups: usize, group_size: usize, mean_service: SimDuration) -> Self {
        AcConfig {
            attachment: Attachment::RssPcie,
            stack: StackModel::erpc(),
            ..Self::ac_int(groups, group_size, mean_service)
        }
    }

    /// Number of worker cores per group.
    pub fn workers_per_group(&self) -> usize {
        self.group_size - 1
    }

    /// Content fingerprint of the whole configuration (FNV-1a 64 over the
    /// canonical `Debug` rendering, which covers every field including the
    /// fault plan and seed). Recorded into `TRACE/1.0` artifacts so a
    /// replay against a drifted configuration fails at provenance — before
    /// any event comparison could mislead.
    pub fn fingerprint(&self) -> u64 {
        simcore::trace::fnv1a64(format!("{self:?}").as_bytes())
    }

    /// Total cores (managers + workers).
    pub fn total_cores(&self) -> usize {
        self.groups * self.group_size
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on a structurally impossible configuration.
    pub fn validate(&self) {
        assert!(self.groups >= 1, "need at least one group");
        assert!(
            self.group_size >= 2,
            "a group is one manager plus >=1 worker"
        );
        assert!(self.bulk >= 1 && self.concurrency >= 1);
        assert!(
            self.concurrency <= self.bulk,
            "concurrency > bulk would send empty MIGRATE messages"
        );
        assert!(self.local_bound >= 1, "workers need at least one slot");
        assert!(self.dispatch_batch >= 1);
        assert!(!self.period.is_zero(), "period must be positive");
        assert!(
            !self.mean_service.is_zero(),
            "mean service must be positive"
        );
        if let Some(t) = &self.tenancy {
            assert_eq!(
                t.groups(),
                self.groups,
                "tenancy must assign every group exactly once"
            );
        }
        self.faults.validate();
        for f in &self.faults.worker_failures {
            assert!(
                f.core < self.total_cores(),
                "worker failure targets core {} of {}",
                f.core,
                self.total_cores()
            );
            assert!(
                f.core % self.group_size != 0,
                "core {} is a manager tile; use manager_failures",
                f.core
            );
        }
        for f in &self.faults.manager_failures {
            assert!(
                f.group < self.groups,
                "manager failure targets group {} of {}",
                f.group,
                self.groups
            );
            assert!(
                self.groups > 1,
                "manager failure needs a neighbor group for takeover"
            );
        }
        for s in &self.faults.fifo_stalls {
            assert!(
                s.group < self.groups,
                "fifo stall targets group {} of {}",
                s.group,
                self.groups
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        AcConfig::ac_int(16, 16, SimDuration::from_ns(850)).validate();
        AcConfig::ac_rss(4, 16, SimDuration::from_ns(850)).validate();
    }

    #[test]
    fn derived_counts() {
        let c = AcConfig::ac_int(16, 16, SimDuration::from_ns(850));
        assert_eq!(c.workers_per_group(), 15);
        assert_eq!(c.total_cores(), 256);
        assert_eq!(c.attachment.label(), "AC_int");
    }

    #[test]
    fn rss_preset_differs() {
        let c = AcConfig::ac_rss(4, 16, SimDuration::from_ns(850));
        assert_eq!(c.attachment, Attachment::RssPcie);
        assert_eq!(c.attachment.label(), "AC_rss");
    }

    #[test]
    #[should_panic(expected = "one manager plus")]
    fn rejects_tiny_groups() {
        AcConfig::ac_int(4, 1, SimDuration::from_ns(850)).validate();
    }

    #[test]
    #[should_panic(expected = "empty MIGRATE")]
    fn rejects_concurrency_over_bulk() {
        let mut c = AcConfig::ac_int(16, 16, SimDuration::from_ns(850));
        c.concurrency = 32;
        c.validate();
    }
}
