//! Altocumulus-specific telemetry vocabulary on top of
//! [`simcore::telemetry`].
//!
//! The engine-side layer is domain-agnostic: a span point is `(track,
//! kind, loc, time)`. This module pins down what those mean for an
//! Altocumulus run — tracks are trace request indices, [`span`] kinds are
//! the request-lifecycle transitions the simulation records, and
//! [`segment_name`] maps consecutive transitions to the phase names used in
//! exported traces and the phase-latency table.
//!
//! Recording is wired through [`crate::Altocumulus::run_traced`]; this
//! module turns the captured [`Telemetry`] into artifacts:
//! [`chrome_trace`] (Perfetto-loadable JSON) and [`phase_table`] (text
//! breakdown of where requests spend their time).

pub use simcore::telemetry::{NullSink, Telemetry, TelemetrySink};

use simcore::report::Table;
use simcore::telemetry::{chrome_trace_json, phase_latency_table};

/// Span-point kinds recorded by a traced Altocumulus run.
///
/// Every request records `ARRIVAL` first and `COMPLETE` last, with the
/// intermediate points in simulated-time order, so consecutive points
/// decompose the request's latency exactly: the durations of all segments
/// sum to `finish - arrival`.
pub mod span {
    /// Request arrived at the NIC (timestamped at the trace arrival instant).
    pub const ARRIVAL: u16 = 0;
    /// Request landed in its steered manager's NetRX queue (`loc` = group).
    pub const NETRX_ENQUEUE: u16 = 1;
    /// Runtime staged the request out of NetRX into a MIGRATE message
    /// (`loc` = source group).
    pub const MIGRATE_STAGE: u16 = 2;
    /// Migrated request landed in the destination NetRX (`loc` = dest group).
    pub const MIGRATE_LAND: u16 = 3;
    /// NACKed migration returned the request to the source NetRX.
    pub const NACK_RETURN: u16 = 4;
    /// Manager popped the request from NetRX and dispatched it
    /// (`loc` = worker core id).
    pub const DISPATCH: u16 = 5;
    /// Request reached its worker's local queue (`loc` = worker core id).
    pub const WORKER_ARRIVE: u16 = 6;
    /// Worker began service (`loc` = worker core id).
    pub const SERVICE_START: u16 = 7;
    /// Service finished; the completion was recorded (`loc` = worker core id).
    pub const COMPLETE: u16 = 8;
    /// Fault recovery returned the request to a NetRX queue (`loc` = the
    /// group that now holds it): a dead worker's queue was resteered, a
    /// timed-out MIGRATE's descriptors came back, or a failed manager's
    /// queue was adopted by its takeover heir.
    pub const FAULT_RESTEER: u16 = 9;
}

/// Phase name of the segment starting at span kind `from`.
///
/// The phase a request is in is determined by the transition that *began*
/// it, so `to` is only needed to disambiguate nothing today (kept in the
/// signature for forward compatibility with branching lifecycles).
pub fn segment_name(from: u16, _to: u16) -> &'static str {
    match from {
        span::ARRIVAL => "ingress",
        span::NETRX_ENQUEUE | span::MIGRATE_LAND | span::NACK_RETURN | span::FAULT_RESTEER => {
            "netrx_wait"
        }
        span::MIGRATE_STAGE => "migration",
        span::DISPATCH => "dispatch",
        span::WORKER_ARRIVE => "worker_wait",
        span::SERVICE_START => "service",
        _ => "other",
    }
}

/// Renders the captured spans as Chrome-trace JSON (load the file at
/// <https://ui.perfetto.dev> or `chrome://tracing`). One `tid` per request,
/// one complete event per lifecycle phase.
pub fn chrome_trace(tel: &Telemetry) -> String {
    chrome_trace_json(&tel.spans, segment_name)
}

/// Builds the phase-latency breakdown table of the captured spans: per
/// phase, count, mean/p99 duration, share of total time, and the mean
/// within the slowest-1% request cohort (where the tail comes from).
pub fn phase_table(tel: &Telemetry) -> Table {
    phase_latency_table(&tel.spans, segment_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_span_kind_names_a_phase() {
        for kind in [
            span::ARRIVAL,
            span::NETRX_ENQUEUE,
            span::MIGRATE_STAGE,
            span::MIGRATE_LAND,
            span::NACK_RETURN,
            span::DISPATCH,
            span::WORKER_ARRIVE,
            span::SERVICE_START,
            span::FAULT_RESTEER,
        ] {
            assert_ne!(segment_name(kind, span::COMPLETE), "other");
        }
        assert_eq!(segment_name(span::COMPLETE, 99), "other");
    }
}
