//! # altocumulus — scalable scheduling for nanosecond-scale RPCs
//!
//! A faithful reproduction of **ALTOCUMULUS** (Zhao et al., MICRO 2022): a
//! software–hardware co-design that *proactively migrates* RPC requests
//! predicted to violate their SLO from heavily-loaded to lightly-loaded
//! manager cores, using register-level hardware messaging over the NoC.
//!
//! The system is organized exactly as the paper's Fig. 5:
//!
//! - an **offline component** calibrates the queueing-theory threshold model
//!   (`queueing::ThresholdModel`, Eq. 1–2);
//! - the **software runtime** ([`runtime`], Algorithm 1) runs on each
//!   decentralized manager core: it monitors the local NetRX queue, predicts
//!   violations every period, classifies Hill/Valley/Pairing patterns and
//!   triggers migrations;
//! - the **hardware messaging mechanism** ([`hw`], Fig. 6/8) moves 14 B
//!   descriptors between manager tiles through migration registers and
//!   bounded FIFOs at NoC speed, exposed to user space through custom
//!   `altom_*` instructions (or slower x86 MSRs);
//! - the **system model** ([`system`]) wires everything into a
//!   discrete-event simulation comparable head-to-head with the baselines in
//!   the `schedulers` crate;
//! - [`accounting`] reproduces the paper's migration-effectiveness and
//!   prediction-accuracy analyses (Fig. 12/13).
//!
//! # Examples
//!
//! Run ACint on the paper's Bimodal workload and inspect migrations:
//!
//! ```
//! use altocumulus::{AcConfig, Altocumulus};
//! use schedulers::common::RpcSystem;
//! use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};
//!
//! let dist = ServiceDistribution::bimodal_paper();
//! let rate = PoissonProcess::rate_for_load(0.5, 64, dist.mean());
//! let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
//!     .requests(5_000)
//!     .connections(8) // few connections -> RSS imbalance
//!     .seed(1)
//!     .build();
//!
//! let mut ac = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean()));
//! let result = ac.run_detailed(&trace);
//! assert_eq!(result.system.completions.len(), 5_000);
//! println!("p99 = {}, migrated = {}", result.system.p99(), result.stats.migrated_requests);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accounting;
pub mod config;
pub mod hw;
pub mod rack;
pub mod runtime;
pub mod system;
pub mod telemetry;
pub mod tenancy;

pub use accounting::{
    classify_effectiveness, prediction_accuracy, EffectivenessBreakdown, PredictedSet,
};
pub use config::{AcConfig, Attachment, ControlPlane, WorkerPlane};
pub use hw::interface::Interface;
pub use rack::{
    RackConfig, RackResult, RackWorld, RoutePolicy, RoutingStats, ServerDeath, ServerSpec,
    TorConfig,
};
pub use runtime::predictor::ThresholdPolicy;
pub use system::{event_kind_names, AcResult, Altocumulus, MigrationStats, RngDraws};
pub use telemetry::{Telemetry, TelemetrySink};
pub use tenancy::Tenancy;
