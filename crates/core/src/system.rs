//! The end-to-end Altocumulus system simulation.
//!
//! Wires together the decentralized software runtime (Algorithm 1), the
//! hardware messaging mechanism (Fig. 6/8) and the two-tier group topology
//! (global d-FCFS across manager NetRX queues, local c-FCFS within each
//! group) into one discrete-event model implementing
//! [`schedulers::common::RpcSystem`], so it can be compared head-to-head
//! with every baseline on identical traces.

use crate::accounting::PredictedSet;
use crate::config::{AcConfig, Attachment, ControlPlane, WorkerPlane};
use crate::hw::messages::{Descriptor, Message};
use crate::runtime::patterns::{
    guard_allows, plan_migrations_into, plan_patched_into, plan_threshold_only_into,
    MigrationOrder, PlanScratch, SharedExtremes,
};
use crate::runtime::predictor::LoadEstimator;
use crate::telemetry::span;
use interconnect::noc::MeshNoc;
use interconnect::offchip::MemoryModel;
use rpcstack::nic::{NicModel, Transfer};
use schedulers::common::{QueuedRequest, RpcSystem, SystemResult};
use simcore::event::{run_streamed, EventQueue, RunSummary, StreamInjector, World};
use simcore::faults::{NocDecision, NocFaultRng};
use simcore::parengine::{par_threads, Partitioning};
use simcore::rng::{stream_rng, streams, BatchedRng, CountingRng};
use simcore::slab::{Handle, Slab};
use simcore::telemetry::{NullSink, Telemetry, TelemetrySink};
use simcore::time::{SimDuration, SimTime};
use simcore::timeline::worker_plane;
use simcore::trace::{fnv1a64_fold, Recorder};
use std::cell::Cell;
use std::collections::VecDeque;
use workload::request::Completion;
use workload::trace::Trace;

mod par;
mod wp;

/// Counters describing the migration machinery's behaviour during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Runtime invocations across all managers.
    pub ticks: u64,
    /// MIGRATE messages sent.
    pub migrate_messages: u64,
    /// Requests that successfully landed at another manager.
    pub migrated_requests: u64,
    /// MIGRATE messages rejected with NACK.
    pub nacked_messages: u64,
    /// Requests bounced back by NACKs.
    pub nacked_requests: u64,
    /// UPDATE broadcasts sent (messages, not ticks).
    pub update_messages: u64,
    /// Migration orders suppressed by the Algorithm-1 line-8 guard.
    pub guard_blocked: u64,
    /// Requests that landed at each destination group (`migrated_requests`
    /// broken down by receiver; the sum equals `migrated_requests`).
    pub migrated_per_group: Vec<u64>,
    /// Trace indices of requests the predictor selected as likely SLO
    /// violators (whether or not the migration succeeded).
    pub predicted: PredictedSet,
}

/// Counters describing fault injection and graceful degradation during a
/// run. All zero on a healthy run (empty [`simcore::faults::FaultPlan`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker cores that failed.
    pub worker_failures: u64,
    /// Manager cores that failed.
    pub manager_failures: u64,
    /// Failed-manager takeovers completed by a neighbor group.
    pub takeovers: u64,
    /// Requests returned to a NetRX queue by any recovery action (dead
    /// worker, migrate timeout, takeover adoption).
    pub resteered_requests: u64,
    /// Arrivals steered to a dead manager and redirected to its heir.
    pub redirected_arrivals: u64,
    /// Staged MIGRATEs declared lost after the resilience timeout.
    pub migrate_timeouts: u64,
    /// UPDATE messages dropped by the faulty NoC.
    pub updates_dropped: u64,
    /// Messages delayed by the faulty NoC.
    pub messages_delayed: u64,
    /// Migration orders skipped because the destination was dead or in
    /// NACK/timeout backoff.
    pub backoff_skipped: u64,
    /// Requests evacuated by the emergency drain (a group whose workers all
    /// died pushing its queue to a live peer).
    pub emergency_migrations: u64,
}

/// Per-stream RNG draw counts of one run. Part of the record/replay
/// provenance: two runs that execute identical event sequences must also
/// agree on these counts, so a replay that drifts in *randomness consumed*
/// is caught even when the latency output happens to match.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RngDraws {
    /// Logical `u64` words drawn from the NIC steering stream
    /// ([`streams::NIC`]); counts the post-[`BatchedRng`] stream, so the
    /// number is independent of block prefetching.
    pub nic: u64,
    /// Decision draws made by the faulty-NoC decider
    /// ([`streams::FAULTS`]); `0` on healthy runs.
    pub faults: u64,
}

/// Result of an Altocumulus run: the standard [`SystemResult`] plus
/// migration accounting.
#[derive(Debug, Clone)]
pub struct AcResult {
    /// Latency/completion result, comparable with every baseline.
    pub system: SystemResult,
    /// Migration machinery counters.
    pub stats: MigrationStats,
    /// Event-loop accounting (events processed, peak queue population).
    pub summary: RunSummary,
    /// Fault-injection and recovery counters.
    pub faults: FaultStats,
    /// Label of the engine that actually drove the run (after eligibility
    /// resolution): `"serial_elided"`, `"serial_event_driven"`, or
    /// `"parallel"`. Provenance only — all three produce byte-identical
    /// observables.
    pub engine: &'static str,
    /// Per-stream RNG draw accounting.
    pub rng: RngDraws,
}

/// The simulated Altocumulus system.
#[derive(Debug, Clone)]
pub struct Altocumulus {
    cfg: AcConfig,
}

impl Altocumulus {
    /// Creates the system, validating the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`AcConfig::validate`]).
    pub fn new(cfg: AcConfig) -> Self {
        cfg.validate();
        Altocumulus { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcConfig {
        &self.cfg
    }

    /// Runs the full simulation, returning latency results plus migration
    /// statistics.
    ///
    /// Arrivals are injected *lazily* in chunks as virtual time advances
    /// (see [`StreamInjector`]): the event queue holds O(in-flight) events
    /// instead of the whole trace. Seqs for all arrivals are reserved up
    /// front in trace order, so the pop order — and therefore every result
    /// byte — is identical to the old upfront pre-push.
    ///
    /// When the `PAR_THREADS` environment variable is set to ≥ 2 (and the
    /// run is eligible — multi-group, no fault plan), the parallel
    /// quiet-window engine drives the run instead; its output is
    /// byte-identical to the serial engine at every thread count.
    pub fn run_detailed(&mut self, trace: &Trace) -> AcResult {
        // Monomorphized against the no-op sink: the compiled hot path is
        // the telemetry-free one, with zero extra instructions.
        self.run_with(trace, &mut NullSink, self.auto_mode())
    }

    /// Like [`run_detailed`](Self::run_detailed), but explicitly parallel
    /// across `threads` worker threads (groups are split into `threads`
    /// near-equal contiguous partitions). `threads <= 1`, a single group,
    /// or a non-empty fault plan all fall back to the serial engine; the
    /// result is byte-identical either way.
    pub fn run_detailed_par(&mut self, trace: &Trace, threads: usize) -> AcResult {
        self.run_with(trace, &mut NullSink, self.even_mode(threads))
    }

    /// [`run_traced`](Self::run_traced) on the parallel engine; span logs
    /// and probe rings merge deterministically, byte-identical to serial.
    pub fn run_traced_par(
        &mut self,
        trace: &Trace,
        tel: &mut Telemetry,
        threads: usize,
    ) -> AcResult {
        self.run_with(trace, tel, self.even_mode(threads))
    }

    /// Test hook: run parallel under an explicit (possibly permuted)
    /// partitioning of the groups.
    #[doc(hidden)]
    pub fn run_detailed_partitioned(&mut self, trace: &Trace, parts: Partitioning) -> AcResult {
        self.run_with(trace, &mut NullSink, RunMode::Parallel(parts))
    }

    /// Test hook: [`run_traced`](Self::run_traced) under an explicit
    /// partitioning.
    #[doc(hidden)]
    pub fn run_traced_partitioned(
        &mut self,
        trace: &Trace,
        tel: &mut Telemetry,
        parts: Partitioning,
    ) -> AcResult {
        self.run_with(trace, tel, RunMode::Parallel(parts))
    }

    /// The engine mode the `PAR_THREADS` environment knob selects.
    fn auto_mode(&self) -> RunMode {
        self.even_mode(par_threads())
    }

    /// An even contiguous split across `threads` partitions, or serial when
    /// the run is not eligible.
    fn even_mode(&self, threads: usize) -> RunMode {
        if threads >= 2 && self.cfg.groups >= 2 {
            RunMode::Parallel(Partitioning::even(self.cfg.groups, threads))
        } else {
            RunMode::Serial
        }
    }

    /// Runs the full simulation while recording request-lifecycle spans and
    /// time-series probes into `tel`.
    ///
    /// Recording is *non-perturbing*: the sink only reads state the
    /// simulation already computed — it never pushes events, consumes RNG
    /// draws, or alters control flow — so the returned [`AcResult`] is
    /// byte-identical to [`run_detailed`](Self::run_detailed) on the same
    /// trace (pinned by the determinism tests in `crates/bench`). Export
    /// the capture with [`crate::telemetry::chrome_trace`],
    /// [`crate::telemetry::phase_table`] and
    /// [`simcore::telemetry::ProbeSet::to_jsonl`].
    pub fn run_traced(&mut self, trace: &Trace, tel: &mut Telemetry) -> AcResult {
        self.run_with(trace, tel, self.auto_mode())
    }

    /// Runs the full simulation while recording the executed event sequence
    /// (and, depending on [`Recorder`] granularity, the span log) into a
    /// [`Recorder`] for `TRACE/1.0` artifact export and first-divergence
    /// replay (see [`simcore::trace`]).
    ///
    /// Like [`run_traced`](Self::run_traced), recording is non-perturbing:
    /// the sink only observes `(time, seq, event)` ranks the engine already
    /// computed, so the returned [`AcResult`] is byte-identical to
    /// [`run_detailed`](Self::run_detailed) on the same trace. All three
    /// engines record the same sequence — the artifact is engine-independent.
    pub fn run_recorded(&mut self, trace: &Trace, rec: &mut Recorder) -> AcResult {
        self.run_with(trace, rec, self.auto_mode())
    }

    /// Test hook: [`run_recorded`](Self::run_recorded) under an explicit
    /// partitioning (parallel-engine record/replay coverage).
    #[doc(hidden)]
    pub fn run_recorded_partitioned(
        &mut self,
        trace: &Trace,
        rec: &mut Recorder,
        parts: Partitioning,
    ) -> AcResult {
        self.run_with(trace, rec, RunMode::Parallel(parts))
    }

    /// Resolves the requested [`RunMode`] into the one [`Engine`] that
    /// drives the run. Every eligibility rule lives here — the three
    /// dispatch sites of `run_with` (group-store layout, worker-plane
    /// resolution, event-loop selection) used to re-derive overlapping
    /// slices of this logic independently:
    ///
    /// - A non-empty fault plan forces the serial engine: fault events are
    ///   rare, cross-group, and RNG-bearing — exactly what the quiet-window
    ///   protocol serializes anyway, so the parallel path refuses them
    ///   (trivially byte-identical). The same plan also downgrades the
    ///   worker plane to the per-event oracle: epoch bumps, straggler
    ///   inflation, and resteers landing mid-batch all perturb the analytic
    ///   timelines.
    /// - A degenerate partitioning (under two parts, or one not covering
    ///   the mesh) falls back to serial.
    /// - The parallel engine always runs the worker plane event-driven; its
    ///   quiet-window protocol owns the queue.
    fn choose_engine(&self, mode: RunMode) -> Engine {
        match mode {
            RunMode::Parallel(p)
                if self.cfg.faults.is_empty() && p.parts() >= 2 && p.items() == self.cfg.groups =>
            {
                Engine::Parallel(p)
            }
            _ if !self.cfg.faults.is_empty() => Engine::SerialEventDriven,
            _ => match worker_plane(self.cfg.worker_plane) {
                WorkerPlane::Elided => Engine::SerialElided,
                WorkerPlane::EventDriven => Engine::SerialEventDriven,
            },
        }
    }

    fn run_with<S: TelemetrySink>(
        &mut self,
        trace: &Trace,
        tel: &mut S,
        mode: RunMode,
    ) -> AcResult {
        let engine = self.choose_engine(mode);
        let cfg = &self.cfg;
        let nic = NicModel::default();
        let attach_transfer = match cfg.attachment {
            Attachment::Integrated => Transfer::coherent(),
            Attachment::RssPcie => Transfer::pcie(),
        };
        let mut steering = cfg.steering.clone();
        // Batched: the xoshiro words are prefetched in blocks of 64. Every
        // steering draw derives from `next_u64`, so the draw sequence is
        // identical to the unbatched stream by construction. The counting
        // wrapper mirrors the *logical* draw count (not prefetched words)
        // into a cell the run can read back after the injector closure has
        // swallowed the generator.
        let nic_draws = Cell::new(0u64);
        let mut nic_rng = CountingRng::new(
            BatchedRng::new(stream_rng(cfg.seed, streams::NIC)),
            &nic_draws,
        );

        let mut queue = EventQueue::new();
        let base_seq = queue.reserve_seqs(trace.len() as u64);

        // With tenancy, a connection's requests only reach its tenant's
        // groups; otherwise the NIC hashes across all NetRX queues. The
        // per-tenant group lists are computed once, not per arrival.
        let tenant_groups: Vec<Vec<usize>> = match &cfg.tenancy {
            Some(t) => (0..t.tenants()).map(|tn| t.groups_of(tn)).collect(),
            None => Vec::new(),
        };
        let requests = trace.requests();
        let mac_delay = nic.mac_delay;
        let mut source = StreamInjector::new(
            trace.len(),
            base_seq,
            // The trace is sorted by arrival (enforced by `Trace::new`) and
            // the transfer latency is non-negative, so this lower bound is
            // non-decreasing and never exceeds the actual delivery time.
            |i: usize| requests[i].arrival + mac_delay,
            |i: usize| {
                let req = &requests[i];
                let g = match &cfg.tenancy {
                    Some(t) => {
                        let owned = &tenant_groups[t.tenant_of_conn(req.conn) as usize];
                        owned[steering.steer(req.conn, owned.len(), &mut nic_rng)]
                    }
                    None => steering.steer(req.conn, cfg.groups, &mut nic_rng),
                };
                let deliver = req.arrival + mac_delay + attach_transfer.latency(req.size_bytes);
                (deliver, Ev::Enqueue(g as u32, i as u32))
            },
        );

        let mem = MemoryModel::default();
        let runtime_cost = cfg.interface.runtime_cost(2 + cfg.concurrency as u32, 2.0);
        // Probe series exist only when a recording sink is attached; the
        // registration order (all series of group 0, then group 1, …) is
        // part of the export schema.
        let probe_ids: Vec<ProbeIds> = if tel.enabled() {
            (0..cfg.groups)
                .map(|g| ProbeIds {
                    netrx: tel.register_series("netrx_depth", g as u32),
                    workers: tel.register_series("worker_queue_depth", g as u32),
                    ewma: tel.register_series("ewma_erlangs", g as u32),
                    send: tel.register_series("send_fifo", g as u32),
                    recv: tel.register_series("recv_fifo", g as u32),
                    migrations: tel.register_series("migrate_sends", g as u32),
                })
                .collect()
        } else {
            Vec::new()
        };
        // Fault-layer state exists only for a non-empty plan; the extra
        // "fault_mark" probe series likewise, so healthy traced runs keep
        // the exact pre-fault-layer export schema.
        let faults: Option<Box<FaultState>> = if cfg.faults.is_empty() {
            None
        } else {
            let fault_probes = if tel.enabled() {
                (0..cfg.groups)
                    .map(|g| tel.register_series("fault_mark", g as u32))
                    .collect()
            } else {
                Vec::new()
            };
            Some(Box::new(FaultState {
                noc: cfg.faults.noc_rng(),
                dead: vec![vec![false; cfg.workers_per_group()]; cfg.groups],
                epoch: vec![vec![0; cfg.workers_per_group()]; cfg.groups],
                mgr_dead: vec![false; cfg.groups],
                heir: vec![None; cfg.groups],
                backoff: vec![vec![SimTime::ZERO; cfg.groups]; cfg.groups],
                pending: Vec::new(),
                migrate_timeout: cfg.resilience.migrate_timeout.or_else(|| {
                    (!cfg.faults.manager_failures.is_empty()).then(|| SimDuration::from_us(50))
                }),
                stats: FaultStats::default(),
                probe_ids: fault_probes,
            }))
        };
        let groups: Vec<Group> = (0..cfg.groups)
            .map(|_| Group {
                netrx: VecDeque::new(),
                stage_hint: 0,
                running: vec![None; cfg.workers_per_group()],
                waiting: vec![VecDeque::new(); cfg.workers_per_group()],
                occ: vec![0; cfg.workers_per_group()],
                busy: 0,
                slab: Slab::new(),
                mgr_busy_until: SimTime::ZERO,
                dispatch_pending: false,
                recv_fifo: 0,
                arrivals_since_tick: 0,
            })
            .collect();
        let cold: Vec<GroupCold> = (0..cfg.groups)
            .map(|_| GroupCold {
                q_view: vec![0; cfg.groups],
                estimator: LoadEstimator::new(cfg.mean_service, 0.2),
                mailbox: Vec::new(),
                tick_seq: 0,
                dormant: false,
                next_virtual_tick: SimTime::ZERO,
                send_inflight: 0,
                upd_cursor: 0,
                upd_pending: Vec::new(),
            })
            .collect();
        let groups = match &engine {
            Engine::Parallel(p) => GroupStore::partitioned(groups, p),
            _ => GroupStore::serial(groups),
        };
        let noc = MeshNoc::new_square(cfg.total_cores() as u32);
        let topo = (0..cfg.groups)
            .map(|g| {
                let peers: Vec<usize> = match &cfg.tenancy {
                    Some(t) => t.groups_of(t.tenant_of_group(g)),
                    None => (0..cfg.groups).collect(),
                };
                let me_local = peers
                    .iter()
                    .position(|&j| j == g)
                    .expect("a group is always its own peer");
                let src_tile = g * cfg.group_size;
                // UPDATE delivery offsets are pure topology: header-sized
                // wire latency plus the injection-port stagger of the
                // broadcast slot. Folding them here keeps the per-tick
                // broadcast loop to one add per peer.
                let upd_bytes = Message::Update {
                    src: g,
                    queue_len: 0,
                }
                .wire_bytes();
                let update_offsets = peers
                    .iter()
                    .copied()
                    .filter(|&j| j != g)
                    .enumerate()
                    .map(|(i, dst)| {
                        let lat = noc.latency(src_tile, dst * cfg.group_size, upd_bytes);
                        (dst as u32, lat + injection_stagger(i))
                    })
                    .collect();
                GroupTopo {
                    peers,
                    me_local,
                    tile: src_tile,
                    update_offsets,
                }
            })
            .collect::<Vec<_>>();

        // Update-log mode (see `AcWorld::upd_log`): Elided control plane,
        // healthy, single-tenant. Faults would interpose per-destination
        // lossy-NoC draws; tenancy would shrink the peer set, breaking the
        // dense `slot(dst) = dst - (dst > src)` reconstruction.
        let upd_log_mode = cfg.control_plane == ControlPlane::Elided
            && cfg.faults.is_empty()
            && cfg.tenancy.is_none()
            && cfg.groups > 1;
        let upd_off_in: Vec<SimDuration> = if upd_log_mode {
            let mut m = vec![SimDuration::ZERO; cfg.groups * cfg.groups];
            for (src, t) in topo.iter().enumerate() {
                for &(dst, off) in &t.update_offsets {
                    m[dst as usize * cfg.groups + src] = off;
                }
            }
            m
        } else {
            Vec::new()
        };
        let upd_max_off = upd_off_in
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO);
        let upd_fast = upd_log_mode && upd_max_off < cfg.period;

        let mut world = AcWorld {
            trace,
            cfg,
            noc,
            dispatch_op: mem.remote_cache, // 70 cycles per manager dispatch op
            intra_transfer: match cfg.attachment {
                Attachment::Integrated => Transfer::coherent(),
                Attachment::RssPcie => Transfer::coherent(),
            },
            groups,
            cold,
            msg_slab: Slab::new(),
            upd_log_mode,
            upd_log: VecDeque::new(),
            upd_base: 0,
            upd_off_in,
            upd_max_off,
            upd_fold_at: 1024.max(4 * cfg.groups),
            upd_fast,
            upd_gq: vec![0; if upd_fast { cfg.groups } else { 0 }],
            topo,
            scratch: TickScratch::default(),
            completed: 0,
            last_completed_at_tick: 0,
            stalled_ticks: 0,
            runtime_cost,
            tick_stride: runtime_cost + cfg.period,
            tick_block_instant: SimTime::ZERO,
            tick_block_base: 0,
            stats: MigrationStats {
                predicted: PredictedSet::with_capacity(trace.len()),
                migrated_per_group: vec![0; cfg.groups],
                ..MigrationStats::default()
            },
            result: SystemResult::with_capacity(trace.len()),
            tel,
            probe_ids,
            faults,
        };
        if cfg.migration_enabled && cfg.groups > 1 {
            let first = SimTime::ZERO + cfg.period;
            for g in 0..cfg.groups {
                world.schedule_next_tick(g, first, false, &mut queue);
            }
        }
        // Fault strikes from the plan. Pushed after the arrival-seq
        // reservation and the initial ticks, so with an empty plan (no
        // pushes) the queue's seq evolution is untouched.
        if world.faults.is_some() {
            for f in &cfg.faults.worker_failures {
                let g = f.core / cfg.group_size;
                let w = f.core % cfg.group_size - 1;
                queue.push(f.at, Ev::Fault(FaultEv::WorkerFail(g as u32, w as u32)));
            }
            for f in &cfg.faults.manager_failures {
                queue.push(f.at, Ev::Fault(FaultEv::ManagerFail(f.group as u32)));
            }
        }
        let summary = match &engine {
            Engine::SerialElided => wp::run_elided(&mut world, &mut queue, &mut source),
            Engine::SerialEventDriven => {
                run_streamed(&mut world, &mut queue, &mut source, SimTime::MAX)
            }
            Engine::Parallel(p) => par::run_windows(&mut world, &mut queue, &mut source, p),
        };
        world.finalize_idle_accounting(summary.end_time);
        let fault_stats = world.faults.as_ref().map(|f| f.stats).unwrap_or_default();
        let fault_draws = world
            .faults
            .as_ref()
            .and_then(|f| f.noc.as_ref())
            .map_or(0, |n| n.draws());
        AcResult {
            system: world.result,
            stats: world.stats,
            summary,
            faults: fault_stats,
            engine: engine.label(),
            rng: RngDraws {
                nic: nic_draws.get(),
                faults: fault_draws,
            },
        }
    }
}

impl RpcSystem for Altocumulus {
    fn name(&self) -> String {
        format!(
            "{}({}x{})",
            self.cfg.attachment.label(),
            self.cfg.groups,
            self.cfg.group_size
        )
    }

    fn run(&mut self, trace: &Trace) -> SystemResult {
        self.run_detailed(trace).system
    }
}

/// Which engine a caller *requested* for one run. Resolved — eligibility
/// rules and worker-plane downgrades applied — into an [`Engine`] by
/// [`Altocumulus::choose_engine`].
enum RunMode {
    /// The classic single-threaded loop.
    Serial,
    /// The quiet-window engine: partitions of the group mesh execute
    /// windows of intra-group events on worker threads, with every
    /// serial-only event (ticks, messages) and all observable output
    /// replayed on the exact serial `(time, seq)` order.
    Parallel(Partitioning),
}

/// The fully resolved engine of one run — the single value the group-store
/// layout and the event-loop dispatch both match on. All three variants
/// produce byte-identical observables.
enum Engine {
    /// Serial loop, worker plane elided onto analytic per-class timelines.
    SerialElided,
    /// Serial loop, every event through the calendar queue (the oracle).
    SerialEventDriven,
    /// Quiet-window parallel engine (worker plane always event-driven).
    Parallel(Partitioning),
}

impl Engine {
    /// Stable label for run artifacts ([`AcResult::engine`]).
    fn label(&self) -> &'static str {
        match self {
            Engine::SerialElided => "serial_elided",
            Engine::SerialEventDriven => "serial_event_driven",
            Engine::Parallel(_) => "parallel",
        }
    }
}

/// Human-readable names of the event `kind` tags recorded into `TRACE/1.0`
/// artifacts, indexed by tag. The tag order mirrors the [`Ev`] variant
/// order and is part of the artifact schema — append, never reorder.
pub fn event_kind_names() -> &'static [&'static str] {
    &[
        "Enqueue",
        "Deliver",
        "WorkerDone",
        "MgrOpDone",
        "Tick",
        "Msg",
        "RecvDrained",
        "Fault",
    ]
}

/// Folds one protocol message into a content digest for event records.
/// Descriptor indices are folded individually, so a MIGRATE whose batch
/// differs by a single descriptor diverges.
fn msg_digest(msg: &Message) -> u64 {
    let mut h = 0;
    match msg {
        Message::Migrate {
            src,
            dst,
            descriptors,
            token,
        } => {
            h = fnv1a64_fold(h, 1);
            h = fnv1a64_fold(h, *src as u64);
            h = fnv1a64_fold(h, *dst as u64);
            h = fnv1a64_fold(h, *token);
            for d in descriptors {
                h = fnv1a64_fold(h, d.trace_idx as u64);
            }
        }
        Message::Update { src, queue_len } => {
            h = fnv1a64_fold(h, 2);
            h = fnv1a64_fold(h, *src as u64);
            h = fnv1a64_fold(h, *queue_len as u64);
        }
        Message::Ack {
            src,
            accepted,
            token,
        } => {
            h = fnv1a64_fold(h, 3);
            h = fnv1a64_fold(h, *src as u64);
            h = fnv1a64_fold(h, *accepted as u64);
            h = fnv1a64_fold(h, *token);
        }
        Message::Nack {
            src,
            descriptors,
            token,
        } => {
            h = fnv1a64_fold(h, 4);
            h = fnv1a64_fold(h, *src as u64);
            h = fnv1a64_fold(h, *token);
            for d in descriptors {
                h = fnv1a64_fold(h, d.trace_idx as u64);
            }
        }
    }
    h
}

/// The `(kind, group, payload)` descriptor of one executed event, as
/// recorded into `TRACE/1.0` artifacts (see [`event_kind_names`] for the
/// tag vocabulary). Engine-invariant by the byte-identity guarantee: slab
/// handles allocate in identical order across engines, message payloads are
/// digested by content, and every field the descriptor folds is part of the
/// observable event sequence.
fn describe_ev(ev: &Ev, msg_slab: &Slab<Message>) -> (u8, u32, u64) {
    if let Ev::Msg { dst, msg, .. } = ev {
        // Observation runs before `handle` takes the payload out of the
        // arena, so the handle always resolves here.
        let digest = msg_slab.get(*msg).map_or(0, msg_digest);
        return (5, *dst, digest);
    }
    describe_slabless_ev(ev)
}

/// [`describe_ev`] for the event variants that carry no arena payload —
/// everything a parallel shard can execute, so shard-side recording needs
/// no access to the world's message slab.
fn describe_slabless_ev(ev: &Ev) -> (u8, u32, u64) {
    match ev {
        Ev::Enqueue(g, idx) => (0, *g, *idx as u64),
        Ev::Deliver(g, w, h) => (1, *g, ((*w as u64) << 32) | h.index() as u64),
        Ev::WorkerDone(g, w, epoch) => (2, *g, ((*w as u64) << 32) | *epoch as u64),
        Ev::MgrOpDone(g) => (3, *g, 0),
        Ev::Tick(g) => (4, *g, 0),
        Ev::Msg { .. } => unreachable!("Msg descriptors need the message arena"),
        Ev::RecvDrained(g) => (6, *g, 0),
        Ev::Fault(fe) => {
            let (group, payload) = match fe {
                FaultEv::WorkerFail(g, w) => (*g, (1u64 << 32) | *w as u64),
                FaultEv::ManagerFail(g) => (*g, 2u64 << 32),
                FaultEv::Takeover(g) => (*g, 3u64 << 32),
                FaultEv::MigrateTimeout(id) => (u32::MAX, (4u64 << 32) | *id as u64),
            };
            (7, group, payload)
        }
    }
}

/// The event vocabulary, deliberately small and `Copy` (24 bytes): the
/// calendar queue's bucket min-scan cost is proportional to entry size, so
/// rare or bulky payloads live in slab arenas ([`simcore::slab::Slab`]) and
/// travel as 8-byte generation-checked [`Handle`]s — request metadata in the
/// owning group's arena, protocol messages in the world's.
#[derive(Clone, Copy)]
enum Ev {
    /// Request reaches its steered manager's NetRX queue.
    Enqueue(u32, u32),
    /// Dispatched request lands at worker `(group, worker)`. The handle
    /// resolves in the group's request arena (`Group::slab`).
    Deliver(u32, u32, Handle),
    /// Worker `(group, worker)` finished its request. The third field is
    /// the worker's liveness epoch at service start: a completion whose
    /// epoch no longer matches is stale — the worker died mid-service and
    /// the request was already resteered. Always `0` on healthy runs.
    WorkerDone(u32, u32, u32),
    /// Serialized manager operation (ACrss dispatch) completed.
    MgrOpDone(u32),
    /// Runtime period boundary for manager `group`.
    Tick(u32),
    /// Protocol message arrives at manager `dst`. Carries its own queue
    /// `seq` so a dormancy wake can replay the exact `(time, seq)`
    /// tie-break the event queue would have applied between this message
    /// and the destination's elided period timer (see
    /// [`AcWorld::wake_group`]).
    Msg {
        /// Destination manager.
        dst: u32,
        /// The queue sequence number this event was pushed under.
        seq: u64,
        /// Payload handle, resolved in the world's message arena
        /// (`AcWorld::msg_slab`); messages never enter worker shards.
        msg: Handle,
    },
    /// Receive-FIFO slot at manager `group` drained by the migrator.
    RecvDrained(u32),
    /// A scheduled fault strikes, or a fault-recovery timer fires. Only
    /// pushed when the configured [`simcore::faults::FaultPlan`] is
    /// non-empty.
    Fault(FaultEv),
}

/// Fault-plan events and recovery timers (see [`Ev::Fault`]).
#[derive(Clone, Copy)]
enum FaultEv {
    /// Worker `(group, worker)` fails permanently.
    WorkerFail(u32, u32),
    /// Manager of `group` fails permanently.
    ManagerFail(u32),
    /// A neighbor group adopts failed manager `group`'s NetRX queue.
    Takeover(u32),
    /// The resilience timeout for pending MIGRATE `id` expires.
    MigrateTimeout(u32),
}

/// The *hot* plane of one group: exactly the state the per-event request
/// lifecycle (`Enqueue`/`Deliver`/`WorkerDone`/`MgrOpDone`/`RecvDrained`)
/// reads and writes. This is also the state that moves into worker shards
/// of the parallel engine, so everything a shard-handled event touches must
/// live here. Everything only the serial control plane (ticks, messages,
/// faults) touches lives in [`GroupCold`], a dense parallel `Vec` on
/// [`AcWorld`], keeping this struct — and therefore the cache footprint of
/// a hot handler — small.
struct Group {
    netrx: VecDeque<QueuedRequest>,
    /// Lower bound on the length of the already-migrated run at the tail of
    /// `netrx` (invariant: the last `min(stage_hint, len)` entries all have
    /// `migrated` set). Maintained by [`Group::push_netrx`] and
    /// [`stage_from_tail`]; front pops need no upkeep because consuming into
    /// the hinted region leaves a sub-suffix that is still all migrated.
    stage_hint: u32,
    running: Vec<Option<QueuedRequest>>,
    waiting: Vec<VecDeque<QueuedRequest>>,
    /// Maintained occupancy (`running + waiting + in-transit`) per worker;
    /// `u32::MAX` marks a dead worker so [`Group::free_worker`] is a single
    /// branch-free argmin over one dense row. Kept in lockstep by the
    /// dispatch/done handlers instead of being recomputed per dispatch.
    occ: Vec<u32>,
    /// Sum of `occ` over live workers plus in-transit descriptors headed at
    /// dead workers (which still bounce): the group's total outstanding
    /// work. Replaces three O(workers) scans in the quiescence check and
    /// the `worker_queue_depth` probe.
    busy: u32,
    /// Arena for in-flight request metadata: `Ev::Deliver` carries an
    /// 8-byte handle into this slab instead of a 32-byte `QueuedRequest`.
    slab: Slab<QueuedRequest>,
    mgr_busy_until: SimTime,
    dispatch_pending: bool,
    recv_fifo: usize,
    arrivals_since_tick: u64,
}

/// The *cold* plane of one group: state only the serial control plane —
/// periodic ticks, protocol messages, dormancy bookkeeping — ever touches.
/// Stored as a dense `Vec<GroupCold>` on [`AcWorld`] (never lent to
/// parallel shards), indexed by group id in lockstep with the hot
/// [`Group`] store.
struct GroupCold {
    /// Latest known queue length of every manager (PR `q` vector).
    q_view: Vec<u32>,
    estimator: LoadEstimator,
    /// Elided control plane: UPDATE records parked for this group, applied
    /// lazily by [`AcWorld::drain_mailbox`] at the next tick instead of
    /// costing one simulator event each.
    mailbox: Vec<MailEntry>,
    /// Queue seq of this group's pending (or currently-running) `Ev::Tick`;
    /// the mailbox drain cutoff. Maintained in Elided mode only.
    tick_seq: u64,
    /// True while the group sits in idle-tick fast-forward: no timer event
    /// is scheduled, and `next_virtual_tick` tracks where the period
    /// lattice would fire next.
    dormant: bool,
    /// Next period boundary this group would tick at; valid while
    /// `dormant`.
    next_virtual_tick: SimTime,
    send_inflight: usize,
    /// Update-log mode: absolute index of the first `AcWorld::upd_log`
    /// record this group has not examined yet.
    upd_cursor: u64,
    /// Update-log mode: reconstructed deliveries that were still in flight
    /// at the last drain (their `(deliver_at, seq)` key at or past the
    /// tick's cutoff), parked for a later tick. Older log positions than
    /// `upd_cursor`, so draining pending-then-log preserves seq order.
    upd_pending: Vec<MailEntry>,
}

/// One elided UPDATE delivery parked in a destination mailbox.
///
/// `(deliver_at, seq)` is exactly the `(time, seq)` key the legacy
/// `Ev::Msg` event would have popped under — the seq is reserved from the
/// event queue at send time — so comparing it against the draining tick's
/// `(now, tick_seq)` reproduces the event-based application order
/// bit-for-bit, including same-instant ties.
#[derive(Debug, Clone, Copy)]
struct MailEntry {
    deliver_at: SimTime,
    seq: u64,
    src: u32,
    queue_len: u32,
}

/// One tick's whole UPDATE broadcast as a single shared log record
/// (healthy single-tenant Elided runs only — see `AcWorld::upd_log`).
///
/// The sender reserves the full block of `groups - 1` seqs at once
/// (identical counter evolution to the per-peer reservations it replaces);
/// a destination `dst` reconstructs its own virtual delivery exactly:
/// `seq = base_seq + slot(dst)` where `slot` is `dst`'s position in the
/// sender's broadcast order, and `deliver_at = send_time +` the
/// precomputed per-pair offset. Broadcasting is thereby O(1) per tick
/// instead of O(groups) mailbox pushes.
#[derive(Debug, Clone, Copy)]
struct UpdRec {
    send_time: SimTime,
    base_seq: u64,
    src: u32,
    queue_len: u32,
}

impl Group {
    /// Least-loaded worker with occupancy below `bound`: a single argmin
    /// over the maintained `occ` row. Dead workers sit at `u32::MAX`, which
    /// `occ < bound` excludes for free (`bound` is the small `local_bound`).
    /// Ties keep the lowest-index worker, matching the first-minimal
    /// semantics of `min_by_key`.
    fn free_worker(&self, bound: u32) -> Option<usize> {
        let mut best: Option<(u32, usize)> = None; // (occupancy, worker)
        for (w, &occ) in self.occ.iter().enumerate() {
            if occ < bound && best.is_none_or(|(b, _)| occ < b) {
                best = Some((occ, w));
            }
        }
        best.map(|(_, w)| w)
    }

    /// Pushes onto NetRX, maintaining the `stage_hint` tail-run invariant:
    /// a migrated entry extends the known run, anything else breaks it.
    fn push_netrx(&mut self, qr: QueuedRequest) {
        self.stage_hint = if qr.migrated { self.stage_hint + 1 } else { 0 };
        self.netrx.push_back(qr);
    }
}

/// Owns every [`Group`], laid out by partition so the parallel engine can
/// lend whole partitions to worker threads as owned `Vec<Group>`s (the
/// crate forbids `unsafe`, so shards receive their groups by move, not by
/// pointer).
///
/// Serial runs use a single partition; indexing cost is one extra slot
/// lookup either way, and `world.groups[g]` syntax is preserved through the
/// `Index` impls.
struct GroupStore {
    parts: Vec<Vec<Group>>,
    /// `slots[g] = (partition, offset within it)`.
    slots: Vec<(u32, u32)>,
}

impl GroupStore {
    /// All groups in one partition (the serial layout).
    fn serial(groups: Vec<Group>) -> Self {
        let slots = (0..groups.len()).map(|g| (0, g as u32)).collect();
        GroupStore {
            parts: vec![groups],
            slots,
        }
    }

    /// Groups laid out by `partitioning`: partition `p` holds the groups of
    /// `partitioning.ranges()[p]`, in ascending group order.
    fn partitioned(groups: Vec<Group>, partitioning: &Partitioning) -> Self {
        assert_eq!(groups.len(), partitioning.items());
        let mut slots = vec![(0u32, 0u32); groups.len()];
        let mut take: Vec<Option<Group>> = groups.into_iter().map(Some).collect();
        let parts = partitioning
            .ranges()
            .iter()
            .enumerate()
            .map(|(p, r)| {
                r.clone()
                    .enumerate()
                    .map(|(off, g)| {
                        slots[g] = (p as u32, off as u32);
                        take[g].take().expect("ranges are disjoint")
                    })
                    .collect()
            })
            .collect();
        GroupStore { parts, slots }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    /// Moves partition `p`'s groups out (for a worker shard); the slot stays
    /// reserved and must be refilled with [`put_part`](Self::put_part)
    /// before any group of `p` is accessed again.
    fn take_part(&mut self, p: usize) -> Vec<Group> {
        std::mem::take(&mut self.parts[p])
    }

    fn put_part(&mut self, p: usize, groups: Vec<Group>) {
        debug_assert!(self.parts[p].is_empty(), "partition {p} already present");
        self.parts[p] = groups;
    }
}

impl std::ops::Index<usize> for GroupStore {
    type Output = Group;
    fn index(&self, g: usize) -> &Group {
        let (p, off) = self.slots[g];
        &self.parts[p as usize][off as usize]
    }
}

impl std::ops::IndexMut<usize> for GroupStore {
    fn index_mut(&mut self, g: usize) -> &mut Group {
        let (p, off) = self.slots[g];
        &mut self.parts[p as usize][off as usize]
    }
}

/// Per-group constants computed once at world construction so the periodic
/// runtime never rebuilds peer lists or recomputes tile ids.
struct GroupTopo {
    /// Managers this group exchanges UPDATE/MIGRATE with (its tenant's
    /// partition, or every group without tenancy). Includes the group itself.
    peers: Vec<usize>,
    /// This group's index within `peers`.
    me_local: usize,
    /// Mesh tile of the group's manager core.
    tile: usize,
    /// UPDATE broadcast schedule: `(dst, wire latency + port stagger)` per
    /// peer slot, in send order. Latency for a header-sized message is a
    /// pure function of the mesh, so the per-tick loop just adds.
    update_offsets: Vec<(u32, SimDuration)>,
}

/// Reusable buffers for [`AcWorld::runtime_tick`]. Ticks run one at a time,
/// so a single set shared by all groups suffices; after warmup every tick
/// works entirely inside these capacities and allocates nothing.
#[derive(Default)]
struct TickScratch {
    /// Snapshot of the manager's `q` vector for this tick.
    q_view: Vec<u32>,
    /// `q_view` projected onto the tenant-local peer list.
    local_q: Vec<u32>,
    /// This tick's migration plan.
    orders: Vec<MigrationOrder>,
    /// Descriptors staged from the NetRX tail for one MIGRATE message.
    staged: Vec<Descriptor>,
    /// Planner-internal rank/sort buffers.
    plan: PlanScratch,
    /// Fast-mode shared planner extremes, ranked over the shared PR view
    /// once per tick instant and patched per group (`ext_instant` tags the
    /// instant they were computed for).
    shared_ext: SharedExtremes,
    ext_instant: SimTime,
    /// Buffers for the debug-build differential check of the patched
    /// planner against the full-scan oracle (reused so the allocation
    /// gates hold in debug too).
    #[allow(dead_code)]
    oracle_orders: Vec<MigrationOrder>,
    #[allow(dead_code)]
    oracle_plan: PlanScratch,
}

/// Pops up to `count` not-yet-migrated requests from the *tail* of `netrx`
/// (the paper migrates from Tail) into `staged`, passing over entries that
/// already migrated once. `allow_remigrate` lifts the at-most-once
/// restriction; only the emergency drain (every worker of the holding group
/// dead) uses it, since leaving a once-migrated request in a workerless
/// group would strand it forever.
///
/// `hint` is the group's [`Group::stage_hint`]: at least the last
/// `min(hint, len)` entries of `netrx` are already-migrated. Because landed
/// migrations can never re-migrate, a busy destination accumulates a long
/// unmigratable tail; the hint lets staging step over it in O(1) instead of
/// re-walking it on every planned order. Staging removes entries *between*
/// migrated ones in place, which closes the gaps — so every entry walked
/// over joins the known-migrated tail run and the hint only grows until the
/// next non-migrated NetRX push resets it.
fn stage_from_tail(
    netrx: &mut VecDeque<QueuedRequest>,
    trace: &Trace,
    count: usize,
    staged: &mut Vec<Descriptor>,
    hint: &mut u32,
    allow_remigrate: bool,
) {
    staged.clear();
    let skip = if allow_remigrate {
        0
    } else {
        (*hint as usize).min(netrx.len())
    };
    debug_assert!(
        netrx.iter().rev().take(skip).all(|qr| qr.migrated),
        "stage_hint must only cover migrated entries"
    );
    // One past the deepest candidate still worth examining.
    let mut idx = netrx.len() - skip;
    let mut walked = 0u32;
    while staged.len() < count && idx > 0 {
        idx -= 1;
        if netrx[idx].migrated && !allow_remigrate {
            walked += 1;
            continue;
        }
        // Removing below the walked-over entries shifts only indices above
        // `idx`, so the downward walk stays valid and the relative order of
        // everything left in the queue is preserved.
        let qr = netrx.remove(idx).expect("index in range");
        staged.push(Descriptor {
            id: trace.requests()[qr.idx].id,
            trace_idx: qr.idx,
            first_enqueued: qr.enqueued,
        });
    }
    *hint = if allow_remigrate {
        // Emergency staging consumes migrated entries too; whatever tail
        // run survives is unknown now.
        0
    } else {
        (skip + walked as usize) as u32
    };
}

/// Lifecycle of one tracked (timeout-armed) MIGRATE exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingState {
    /// Sent; neither landed at the destination nor timed out yet.
    Outstanding,
    /// Landed (accepted) at the destination, or its NACK reached us — the
    /// exchange is settled and the timeout is a no-op.
    Resolved,
    /// The timeout fired first: the source resteered the descriptors, and
    /// any late MIGRATE/ACK/NACK carrying this token is dropped to keep
    /// delivery at-most-once.
    TimedOut,
}

/// Sender-side record of one in-flight MIGRATE, kept only while the
/// resilience migrate-timeout is armed. The descriptors are a clone of the
/// message payload so a timeout can resteer them without the message.
#[derive(Debug)]
struct PendingMigrate {
    src: usize,
    dst: usize,
    descriptors: Vec<Descriptor>,
    state: PendingState,
}

/// All mutable fault-layer state. Boxed behind an `Option` that is `None`
/// exactly when the configured plan is empty, so healthy runs allocate
/// nothing and branch only on the discriminant.
struct FaultState {
    /// NoC drop/delay decider (its RNG stream is isolated from the
    /// workload's).
    noc: Option<NocFaultRng>,
    /// Dead flags per `[group][worker]`.
    dead: Vec<Vec<bool>>,
    /// Liveness epoch per `[group][worker]`; bumped on death so in-flight
    /// `WorkerDone` events from the pre-death service are recognized stale.
    epoch: Vec<Vec<u32>>,
    /// Dead flags per manager.
    mgr_dead: Vec<bool>,
    /// Takeover heir of each dead manager, once elected.
    heir: Vec<Option<usize>>,
    /// `backoff[src][dst]`: until when `src` refuses to plan migrations to
    /// `dst` (NACK-storm / timeout backoff).
    backoff: Vec<Vec<SimTime>>,
    /// Timeout-tracked MIGRATE exchanges, indexed by token - 1.
    pending: Vec<PendingMigrate>,
    /// Effective migrate timeout: the configured resilience value, or a
    /// 50 µs default whenever the plan kills managers (a MIGRATE to a dead
    /// manager would otherwise leak its send-FIFO slot forever).
    migrate_timeout: Option<SimDuration>,
    stats: FaultStats,
    /// Per-group "fault_mark" probe series; registered only when both
    /// telemetry and the fault plan are active, so the healthy export
    /// schema is unchanged.
    probe_ids: Vec<u32>,
}

/// Probe-series ids of one group, handed back by the sink at registration.
#[derive(Debug, Clone, Copy)]
struct ProbeIds {
    netrx: u32,
    workers: u32,
    ewma: u32,
    send: u32,
    recv: u32,
    migrations: u32,
}

struct AcWorld<'t, S: TelemetrySink> {
    trace: &'t Trace,
    cfg: &'t AcConfig,
    noc: MeshNoc,
    dispatch_op: SimDuration,
    intra_transfer: Transfer,
    groups: GroupStore,
    /// Cold per-group state, parallel to `groups` by id. Only serial
    /// control-plane code (ticks, messages, faults, dormancy) touches it,
    /// so it never moves into parallel shards.
    cold: Vec<GroupCold>,
    /// Arena for protocol-message payloads: `Ev::Msg` carries an 8-byte
    /// handle into this slab instead of an inline [`Message`] (whose
    /// MIGRATE variant owns a descriptor `Vec`).
    msg_slab: Slab<Message>,
    /// True when UPDATE broadcasts ride the shared log ([`UpdRec`]) instead
    /// of per-destination mailbox pushes: Elided control plane, no fault
    /// plan (no lossy-NoC draws), no tenancy (every group peers with every
    /// other). The mailbox path remains for everything else.
    upd_log_mode: bool,
    /// The shared UPDATE log, ordered by (non-decreasing) send time; one
    /// record per tick broadcast. Destinations consume it lazily through
    /// their `GroupCold::upd_cursor`.
    upd_log: VecDeque<UpdRec>,
    /// Absolute log index of `upd_log.front()` (the fold compaction drops
    /// consumed prefixes without renumbering cursors).
    upd_base: u64,
    /// Transposed delivery-offset matrix, `[dst * groups + src]` = wire
    /// latency + injection stagger of the `src → dst` UPDATE slot. Lets a
    /// destination reconstruct `deliver_at` with one add.
    upd_off_in: Vec<SimDuration>,
    /// Largest entry of `upd_off_in`: records older than `now - max` are
    /// deliverable everywhere and thus foldable.
    upd_max_off: SimDuration,
    /// Log length that triggers a fold compaction.
    upd_fold_at: usize,
    /// Fast drain eligibility: `upd_max_off < period`. Ticks live on a
    /// shared lattice (`period + k·stride`), so every record from a previous
    /// instant then has `deliver_at` *strictly* before any current tick —
    /// no seq tiebreaks, no in-flight parking — and every group's PR view
    /// coincides with one shared array. The drain collapses to a single
    /// per-instant pass over the log ([`Self::drain_update_log_fast`])
    /// instead of one cursor walk per group.
    upd_fast: bool,
    /// Fast-mode shared PR view: last broadcast queue length per source
    /// over all records with `send_time < now`. A ticking group snapshots
    /// this and overlays its own live queue length.
    upd_gq: Vec<u32>,
    topo: Vec<GroupTopo>,
    scratch: TickScratch,
    completed: usize,
    last_completed_at_tick: usize,
    stalled_ticks: u64,
    /// Cost of one runtime invocation through the sw/hw interface; constant
    /// per configuration (status read, update, `concurrency` sends).
    runtime_cost: SimDuration,
    /// Spacing of consecutive ticks of one group: the period is measured
    /// from the *end* of each invocation, so the lattice stride is
    /// `runtime_cost + period`. Every group ticks on the same lattice.
    tick_stride: SimDuration,
    /// Elided mode: the instant the current tick-seq block was reserved
    /// for, and its first seq. Group `g`'s tick at that instant uses slot
    /// `base + g`, so same-instant ticks pop in ascending group order — the
    /// legacy invariant — even when a group re-arms mid-period out of a
    /// dormancy wake.
    tick_block_instant: SimTime,
    tick_block_base: u64,
    stats: MigrationStats,
    result: SystemResult,
    /// Telemetry receiver. Generic so the disabled case ([`NullSink`])
    /// monomorphizes every hook away; hooks must only *read* simulation
    /// state (the non-perturbation invariant).
    tel: &'t mut S,
    /// Per-group probe-series ids; empty when the sink is disabled.
    probe_ids: Vec<ProbeIds>,
    /// Fault-layer state; `None` exactly when the plan is empty, which is
    /// the byte-identity guarantee: every fault branch hides behind this
    /// discriminant.
    faults: Option<Box<FaultState>>,
}

/// Serialization of back-to-back message injections from one runtime
/// invocation: each send occupies the manager tile's NoC injection port for
/// one 16 B flit time (~3 ns), so the `slot`-th message leaves that much
/// later.
///
/// `slot` counts *planned* send slots, not messages actually emitted: in
/// the MIGRATE loop a guard-blocked or empty-staged order keeps its slot,
/// and later sends do not compact forward (the send engine arms per-order
/// FIFO slots when the plan is drawn up, before the guard's register
/// compare resolves, and the port arbiter walks the slots at fixed
/// cadence). Audited in the manager-plane elision PR and pinned by
/// `stagger_is_per_planned_order`.
fn injection_stagger(slot: usize) -> SimDuration {
    SimDuration::from_ns(3) * slot as u64
}

/// Pushes a protocol-message event that carries its own queue seq, so a
/// dormancy wake can replay the exact `(time, seq)` tie-break the queue
/// would have applied (see [`AcWorld::wake_group`]). Consumes exactly one
/// seq — identical counter evolution to a plain `push`. The payload parks
/// in the message arena; the event carries only its handle.
fn push_msg(
    msgs: &mut Slab<Message>,
    q: &mut EventQueue<Ev>,
    at: SimTime,
    dst: usize,
    msg: Message,
) {
    let seq = q.reserve_seqs(1);
    let msg = msgs.insert(msg);
    q.push_at_seq(
        at,
        seq,
        Ev::Msg {
            dst: dst as u32,
            seq,
            msg,
        },
    );
}

/// [`AcWorld::send_msg`] as a free function over just the fault state, so
/// call sites holding borrows of other `AcWorld` fields (the tick's scratch
/// buffers) can still route sends through the faulty NoC. Without NoC faults
/// this is exactly [`push_msg`]. UPDATEs ride the lossy gossip channel (drop
/// or delay); MIGRATE/ACK/NACK ride the reliable channel (delay only) — loss
/// of those is modelled solely by dead destination tiles, which the
/// resilience timeout recovers from.
fn send_msg_via(
    faults: &mut Option<Box<FaultState>>,
    msgs: &mut Slab<Message>,
    q: &mut EventQueue<Ev>,
    at: SimTime,
    dst: usize,
    msg: Message,
) {
    let decision = match faults.as_mut().and_then(|f| f.noc.as_mut()) {
        None => NocDecision::Deliver,
        Some(noc) => match msg {
            Message::Update { .. } => noc.lossy(),
            _ => noc.reliable(),
        },
    };
    match decision {
        NocDecision::Deliver => push_msg(msgs, q, at, dst, msg),
        NocDecision::Drop => {
            faults
                .as_mut()
                .expect("fault decision")
                .stats
                .updates_dropped += 1;
        }
        NocDecision::Delay(d) => {
            faults
                .as_mut()
                .expect("fault decision")
                .stats
                .messages_delayed += 1;
            push_msg(msgs, q, at + d, dst, msg);
        }
    }
}

/// Where a quiet handler's externally-visible effects land.
///
/// Quiet events — the healthy intra-group request lifecycle (`Enqueue`,
/// `Deliver`, `WorkerDone`, `MgrOpDone`) — mutate only their own group plus
/// three global channels: follow-up event pushes, telemetry span points,
/// and completion records. Routing those through this trait lets one
/// handler body serve both the serial loop ([`SerialSink`] applies effects
/// directly) and a worker shard of the parallel engine (`par::ShardSink`
/// records them for an order-exact replay on the main thread).
trait QuietSink {
    fn push(&mut self, at: SimTime, ev: Ev);
    fn span(&mut self, track: u32, kind: u16, loc: u32, at: SimTime);
    fn complete(&mut self, c: Completion);
}

/// The serial loop's [`QuietSink`]: effects go straight to the event queue,
/// telemetry sink and result accumulator.
struct SerialSink<'a, S: TelemetrySink> {
    q: &'a mut EventQueue<Ev>,
    tel: &'a mut S,
    result: &'a mut SystemResult,
    completed: &'a mut usize,
}

impl<S: TelemetrySink> QuietSink for SerialSink<'_, S> {
    fn push(&mut self, at: SimTime, ev: Ev) {
        self.q.push(at, ev);
    }
    fn span(&mut self, track: u32, kind: u16, loc: u32, at: SimTime) {
        self.tel.span_point(track, kind, loc, at);
    }
    fn complete(&mut self, c: Completion) {
        self.result.record(c);
        *self.completed += 1;
    }
}

/// Read-only context a quiet handler needs, detached from [`AcWorld`] so
/// the same code can run inside a worker shard that owns nothing but its
/// partition's groups. The fault-layer inputs are per-group slices; the
/// empty slices / `false` flags are the healthy fast path, and the only one
/// shards ever see (faulted runs stay serial).
struct QuietEnv<'a> {
    trace: &'a Trace,
    cfg: &'a AcConfig,
    intra_transfer: &'a Transfer,
    dispatch_op: SimDuration,
    /// Liveness epochs of this group's workers; empty (all zero) on healthy
    /// runs. (Dead workers need no flag here: their `occ` slot sits at
    /// `u32::MAX`, which excludes them from dispatch.)
    epochs: &'a [u32],
    /// True when this group's manager has failed.
    mgr_dead: bool,
    /// True when straggler inflation must be consulted (non-empty plan).
    inflate: bool,
}

impl QuietEnv<'_> {
    /// Total on-core cost for trace request `idx`.
    fn total_cost(&self, idx: usize) -> SimDuration {
        let req = &self.trace.requests()[idx];
        self.cfg.stack.rx(req.size_bytes) + req.service + self.cfg.stack.tx(64)
    }

    /// Core id of worker `w` in group `g` (the id completions report).
    fn worker_core(&self, g: usize, w: usize) -> u32 {
        (g * self.cfg.group_size + 1 + w) as u32
    }

    fn epoch_of(&self, w: usize) -> u32 {
        self.epochs.get(w).copied().unwrap_or(0)
    }

    /// Healthy core of [`Ev::Enqueue`]: the request lands in its group's
    /// NetRX queue (takeover redirection and dormancy wake, both serial-only
    /// concerns, happen in the caller).
    fn enqueue(
        &self,
        g: usize,
        idx: usize,
        now: SimTime,
        grp: &mut Group,
        sink: &mut impl QuietSink,
    ) {
        let arrival = self.trace.requests()[idx].arrival;
        sink.span(idx as u32, span::ARRIVAL, g as u32, arrival);
        sink.span(idx as u32, span::NETRX_ENQUEUE, g as u32, now);
        let qr = QueuedRequest::new(idx, self.total_cost(idx), now);
        grp.push_netrx(qr);
        grp.arrivals_since_tick += 1;
        self.try_dispatch(g, now, grp, sink);
    }

    /// Intra-group dispatch: hardware (ACint) pushes immediately; ACrss
    /// serializes 70-cycle manager operations carrying up to
    /// `dispatch_batch` descriptors.
    fn try_dispatch(&self, g: usize, now: SimTime, grp: &mut Group, sink: &mut impl QuietSink) {
        if self.mgr_dead {
            // Nobody left to pop NetRX; the takeover heir adopts the queue.
            return;
        }
        match self.cfg.attachment {
            Attachment::Integrated => loop {
                if grp.netrx.is_empty() {
                    return;
                }
                let Some(w) = grp.free_worker(self.cfg.local_bound as u32) else {
                    return;
                };
                let qr = grp.netrx.pop_front().expect("checked non-empty");
                grp.occ[w] += 1;
                grp.busy += 1;
                let core = self.worker_core(g, w);
                sink.span(qr.idx as u32, span::DISPATCH, core, now);
                let req = &self.trace.requests()[qr.idx];
                let xfer = self.intra_transfer.latency(req.size_bytes);
                let h = grp.slab.insert(qr);
                sink.push(now + xfer, Ev::Deliver(g as u32, w as u32, h));
            },
            Attachment::RssPcie => {
                if grp.netrx.is_empty() {
                    return;
                }
                if grp.mgr_busy_until > now {
                    if !grp.dispatch_pending {
                        grp.dispatch_pending = true;
                        let at = grp.mgr_busy_until;
                        sink.push(at, Ev::MgrOpDone(g as u32));
                    }
                    return;
                }
                // One serialized op moves up to dispatch_batch descriptors.
                let mut moved = 0;
                let done_at = now + self.dispatch_op;
                while moved < self.cfg.dispatch_batch {
                    if grp.netrx.is_empty() {
                        break;
                    }
                    let Some(w) = grp.free_worker(self.cfg.local_bound as u32) else {
                        break;
                    };
                    let qr = grp.netrx.pop_front().expect("checked non-empty");
                    grp.occ[w] += 1;
                    grp.busy += 1;
                    let core = self.worker_core(g, w);
                    sink.span(qr.idx as u32, span::DISPATCH, core, now);
                    let h = grp.slab.insert(qr);
                    sink.push(done_at, Ev::Deliver(g as u32, w as u32, h));
                    moved += 1;
                }
                if moved > 0 {
                    grp.mgr_busy_until = done_at;
                    grp.dispatch_pending = true;
                    sink.push(done_at, Ev::MgrOpDone(g as u32));
                }
            }
        }
    }

    /// Healthy core of [`Ev::Deliver`] (the dead-worker bounce, a
    /// cross-group concern, happens in the caller). The handle resolves in
    /// the group's request arena; occupancy is untouched — the request
    /// moves from in-transit to running/waiting within the same worker.
    fn deliver(
        &self,
        g: usize,
        w: usize,
        h: Handle,
        now: SimTime,
        grp: &mut Group,
        sink: &mut impl QuietSink,
    ) {
        let qr = grp.slab.take(h);
        let core = self.worker_core(g, w);
        sink.span(qr.idx as u32, span::WORKER_ARRIVE, core, now);
        if grp.running[w].is_none() && grp.waiting[w].is_empty() {
            self.start_worker(g, w, qr, now, grp, sink);
        } else {
            grp.waiting[w].push_back(qr);
        }
    }

    fn start_worker(
        &self,
        g: usize,
        w: usize,
        qr: QueuedRequest,
        now: SimTime,
        grp: &mut Group,
        sink: &mut impl QuietSink,
    ) {
        debug_assert!(grp.running[w].is_none());
        let core = self.worker_core(g, w);
        sink.span(qr.idx as u32, span::SERVICE_START, core, now);
        // Straggler intervals inflate the wall time of service *started*
        // inside them. `inflate` returns the input bit-for-bit when no
        // straggler covers this core/instant, and the whole branch is
        // absent on healthy runs.
        let wall = if self.inflate {
            self.cfg.faults.inflate(core as usize, now, qr.remaining)
        } else {
            qr.remaining
        };
        grp.running[w] = Some(qr);
        sink.push(
            now + wall,
            Ev::WorkerDone(g as u32, w as u32, self.epoch_of(w)),
        );
    }

    /// Healthy core of [`Ev::WorkerDone`] (the stale-epoch check happens in
    /// the caller).
    fn worker_done(
        &self,
        g: usize,
        w: usize,
        now: SimTime,
        grp: &mut Group,
        sink: &mut impl QuietSink,
    ) {
        let qr = grp.running[w].take().expect("done on idle worker");
        grp.occ[w] -= 1;
        grp.busy -= 1;
        let core = self.worker_core(g, w);
        sink.span(qr.idx as u32, span::COMPLETE, core, now);
        let req = &self.trace.requests()[qr.idx];
        sink.complete(Completion {
            id: req.id,
            arrival: req.arrival,
            finish: now,
            core: core as usize,
            migrated: qr.migrated,
        });
        if let Some(next) = grp.waiting[w].pop_front() {
            self.start_worker(g, w, next, now, grp, sink);
        }
        self.try_dispatch(g, now, grp, sink);
    }

    fn mgr_op_done(&self, g: usize, now: SimTime, grp: &mut Group, sink: &mut impl QuietSink) {
        grp.dispatch_pending = false;
        self.try_dispatch(g, now, grp, sink);
    }
}

/// Splits an `AcWorld` into the disjoint borrows a quiet handler needs: a
/// [`QuietEnv`] for group `$g`, the group itself, and a [`SerialSink`] over
/// `$q` plus the world's telemetry/result fields. A macro rather than a
/// method so the field borrows stay visibly disjoint to the borrow checker.
macro_rules! quiet_parts {
    ($self:expr, $g:expr, $q:expr) => {{
        let (epochs, mgr_dead, inflate): (&[u32], bool, bool) = match &$self.faults {
            Some(f) => (&f.epoch[$g], f.mgr_dead[$g], true),
            None => (&[], false, false),
        };
        (
            QuietEnv {
                trace: $self.trace,
                cfg: $self.cfg,
                intra_transfer: &$self.intra_transfer,
                dispatch_op: $self.dispatch_op,
                epochs,
                mgr_dead,
                inflate,
            },
            &mut $self.groups[$g],
            SerialSink {
                q: $q,
                tel: &mut *$self.tel,
                result: &mut $self.result,
                completed: &mut $self.completed,
            },
        )
    }};
}

impl<S: TelemetrySink> AcWorld<'_, S> {
    /// Total on-core cost for trace request `idx`.
    fn total_cost(&self, idx: usize) -> SimDuration {
        let req = &self.trace.requests()[idx];
        self.cfg.stack.rx(req.size_bytes) + req.service + self.cfg.stack.tx(64)
    }

    /// Mesh tile of a manager core.
    fn mgr_tile(&self, g: usize) -> usize {
        g * self.cfg.group_size
    }

    fn elided(&self) -> bool {
        self.cfg.control_plane == ControlPlane::Elided
    }

    /// Dead-worker flags of group `g`; the empty slice on healthy runs.
    fn dead_of(&self, g: usize) -> &[bool] {
        match &self.faults {
            Some(f) => &f.dead[g],
            None => &[],
        }
    }

    /// True when group `g`'s manager has failed.
    fn mgr_is_dead(&self, g: usize) -> bool {
        self.faults.as_ref().is_some_and(|f| f.mgr_dead[g])
    }

    /// Liveness epoch of worker `(g, w)`; `0` on healthy runs.
    fn epoch_of(&self, g: usize, w: usize) -> u32 {
        self.faults.as_ref().map_or(0, |f| f.epoch[g][w])
    }

    /// Follows the takeover-heir chain from `g` to the group currently
    /// responsible for its NetRX queue. Identity on healthy runs, and for a
    /// dead group whose takeover has not completed yet (its queue is
    /// adopted wholesale when it does).
    fn live_group(&self, mut g: usize) -> usize {
        if let Some(fs) = &self.faults {
            while fs.mgr_dead[g] {
                match fs.heir[g] {
                    Some(h) => g = h,
                    None => break,
                }
            }
        }
        g
    }

    /// Samples group `g`'s "fault_mark" probe series with a fault-kind code
    /// (1 = worker fail, 2 = manager fail, 3 = takeover, 4 = migrate
    /// timeout). No-op unless both telemetry and the fault plan are active.
    fn fault_mark(&mut self, g: usize, now: SimTime, code: f64) {
        if self.tel.enabled() {
            if let Some(fs) = &self.faults {
                if !fs.probe_ids.is_empty() {
                    self.tel.probe(fs.probe_ids[g], now, code);
                }
            }
        }
    }

    /// Sends a protocol message through the (possibly faulty) NoC. Without
    /// NoC faults this is exactly [`push_msg`]. UPDATEs ride the lossy
    /// gossip channel (drop or delay); MIGRATE/ACK/NACK ride the reliable
    /// channel (delay only) — loss of those is modelled solely by dead
    /// destination tiles, which the resilience timeout recovers from.
    fn send_msg(&mut self, q: &mut EventQueue<Ev>, at: SimTime, dst: usize, msg: Message) {
        send_msg_via(&mut self.faults, &mut self.msg_slab, q, at, dst, msg);
    }

    /// Applies every mailboxed UPDATE whose legacy event would have popped
    /// before this tick — `(deliver_at, seq) < (now, tick_seq)` — in seq
    /// order (the mailbox is append-ordered by seq). Records still in
    /// flight stay parked for a later tick.
    fn drain_mailbox(&mut self, g: usize, now: SimTime) {
        let c = &mut self.cold[g];
        if c.mailbox.is_empty() {
            return;
        }
        let cutoff = (now, c.tick_seq);
        let mut kept = 0;
        for i in 0..c.mailbox.len() {
            let e = c.mailbox[i];
            if (e.deliver_at, e.seq) < cutoff {
                c.q_view[e.src as usize] = e.queue_len;
            } else {
                c.mailbox[kept] = e;
                kept += 1;
            }
        }
        c.mailbox.truncate(kept);
    }

    /// Fast-mode drain (`upd_max_off < period`): consumes every log record
    /// from previous tick instants into the shared PR view, once per
    /// instant (the first ticking group pays it; peers at the same instant
    /// find the log already at the frontier).
    ///
    /// Exactness: ticks live on the lattice `period + k·stride`, so a
    /// record with `send_time < now` was sent at least a stride ago and
    /// `deliver_at ≤ send_time + max_off < send_time + period ≤ now`
    /// strictly — deliverable to *every* destination with no seq
    /// comparison. A record with `send_time ≥ now` has `deliver_at > now`
    /// (positive offsets) — deliverable to none. Applying in log order is
    /// the mailbox's append-by-seq order, so last-writer-wins per source
    /// leaves the identical view the per-destination drains would.
    fn drain_update_log_fast(&mut self, now: SimTime) {
        while let Some(&rec) = self.upd_log.front() {
            if rec.send_time >= now {
                break;
            }
            self.upd_gq[rec.src as usize] = rec.queue_len;
            self.upd_log.pop_front();
        }
    }

    /// Update-log counterpart of [`Self::drain_mailbox`]: walks group `g`'s
    /// cursor over the shared log, reconstructing each record's
    /// `(deliver_at, seq)` for this destination and applying it against the
    /// same `(now, tick_seq)` cutoff. Parked pending entries (older log
    /// positions, hence smaller seqs) are retried first, so applications
    /// happen in exactly the mailbox's append-by-seq order.
    fn drain_update_log(&mut self, g: usize, now: SimTime) {
        let groups_n = self.cold.len();
        let c = &mut self.cold[g];
        let cutoff = (now, c.tick_seq);
        if !c.upd_pending.is_empty() {
            let mut kept = 0;
            for i in 0..c.upd_pending.len() {
                let e = c.upd_pending[i];
                if (e.deliver_at, e.seq) < cutoff {
                    c.q_view[e.src as usize] = e.queue_len;
                } else {
                    c.upd_pending[kept] = e;
                    kept += 1;
                }
            }
            c.upd_pending.truncate(kept);
        }
        let mut idx = (c.upd_cursor - self.upd_base) as usize;
        while let Some(&rec) = self.upd_log.get(idx) {
            // The log is send-time-sorted and delivery offsets are strictly
            // positive (distinct tiles, ≥ 1 hop), so a record sent at or
            // after `now` cannot beat this tick's cutoff — nor can any
            // later one. Stop; the cursor stays on the frontier.
            if rec.send_time >= now {
                break;
            }
            idx += 1;
            let src = rec.src as usize;
            if src == g {
                continue;
            }
            let slot = if g < src { g } else { g - 1 };
            let seq = rec.base_seq + slot as u64;
            let deliver_at = rec.send_time + self.upd_off_in[g * groups_n + src];
            if (deliver_at, seq) < cutoff {
                c.q_view[src] = rec.queue_len;
            } else {
                c.upd_pending.push(MailEntry {
                    deliver_at,
                    seq,
                    src: rec.src,
                    queue_len: rec.queue_len,
                });
            }
        }
        c.upd_cursor = self.upd_base + idx as u64;
    }

    /// Bounds the shared log: every record old enough to be deliverable
    /// everywhere (`send_time + max offset < now`) is folded directly into
    /// the PR views of the groups still behind it — dormant laggards whose
    /// cursors would otherwise pin the log — and the prefix is dropped.
    ///
    /// Early application is exact. A folded record's delivery key is
    /// strictly below any future tick's cutoff (its `deliver_at < now ≤`
    /// that tick's `now`), so the laggard's next drain would have applied
    /// it anyway; last-writer-wins per source makes the in-order direct
    /// writes equivalent. Ordering against parked pending entries holds
    /// because an older same-source pending entry has an even smaller
    /// `deliver_at`, hence is also past due and flushes first.
    fn fold_update_log(&mut self, now: SimTime) {
        let max_off = self.upd_max_off;
        let point = self
            .upd_log
            .partition_point(|r| r.send_time + max_off < now);
        if point == 0 {
            return;
        }
        let fold_to = self.upd_base + point as u64;
        for g in 0..self.cold.len() {
            let c = &mut self.cold[g];
            if c.upd_cursor >= fold_to {
                continue;
            }
            if !c.upd_pending.is_empty() {
                let mut kept = 0;
                for i in 0..c.upd_pending.len() {
                    let e = c.upd_pending[i];
                    if e.deliver_at < now {
                        c.q_view[e.src as usize] = e.queue_len;
                    } else {
                        c.upd_pending[kept] = e;
                        kept += 1;
                    }
                }
                c.upd_pending.truncate(kept);
            }
            for idx in (c.upd_cursor - self.upd_base) as usize..point {
                let rec = self.upd_log[idx];
                if rec.src as usize != g {
                    c.q_view[rec.src as usize] = rec.queue_len;
                }
            }
            c.upd_cursor = fold_to;
        }
        self.upd_base = fold_to;
        self.upd_log.drain(..point);
    }

    /// Arms group `g`'s next period timer at `at`, or — Elided mode, when
    /// the group is fully quiescent — parks it in idle-tick fast-forward
    /// with no event at all.
    fn schedule_next_tick(
        &mut self,
        g: usize,
        at: SimTime,
        quiescent: bool,
        q: &mut EventQueue<Ev>,
    ) {
        if !self.elided() {
            q.push(at, Ev::Tick(g as u32));
            return;
        }
        if quiescent {
            let c = &mut self.cold[g];
            c.dormant = true;
            c.next_virtual_tick = at;
            return;
        }
        // One block of `G` seqs per tick instant, slot = group index: ticks
        // sharing an instant pop in ascending group order no matter when
        // (or out of which wake) each group armed its timer.
        if self.tick_block_instant != at {
            self.tick_block_instant = at;
            self.tick_block_base = q.reserve_seqs(self.groups.len() as u64);
        }
        let seq = self.tick_block_base + g as u64;
        self.cold[g].tick_seq = seq;
        q.push_at_seq(at, seq, Ev::Tick(g as u32));
    }

    /// Credits `ticks` skipped idle invocations to group `g`, the last of
    /// which would have run at `last`: tick/UPDATE counters move
    /// analytically, the load estimator replays the exact EWMA zero
    /// observations, and on ACrss the manager-occupancy watermark advances
    /// as the latest invocation would have left it.
    fn account_idle_ticks(&mut self, g: usize, ticks: u64, last: SimTime) {
        self.stats.ticks += ticks;
        self.stats.update_messages += ticks * (self.topo[g].peers.len() as u64 - 1);
        self.cold[g]
            .estimator
            .fast_forward_idle(ticks, self.cfg.period);
        if self.cfg.attachment == Attachment::RssPcie {
            let grp = &mut self.groups[g];
            grp.mgr_busy_until = grp.mgr_busy_until.max(last + self.runtime_cost);
        }
    }

    /// Brings a dormant group back to the event loop because a real event —
    /// an arrival (`waker_seq = None`) or a MIGRATE carrying its queue seq —
    /// reaches it at `now`. Credits every virtual idle tick the event-based
    /// path would have run before the waking event, then re-arms the real
    /// timer at the next period boundary.
    fn wake_group(
        &mut self,
        g: usize,
        now: SimTime,
        waker_seq: Option<u64>,
        q: &mut EventQueue<Ev>,
    ) {
        if !self.cold[g].dormant {
            return;
        }
        let stride = self.tick_stride;
        let mut pending = 0u64;
        let mut last = SimTime::ZERO;
        {
            let c = &mut self.cold[g];
            while c.next_virtual_tick < now {
                last = c.next_virtual_tick;
                c.next_virtual_tick = last + stride;
                pending += 1;
            }
        }
        // A period boundary can land exactly on the wake instant; whether
        // the tick precedes the waking event is the same (time, seq)
        // comparison the queue would have made. An arrival holds a
        // trace-reserved seq, smaller than any tick's — event first. A
        // MIGRATE's seq is compared against the tick-seq slot this group
        // owns at the shared instant; the sender armed its own timer for
        // the same instant, so the block is already reserved.
        if self.cold[g].next_virtual_tick == now {
            let tick_first = match waker_seq {
                None => false,
                Some(seq) => {
                    debug_assert_eq!(
                        self.tick_block_instant, now,
                        "a lattice-tied MIGRATE implies a sender that armed this instant"
                    );
                    seq > self.tick_block_base + g as u64
                }
            };
            if tick_first {
                let c = &mut self.cold[g];
                last = c.next_virtual_tick;
                c.next_virtual_tick = last + stride;
                pending += 1;
            }
        }
        if pending > 0 {
            self.account_idle_ticks(g, pending, last);
        }
        self.cold[g].dormant = false;
        let at = self.cold[g].next_virtual_tick;
        self.schedule_next_tick(g, at, false, q);
    }

    /// End-of-run accounting: the event-based path keeps ticking idle
    /// groups until the final completion, so groups still in fast-forward
    /// are credited every virtual tick strictly before `end_time`.
    fn finalize_idle_accounting(&mut self, end_time: SimTime) {
        let stride = self.tick_stride;
        for g in 0..self.cold.len() {
            if !self.cold[g].dormant {
                continue;
            }
            let mut pending = 0u64;
            let mut last = SimTime::ZERO;
            {
                let c = &mut self.cold[g];
                while c.next_virtual_tick < end_time {
                    last = c.next_virtual_tick;
                    c.next_virtual_tick = last + stride;
                    pending += 1;
                }
            }
            if pending > 0 {
                self.account_idle_ticks(g, pending, last);
            }
        }
    }

    /// Intra-group dispatch (see [`QuietEnv::try_dispatch`] for the body);
    /// this wrapper serves the serial-only call sites (fault recovery,
    /// message handling).
    fn try_dispatch(&mut self, g: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        let (env, grp, mut sink) = quiet_parts!(self, g, q);
        env.try_dispatch(g, now, grp, &mut sink);
    }

    /// Returns a recovered request to the NetRX queue currently serving
    /// group `g` (the group itself, or its takeover heir), stamping the
    /// resteer span and the fault-stats counter. Returns the target group so
    /// the caller can re-dispatch once per batch.
    fn resteer(&mut self, g: usize, idx: usize, migrated: bool, now: SimTime) -> usize {
        let tgt = self.live_group(g);
        self.tel
            .span_point(idx as u32, span::FAULT_RESTEER, tgt as u32, now);
        let mut qr = QueuedRequest::new(idx, self.total_cost(idx), now);
        qr.migrated = migrated;
        self.groups[tgt].push_netrx(qr);
        if let Some(fs) = &mut self.faults {
            fs.stats.resteered_requests += 1;
        }
        tgt
    }

    /// [`FaultEv::WorkerFail`]: worker `(g, w)` dies permanently. Its
    /// running and locally-queued requests restart from the front of a live
    /// NetRX queue (their partial service is lost — fail-stop, not
    /// checkpointed); descriptors still in intra-group transit bounce when
    /// they arrive (see `Ev::Deliver`).
    fn fault_worker_fail(&mut self, g: usize, w: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        self.wake_group(g, now, None, q);
        {
            let fs = self.faults.as_mut().expect("fault event without plan");
            fs.dead[g][w] = true;
            fs.epoch[g][w] += 1;
            fs.stats.worker_failures += 1;
        }
        {
            // The dead worker's running/waiting load leaves the group's
            // outstanding count now; descriptors still in transit stay
            // counted until their `Deliver` bounces. The `u32::MAX` sentinel
            // removes the worker from every future dispatch argmin.
            let grp = &mut self.groups[g];
            let drained = grp.running[w].is_some() as u32 + grp.waiting[w].len() as u32;
            grp.busy -= drained;
            grp.occ[w] = u32::MAX;
        }
        let mut tgt = g;
        if let Some(qr) = self.groups[g].running[w].take() {
            tgt = self.resteer(g, qr.idx, qr.migrated, now);
        }
        while let Some(qr) = self.groups[g].waiting[w].pop_front() {
            tgt = self.resteer(g, qr.idx, qr.migrated, now);
        }
        self.fault_mark(g, now, 1.0);
        self.try_dispatch(tgt, now, q);
    }

    /// [`FaultEv::ManagerFail`]: group `g`'s manager tile dies. Its workers
    /// finish what they already hold, but nothing new is dispatched, its
    /// timer never re-arms, and messages addressed to it vanish. Recovery
    /// arrives with the scheduled [`FaultEv::Takeover`].
    fn fault_manager_fail(&mut self, g: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        // Wake first: the idle-tick credit must be taken while the group is
        // still (officially) alive, and the wake's re-armed timer fires
        // harmlessly into the dead tile.
        self.wake_group(g, now, None, q);
        {
            let fs = self.faults.as_mut().expect("fault event without plan");
            fs.mgr_dead[g] = true;
            fs.stats.manager_failures += 1;
        }
        q.push(
            now + self.cfg.resilience.takeover_delay,
            Ev::Fault(FaultEv::Takeover(g as u32)),
        );
        self.fault_mark(g, now, 2.0);
    }

    /// [`FaultEv::Takeover`]: detection delay elapsed; the lowest-numbered
    /// live peer adopts dead group `g`'s NetRX queue and future arrivals
    /// steered at it.
    fn fault_takeover(&mut self, g: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        let heir = {
            let fs = self.faults.as_ref().expect("fault event without plan");
            self.topo[g]
                .peers
                .iter()
                .copied()
                .find(|&p| p != g && !fs.mgr_dead[p])
        };
        let Some(h) = heir else {
            // Every peer is dead too; the queue is stranded.
            return;
        };
        {
            let fs = self.faults.as_mut().expect("fault event without plan");
            fs.heir[g] = Some(h);
            fs.stats.takeovers += 1;
        }
        self.wake_group(h, now, None, q);
        while let Some(qr) = self.groups[g].netrx.pop_front() {
            self.tel
                .span_point(qr.idx as u32, span::FAULT_RESTEER, h as u32, now);
            self.groups[h].push_netrx(qr);
            if let Some(fs) = &mut self.faults {
                fs.stats.resteered_requests += 1;
            }
        }
        self.fault_mark(g, now, 3.0);
        self.try_dispatch(h, now, q);
    }

    /// [`FaultEv::MigrateTimeout`]: the resilience window for tracked
    /// exchange `id` expired. If it is still unsettled, declare it lost:
    /// reclaim the send-FIFO slot, back off the destination, and resteer the
    /// staged descriptors locally (they keep their migrated flag, so the
    /// at-most-once rule still holds).
    fn fault_migrate_timeout(&mut self, id: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        let backoff = self.cfg.resilience.nack_backoff;
        let (src, descriptors) = {
            let fs = self.faults.as_mut().expect("fault event without plan");
            let p = &mut fs.pending[id];
            if p.state != PendingState::Outstanding {
                return;
            }
            p.state = PendingState::TimedOut;
            fs.stats.migrate_timeouts += 1;
            let dst = p.dst;
            let src = p.src;
            if let Some(b) = backoff {
                fs.backoff[src][dst] = now + b;
            }
            (src, std::mem::take(&mut fs.pending[id].descriptors))
        };
        self.cold[src].send_inflight = self.cold[src].send_inflight.saturating_sub(1);
        let mut tgt = src;
        for d in descriptors {
            tgt = self.resteer(src, d.trace_idx, true, now);
        }
        self.fault_mark(src, now, 4.0);
        self.try_dispatch(tgt, now, q);
    }

    fn runtime_tick(&mut self, g: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        if self.mgr_is_dead(g) {
            // A tick armed before the manager died fires into a dead tile:
            // nothing runs and the timer is never re-armed.
            return;
        }
        self.stats.ticks += 1;
        let cfg = self.cfg;

        // 0. Elided control plane: fold in UPDATEs whose events would have
        //    popped before this tick. (No-op in EventDriven mode — the
        //    mailbox stays empty and q_view is written by Msg events.)
        if self.upd_fast {
            self.drain_update_log_fast(now);
        } else if self.upd_log_mode {
            // Fold check rides the drain (the log grows ≤ 1 record per
            // tick); folding first is harmless — it applies exactly the
            // records this drain's cutoff would pass anyway.
            if self.upd_log.len() >= self.upd_fold_at {
                self.fold_update_log(now);
            }
            self.drain_update_log(g, now);
        } else {
            self.drain_mailbox(g, now);
        }

        // 1. Refresh the load estimate from the arrival counter.
        let arrivals = self.groups[g].arrivals_since_tick;
        self.groups[g].arrivals_since_tick = 0;
        self.cold[g].estimator.observe(arrivals, cfg.period);
        let offered = self.cold[g].estimator.offered_erlangs();

        // 2. Threshold from the prediction model at the measured load.
        let threshold = cfg.threshold.threshold(cfg.workers_per_group(), offered);

        // Telemetry probes sample the tick-time state the runtime just
        // computed. Pure reads — dormant (fast-forwarded) groups simply
        // don't sample, exactly as they don't tick.
        if self.tel.enabled() {
            let ids = self.probe_ids[g];
            let grp = &self.groups[g];
            self.tel.probe(ids.netrx, now, grp.netrx.len() as f64);
            self.tel.probe(ids.workers, now, grp.busy as f64);
            self.tel.probe(ids.ewma, now, offered);
            self.tel
                .probe(ids.send, now, self.cold[g].send_inflight as f64);
            self.tel.probe(ids.recv, now, grp.recv_fifo as f64);
        }

        // 3. Runtime cost through the sw/hw interface (status read, update,
        //    `concurrency` sends); on ACrss it occupies the manager core and
        //    delays dispatching.
        let cost = self.runtime_cost;
        let send_time = now + cost;
        if cfg.attachment == Attachment::RssPcie {
            let grp = &mut self.groups[g];
            grp.mgr_busy_until = grp.mgr_busy_until.max(send_time);
        }

        // 4. Snapshot q: own queue live, remote from UPDATE-fed PR view
        //    (the shared one in fast mode — every group's view coincides).
        let own_len = self.groups[g].netrx.len() as u32;
        let q_view = &mut self.scratch.q_view;
        q_view.clear();
        if self.upd_fast {
            q_view.extend_from_slice(&self.upd_gq);
            q_view[g] = own_len;
        } else {
            self.cold[g].q_view[g] = own_len;
            q_view.extend_from_slice(&self.cold[g].q_view);
        }

        // Under tenancy, UPDATE and MIGRATE stay within the tenant's
        // partition of groups; otherwise every manager is a peer. The peer
        // list and tile ids are precomputed in `topo`.
        let peers = &self.topo[g].peers;
        let src_tile = self.topo[g].tile;

        // 5. Broadcast UPDATE to every other (peer) manager. The elided
        //    path parks the record in the destination's mailbox under the
        //    seq the legacy event would occupy; same physics, zero events.
        // In update-log mode the whole fan-out collapses to one shared log
        // record: the block reservation advances the seq counter exactly as
        // the per-peer single reservations would (nothing between them ever
        // touches the counter), and each destination reconstructs its own
        // `(deliver_at, seq)` from the record at drain time. O(1) per tick
        // instead of O(groups).
        let elided = self.cfg.control_plane == ControlPlane::Elided;
        if self.upd_log_mode {
            let n = self.topo[g].update_offsets.len() as u64;
            let base_seq = q.reserve_seqs(n);
            self.upd_log.push_back(UpdRec {
                send_time,
                base_seq,
                src: g as u32,
                queue_len: own_len,
            });
            self.stats.update_messages += n;
        }
        let fanout = if self.upd_log_mode {
            0 // logged above in one record
        } else {
            self.topo[g].update_offsets.len()
        };
        for idx in 0..fanout {
            // Wire latency + port stagger were folded per slot at
            // construction (`GroupTopo::update_offsets`).
            let (dst, offset) = self.topo[g].update_offsets[idx];
            let dst = dst as usize;
            let mut deliver_at = send_time + offset;
            // UPDATEs ride the lossy gossip channel of the faulty NoC. The
            // draw happens here for both control planes so the decision
            // sequence is a function of send order alone.
            if let Some(noc) = self.faults.as_mut().and_then(|f| f.noc.as_mut()) {
                match noc.lossy() {
                    NocDecision::Deliver => {}
                    NocDecision::Drop => {
                        self.faults
                            .as_mut()
                            .expect("drawn above")
                            .stats
                            .updates_dropped += 1;
                        self.stats.update_messages += 1; // sent, then lost
                        continue;
                    }
                    NocDecision::Delay(d) => {
                        self.faults
                            .as_mut()
                            .expect("drawn above")
                            .stats
                            .messages_delayed += 1;
                        deliver_at += d;
                    }
                }
            }
            if elided {
                let seq = q.reserve_seqs(1);
                self.cold[dst].mailbox.push(MailEntry {
                    deliver_at,
                    seq,
                    src: g as u32,
                    queue_len: own_len,
                });
            } else {
                push_msg(
                    &mut self.msg_slab,
                    q,
                    deliver_at,
                    dst,
                    Message::Update {
                        src: g,
                        queue_len: own_len,
                    },
                );
            }
            self.stats.update_messages += 1;
        }

        // A group is quiescent when this tick saw a system with nothing to
        // do at all: no queued or running work, no arrivals since the last
        // tick, and no protocol exchange in flight. Every future tick would
        // then be a pure no-op (an idle queue plans no migrations), so the
        // timer can be elided and fast-forwarded instead (Elided mode).
        let quiescent = elided && arrivals == 0 && own_len == 0 && {
            // `busy == 0` covers running, waiting and in-transit work in one
            // maintained counter — exactly the three scans it replaced.
            let grp = &self.groups[g];
            grp.netrx.is_empty()
                && grp.busy == 0
                && grp.recv_fifo == 0
                && !grp.dispatch_pending
                && self.cold[g].send_inflight == 0
        };

        // Predict-only mode: mark everything queued beyond T as a predicted
        // violator, touch nothing, and re-arm.
        if cfg.predict_only {
            let netrx = &self.groups[g].netrx;
            if netrx.len() > threshold {
                for qr in netrx.iter().skip(threshold) {
                    self.stats.predicted.insert(qr.idx);
                }
            }
            if self.completed < self.trace.len() {
                self.schedule_next_tick(g, send_time + cfg.period, quiescent, q);
            }
            return;
        }

        // 6. Plan and issue MIGRATE messages over the tenant-local view.
        //
        // Emergency drain: when every worker of this (manager-alive) group
        // has died, the planner's steady-state logic is meaningless — the
        // queue can only shrink by leaving. Override the plan with
        // up-to-`concurrency` bulk evacuations to the best-looking live
        // peer, bypassing the guard and the at-most-once restriction.
        let emergency = self
            .faults
            .as_ref()
            .is_some_and(|fs| !self.groups[g].netrx.is_empty() && fs.dead[g].iter().all(|&d| d));
        let orders = &mut self.scratch.orders;
        if emergency {
            orders.clear();
            let fs = self.faults.as_ref().expect("emergency implies faults");
            let best = peers
                .iter()
                .copied()
                .filter(|&p| p != g && !fs.mgr_dead[p] && now >= fs.backoff[g][p])
                .min_by_key(|&p| (q_view[p], p));
            if let Some(dst) = best {
                for _ in 0..cfg.concurrency {
                    orders.push(MigrationOrder {
                        dst,
                        count: cfg.bulk,
                    });
                }
            }
        } else {
            let use_patterns = matches!(cfg.patterns, crate::config::PatternPolicy::All);
            if self.upd_fast {
                // Fast mode: every group plans over the shared view plus a
                // one-entry overlay (its live queue), so the extreme
                // ranking is computed once per tick instant and patched
                // per group in O(concurrency) instead of rescanned in
                // O(groups). The shared view is stable within an instant —
                // records broadcast at it only drain at later ones.
                if self.scratch.ext_instant != now {
                    self.scratch.shared_ext.rank(&self.upd_gq, cfg.concurrency);
                    self.scratch.ext_instant = now;
                }
                plan_patched_into(
                    g,
                    own_len,
                    q_view.len(),
                    self.upd_gq[g],
                    &self.scratch.shared_ext,
                    threshold,
                    cfg.bulk,
                    cfg.concurrency,
                    use_patterns,
                    &mut self.scratch.plan,
                    orders,
                );
                #[cfg(debug_assertions)]
                {
                    let oracle = &mut self.scratch.oracle_orders;
                    if use_patterns {
                        plan_migrations_into(
                            g,
                            q_view,
                            threshold,
                            cfg.bulk,
                            cfg.concurrency,
                            &mut self.scratch.oracle_plan,
                            oracle,
                        );
                    } else {
                        plan_threshold_only_into(
                            g,
                            q_view,
                            threshold,
                            cfg.bulk,
                            cfg.concurrency,
                            &mut self.scratch.oracle_plan,
                            oracle,
                        );
                    }
                    debug_assert_eq!(
                        orders, oracle,
                        "patched planner diverged from the full-scan oracle"
                    );
                }
            } else {
                let identity = peers.len() == q_view.len();
                let (me_local, plan_q): (usize, &[u32]) = if identity {
                    // No tenancy: the peer list is the identity permutation,
                    // so plan straight over the view — no projected copy, no
                    // index remap afterwards.
                    (g, q_view)
                } else {
                    let local_q = &mut self.scratch.local_q;
                    local_q.clear();
                    local_q.extend(peers.iter().map(|&j| q_view[j]));
                    (self.topo[g].me_local, local_q)
                };
                if use_patterns {
                    plan_migrations_into(
                        me_local,
                        plan_q,
                        threshold,
                        cfg.bulk,
                        cfg.concurrency,
                        &mut self.scratch.plan,
                        orders,
                    );
                } else {
                    plan_threshold_only_into(
                        me_local,
                        plan_q,
                        threshold,
                        cfg.bulk,
                        cfg.concurrency,
                        &mut self.scratch.plan,
                        orders,
                    );
                }
                if !identity {
                    // Map local destination indices back to global ids.
                    for o in orders.iter_mut() {
                        o.dst = peers[o.dst];
                    }
                }
            }
        }
        let mut migrate_sends = 0u64;
        for (i, order) in self.scratch.orders.iter().enumerate() {
            // Degradation: honor the NACK/timeout backoff window, and stop
            // planning into a failed manager once its takeover completed —
            // that election is the moment failure knowledge propagates, so
            // MIGRATEs sent before it are dropped at the dead receiver and
            // recovered by the migrate timeout. Both branches exist only
            // under a non-empty fault plan.
            if let Some(fs) = &mut self.faults {
                let known_dead = fs.mgr_dead[order.dst] && fs.heir[order.dst].is_some();
                if known_dead || now < fs.backoff[g][order.dst] {
                    fs.stats.backoff_skipped += 1;
                    continue;
                }
            }
            if !emergency
                && cfg.guard_enabled
                && !guard_allows(q_view[g], q_view[order.dst], order.count)
            {
                self.stats.guard_blocked += 1;
                continue;
            }
            if self.cold[g].send_inflight >= 16 {
                break; // send FIFO full
            }
            {
                let grp = &mut self.groups[g];
                stage_from_tail(
                    &mut grp.netrx,
                    self.trace,
                    order.count,
                    &mut self.scratch.staged,
                    &mut grp.stage_hint,
                    emergency,
                );
            }
            if self.scratch.staged.is_empty() {
                continue;
            }
            q_view[g] = q_view[g].saturating_sub(self.scratch.staged.len() as u32);
            for d in &self.scratch.staged {
                self.stats.predicted.insert(d.trace_idx);
                self.tel
                    .span_point(d.trace_idx as u32, span::MIGRATE_STAGE, g as u32, now);
            }
            // The message owns its descriptor payload; `take` hands the
            // buffer over, so only actual MIGRATE sends (rare) allocate.
            let descriptors = std::mem::take(&mut self.scratch.staged);
            // With the resilience timeout armed, record the exchange so a
            // destination that dies (or already died) cannot strand the
            // descriptors or leak the send-FIFO slot.
            let mut token = 0u64;
            if let Some(fs) = &mut self.faults {
                if let Some(tmo) = fs.migrate_timeout {
                    let id = fs.pending.len();
                    fs.pending.push(PendingMigrate {
                        src: g,
                        dst: order.dst,
                        descriptors: descriptors.clone(),
                        state: PendingState::Outstanding,
                    });
                    token = id as u64 + 1;
                    q.push(
                        send_time + injection_stagger(i) + tmo,
                        Ev::Fault(FaultEv::MigrateTimeout(id as u32)),
                    );
                }
                if emergency {
                    fs.stats.emergency_migrations += descriptors.len() as u64;
                }
            }
            let msg = Message::Migrate {
                src: g,
                dst: order.dst,
                descriptors,
                token,
            };
            let lat = self
                .noc
                .latency(src_tile, self.topo[order.dst].tile, msg.wire_bytes());
            // `i` enumerates *planned* orders: a guard-blocked or
            // empty-staged order above still advanced the slot index, so
            // this send keeps its original injection slot rather than
            // compacting forward (see `injection_stagger`).
            let stagger = injection_stagger(i);
            self.cold[g].send_inflight += 1;
            self.stats.migrate_messages += 1;
            migrate_sends += 1;
            send_msg_via(
                &mut self.faults,
                &mut self.msg_slab,
                q,
                send_time + lat + stagger,
                order.dst,
                msg,
            );
        }
        if self.tel.enabled() {
            self.tel
                .probe(self.probe_ids[g].migrations, now, migrate_sends as f64);
        }

        // 7. Re-arm the period timer while work remains. The next period is
        //    measured from the *end* of this invocation: a runtime whose
        //    cost exceeds P (e.g. the MSR interface at aggressive periods)
        //    degrades dispatch throughput but can never consume the whole
        //    manager — matching a real software loop, which alternates
        //    between runtime work and dispatching.
        if self.completed < self.trace.len() {
            if self.completed == self.last_completed_at_tick {
                self.stalled_ticks += 1;
                if self.faults.is_some() {
                    // A faulted run can legitimately never finish (e.g. every
                    // worker died with resilience off). Degrade gracefully:
                    // stop re-arming this group's timer instead of asserting;
                    // the run ends when the queue drains, and the unserved
                    // requests simply never complete.
                    if self.stalled_ticks >= 100_000 {
                        return;
                    }
                } else {
                    assert!(
                        self.stalled_ticks < 10_000_000,
                        "simulation stalled: {} ticks with no completion ({} / {} done)",
                        self.stalled_ticks,
                        self.completed,
                        self.trace.len()
                    );
                }
            } else {
                self.stalled_ticks = 0;
                self.last_completed_at_tick = self.completed;
            }
            self.schedule_next_tick(g, send_time + cfg.period, quiescent, q);
        }
    }

    /// Applies a protocol message's effects and dispatches any NetRX work
    /// it unblocked.
    fn handle_msg(
        &mut self,
        dst: usize,
        seq: u64,
        msg: Message,
        now: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        if let Some(g) = self.handle_msg_inner(dst, seq, msg, now, q) {
            self.try_dispatch(g, now, q);
        }
    }

    /// [`handle_msg`](Self::handle_msg) minus the trailing dispatch: returns
    /// the group whose NetRX gained work (MIGRATE landings, NACK returns) so
    /// the caller can route the dispatch through its own [`QuietSink`] — the
    /// serial oracle pushes `Deliver`s onto the event queue, the elided
    /// worker plane onto its analytic timeline. The seq reservation order is
    /// unchanged: the dispatch always ran last in the original body.
    fn handle_msg_inner(
        &mut self,
        dst: usize,
        seq: u64,
        msg: Message,
        now: SimTime,
        q: &mut EventQueue<Ev>,
    ) -> Option<usize> {
        // A dead manager tile receives nothing: the message is lost at the
        // wire. Senders recover via the staged-migration timeout (MIGRATE)
        // or never notice (UPDATE/ACK — an ACK to a dead source is moot,
        // the source's queues were already drained by takeover).
        if self.mgr_is_dead(dst) {
            return None;
        }
        match msg {
            Message::Update { src, queue_len } => {
                // EventDriven only; the elided path never creates Update
                // events, and dormancy exists only in Elided mode.
                debug_assert!(!self.cold[dst].dormant, "update at a dormant group");
                self.cold[dst].q_view[src] = queue_len;
                None
            }
            Message::Migrate {
                src,
                descriptors,
                token,
                ..
            } => {
                // A MIGRATE is the one protocol message that can reach a
                // group in idle fast-forward; replay its skipped ticks
                // before it lands.
                self.wake_group(dst, now, Some(seq), q);
                // Exactly-once: if the sender already declared this exchange
                // lost (timeout fired and resteered the descriptors), a
                // late-arriving copy must not also land here.
                if token != 0 {
                    if let Some(fs) = &self.faults {
                        if fs.pending[token as usize - 1].state == PendingState::TimedOut {
                            return None;
                        }
                    }
                }
                let src_tile = self.mgr_tile(src);
                let dst_tile = self.mgr_tile(dst);
                let stalled = !self.cfg.faults.fifo_stalls.is_empty()
                    && self.cfg.faults.recv_stalled(dst, now);
                if self.groups[dst].recv_fifo >= 16 || stalled {
                    // Full (or fault-stalled) receive FIFO: reject with NACK.
                    self.stats.nacked_messages += 1;
                    self.stats.nacked_requests += descriptors.len() as u64;
                    let nack = Message::Nack {
                        src: dst,
                        descriptors,
                        token,
                    };
                    let lat = self.noc.latency(dst_tile, src_tile, nack.wire_bytes());
                    self.send_msg(q, now + lat, src, nack);
                    return None;
                }
                // The exchange is now settled at the destination: the
                // descriptors land here no matter what happens to the ACK,
                // so the sender's timeout must not re-inject them.
                if token != 0 {
                    if let Some(fs) = &mut self.faults {
                        let p = &mut fs.pending[token as usize - 1];
                        p.state = PendingState::Resolved;
                        p.descriptors.clear();
                    }
                }
                self.groups[dst].recv_fifo += 1;
                // The migrator drains the FIFO into the MRs/NetRX at
                // register speed (~1ns per descriptor).
                let drain = SimDuration::from_ns(1) * descriptors.len() as u64;
                q.push(now + drain, Ev::RecvDrained(dst as u32));
                self.stats.migrated_requests += descriptors.len() as u64;
                self.stats.migrated_per_group[dst] += descriptors.len() as u64;
                let accepted = descriptors.len();
                for d in descriptors {
                    self.tel
                        .span_point(d.trace_idx as u32, span::MIGRATE_LAND, dst as u32, now);
                    let mut qr = QueuedRequest::new(d.trace_idx, self.total_cost(d.trace_idx), now);
                    qr.migrated = true;
                    self.groups[dst].push_netrx(qr);
                }
                let ack = Message::Ack {
                    src: dst,
                    accepted,
                    token,
                };
                let lat = self.noc.latency(dst_tile, src_tile, ack.wire_bytes());
                self.send_msg(q, now + lat, src, ack);
                Some(dst)
            }
            Message::Ack { token, .. } => {
                // The sender keeps send_inflight > 0 until this arrives, so
                // it can never have gone dormant in between.
                debug_assert!(!self.cold[dst].dormant, "ack at a dormant group");
                if token != 0 {
                    if let Some(fs) = &mut self.faults {
                        let p = &mut fs.pending[token as usize - 1];
                        if p.state == PendingState::TimedOut {
                            // Timeout already reclaimed the FIFO slot and
                            // resteered; this stale ACK must change nothing.
                            return None;
                        }
                        p.state = PendingState::Resolved;
                        p.descriptors.clear();
                    }
                }
                self.cold[dst].send_inflight = self.cold[dst].send_inflight.saturating_sub(1);
                None
            }
            Message::Nack {
                src: nack_src,
                descriptors,
                token,
            } => {
                debug_assert!(!self.cold[dst].dormant, "nack at a dormant group");
                if token != 0 {
                    if let Some(fs) = &mut self.faults {
                        let p = &mut fs.pending[token as usize - 1];
                        if p.state == PendingState::TimedOut {
                            return None;
                        }
                        p.state = PendingState::Resolved;
                        p.descriptors.clear();
                    }
                }
                // NACK-storm backoff: stop hammering a destination that just
                // refused us.
                if let Some(b) = self.cfg.resilience.nack_backoff {
                    if let Some(fs) = &mut self.faults {
                        fs.backoff[dst][nack_src] = now + b;
                    }
                }
                // Rejected migration: requests stay at the source (restored
                // from the MRs). They remain eligible for future migration.
                self.cold[dst].send_inflight = self.cold[dst].send_inflight.saturating_sub(1);
                for d in descriptors {
                    self.tel
                        .span_point(d.trace_idx as u32, span::NACK_RETURN, dst as u32, now);
                    let qr = QueuedRequest::new(d.trace_idx, self.total_cost(d.trace_idx), now);
                    self.groups[dst].push_netrx(qr);
                }
                Some(dst)
            }
        }
    }
}

impl<S: TelemetrySink> World for AcWorld<'_, S> {
    type Event = Ev;

    #[inline]
    fn observe(&mut self, now: SimTime, seq: u64, ev: &Ev) {
        // Gated exactly like probe-sample computation: against a
        // non-recording sink the descriptor math compiles away.
        if self.tel.records_events() {
            let (kind, group, payload) = describe_ev(ev, &self.msg_slab);
            self.tel.event_record(now, seq, kind, group, payload);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::Enqueue(g, idx) => {
                let idx = idx as usize;
                // NIC steering is oblivious to manager failures until the
                // takeover rewrites the steering table: arrivals aimed at a
                // dead manager land at the group that adopted its queue.
                let g = {
                    let lg = self.live_group(g as usize);
                    if lg != g as usize {
                        if let Some(fs) = &mut self.faults {
                            fs.stats.redirected_arrivals += 1;
                        }
                    }
                    lg
                };
                // Arrivals wake a group out of idle fast-forward; the
                // skipped ticks are replayed before the request lands.
                self.wake_group(g, now, None, q);
                let (env, grp, mut sink) = quiet_parts!(self, g, q);
                env.enqueue(g, idx, now, grp, &mut sink);
            }
            Ev::Deliver(g, w, h) => {
                let (g, w) = (g as usize, w as usize);
                // A group with work in flight can never be dormant.
                debug_assert!(!self.cold[g].dormant, "deliver at a dormant group");
                if self.dead_of(g).get(w).copied().unwrap_or(false) {
                    // The worker died while this descriptor was in transit:
                    // bounce it back to whichever NetRX now serves the group.
                    let qr = self.groups[g].slab.take(h);
                    self.groups[g].busy -= 1;
                    let tgt = self.live_group(g);
                    self.tel
                        .span_point(qr.idx as u32, span::FAULT_RESTEER, tgt as u32, now);
                    let mut back = QueuedRequest::new(qr.idx, self.total_cost(qr.idx), now);
                    back.migrated = qr.migrated;
                    self.groups[tgt].push_netrx(back);
                    if let Some(fs) = &mut self.faults {
                        fs.stats.resteered_requests += 1;
                    }
                    self.try_dispatch(tgt, now, q);
                    return;
                }
                let (env, grp, mut sink) = quiet_parts!(self, g, q);
                env.deliver(g, w, h, now, grp, &mut sink);
            }
            Ev::WorkerDone(g, w, epoch) => {
                let (g, w) = (g as usize, w as usize);
                // A completion from before the worker's death is stale: the
                // request it would complete was already resteered.
                if epoch != self.epoch_of(g, w) {
                    return;
                }
                debug_assert!(!self.cold[g].dormant, "completion at a dormant group");
                let (env, grp, mut sink) = quiet_parts!(self, g, q);
                env.worker_done(g, w, now, grp, &mut sink);
            }
            Ev::MgrOpDone(g) => {
                let g = g as usize;
                let (env, grp, mut sink) = quiet_parts!(self, g, q);
                env.mgr_op_done(g, now, grp, &mut sink);
            }
            Ev::Tick(g) => self.runtime_tick(g as usize, now, q),
            Ev::Msg { dst, seq, msg } => {
                let msg = self.msg_slab.take(msg);
                self.handle_msg(dst as usize, seq, msg, now, q);
            }
            Ev::RecvDrained(g) => {
                let g = g as usize;
                self.groups[g].recv_fifo = self.groups[g].recv_fifo.saturating_sub(1);
            }
            Ev::Fault(fe) => match fe {
                FaultEv::WorkerFail(g, w) => self.fault_worker_fail(g as usize, w as usize, now, q),
                FaultEv::ManagerFail(g) => self.fault_manager_fail(g as usize, now, q),
                FaultEv::Takeover(g) => self.fault_takeover(g as usize, now, q),
                FaultEv::MigrateTimeout(id) => self.fault_migrate_timeout(id as usize, now, q),
            },
        }
    }

    fn should_stop(&self, _now: SimTime) -> bool {
        self.completed >= self.trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::predictor::ThresholdPolicy;
    use workload::arrival::PoissonProcess;
    use workload::dist::ServiceDistribution;
    use workload::trace::TraceBuilder;

    fn trace(dist: ServiceDistribution, load: f64, cores: usize, n: usize, conns: u32) -> Trace {
        let rate = PoissonProcess::rate_for_load(load, cores, dist.mean());
        TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(n)
            .connections(conns)
            .seed(77)
            .build()
    }

    #[test]
    fn completes_all_requests() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.6, 64, 20_000, 256);
        let mut ac = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean()));
        let r = ac.run_detailed(&t);
        assert_eq!(r.system.completions.len(), 20_000);
    }

    #[test]
    fn migration_fires_under_imbalance() {
        // Few connections => heavy RSS imbalance across 4 NetRX queues.
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.8, 64, 60_000, 5);
        let mut ac = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean()));
        let r = ac.run_detailed(&t);
        assert!(r.stats.ticks > 0);
        assert!(
            r.stats.migrated_requests > 0,
            "imbalance must trigger migrations: {:?}",
            r.stats
        );
        assert!(r.stats.update_messages > 0);
        // Some completions carry the migrated flag.
        assert!(r.system.completions.iter().any(|c| c.migrated));
    }

    #[test]
    fn migration_improves_tail_under_imbalance() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.8, 64, 60_000, 5);
        let mut on = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean()));
        let mut off_cfg = AcConfig::ac_int(4, 16, dist.mean());
        off_cfg.migration_enabled = false;
        let mut off = Altocumulus::new(off_cfg);
        let p99_on = on.run(&t).p99();
        let p99_off = off.run(&t).p99();
        assert!(
            p99_on < p99_off,
            "migration should cut the tail: on={p99_on} off={p99_off}"
        );
    }

    #[test]
    fn no_migration_when_disabled() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.8, 64, 10_000, 5);
        let mut cfg = AcConfig::ac_int(4, 16, dist.mean());
        cfg.migration_enabled = false;
        let r = Altocumulus::new(cfg).run_detailed(&t);
        assert_eq!(r.stats.ticks, 0);
        assert_eq!(r.stats.migrated_requests, 0);
        assert!(r.system.completions.iter().all(|c| !c.migrated));
    }

    #[test]
    fn single_group_never_migrates() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.7, 16, 5000, 64);
        let r = Altocumulus::new(AcConfig::ac_int(1, 16, dist.mean())).run_detailed(&t);
        assert_eq!(r.stats.migrate_messages, 0);
        assert_eq!(r.system.completions.len(), 5000);
    }

    #[test]
    fn at_most_once_migration() {
        // Every completion that migrated did so exactly once by
        // construction; verify staging skips migrated entries by checking
        // stats consistency: migrated_requests counts landings, and no
        // request id can land twice because landed entries are flagged.
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.85, 64, 40_000, 5);
        let r = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean())).run_detailed(&t);
        let migrated_completions = r.system.completions.iter().filter(|c| c.migrated).count();
        assert_eq!(migrated_completions as u64, r.stats.migrated_requests);
    }

    #[test]
    fn rss_attachment_has_higher_floor() {
        // PCIe + serialized manager dispatch must show a higher minimum
        // latency than the integrated NIC.
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.3, 32, 5000, 64);
        let int = Altocumulus::new(AcConfig::ac_int(2, 16, dist.mean())).run(&t);
        let rss = Altocumulus::new(AcConfig::ac_rss(2, 16, dist.mean())).run(&t);
        assert!(rss.hist.min() > int.hist.min());
    }

    #[test]
    fn deterministic() {
        let dist = ServiceDistribution::bimodal_paper();
        let t = trace(dist, 0.6, 32, 10_000, 16);
        let a = Altocumulus::new(AcConfig::ac_int(2, 16, dist.mean())).run_detailed(&t);
        let b = Altocumulus::new(AcConfig::ac_int(2, 16, dist.mean())).run_detailed(&t);
        assert_eq!(a.system.p99(), b.system.p99());
        assert_eq!(a.stats.migrated_requests, b.stats.migrated_requests);
        assert_eq!(a.stats.migrate_messages, b.stats.migrate_messages);
    }

    #[test]
    fn naive_threshold_migrates_less() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.85, 64, 40_000, 5);
        let model = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean())).run_detailed(&t);
        let mut naive_cfg = AcConfig::ac_int(4, 16, dist.mean());
        naive_cfg.threshold = ThresholdPolicy::NaiveUpperBound { slo_ratio: 10.0 };
        let naive = Altocumulus::new(naive_cfg).run_detailed(&t);
        // k*L+1 = 151 for 15 workers: the queue rarely reaches it, so the
        // threshold trigger fires less often than the model's.
        assert!(
            naive.stats.predicted.len() <= model.stats.predicted.len(),
            "naive predicted {} > model {}",
            naive.stats.predicted.len(),
            model.stats.predicted.len()
        );
    }

    #[test]
    fn predict_only_marks_without_moving() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.85, 64, 40_000, 5);
        let mut cfg = AcConfig::ac_int(4, 16, dist.mean());
        cfg.predict_only = true;
        let r = Altocumulus::new(cfg).run_detailed(&t);
        assert!(
            !r.stats.predicted.is_empty(),
            "imbalance must trigger predictions"
        );
        assert_eq!(r.stats.migrate_messages, 0);
        assert_eq!(r.stats.migrated_requests, 0);
        assert!(r.system.completions.iter().all(|c| !c.migrated));
        // Identical dynamics to a migration-disabled run.
        let mut off = AcConfig::ac_int(4, 16, dist.mean());
        off.migration_enabled = false;
        let base = Altocumulus::new(off).run_detailed(&t);
        assert_eq!(r.system.p99(), base.system.p99());
    }

    #[test]
    fn guard_disabled_migrates_more() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.85, 64, 40_000, 5);
        let on = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean())).run_detailed(&t);
        let mut cfg = AcConfig::ac_int(4, 16, dist.mean());
        cfg.guard_enabled = false;
        let off = Altocumulus::new(cfg).run_detailed(&t);
        assert_eq!(off.stats.guard_blocked, 0);
        assert!(
            off.stats.migrate_messages >= on.stats.migrate_messages,
            "without the guard at least as many messages fire"
        );
    }

    #[test]
    fn threshold_only_patterns_still_migrate() {
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.85, 64, 40_000, 5);
        let mut cfg = AcConfig::ac_int(4, 16, dist.mean());
        cfg.patterns = crate::config::PatternPolicy::ThresholdOnly;
        let r = Altocumulus::new(cfg).run_detailed(&t);
        assert!(r.stats.migrated_requests > 0);
        assert_eq!(r.system.completions.len(), 40_000);
    }

    #[test]
    fn tenancy_isolates_cores_and_migrations() {
        use crate::tenancy::Tenancy;
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.8, 64, 30_000, 64);
        let mut cfg = AcConfig::ac_int(4, 16, dist.mean());
        let tenancy = Tenancy::even(4, 2);
        cfg.tenancy = Some(tenancy.clone());
        let r = Altocumulus::new(cfg).run_detailed(&t);
        assert_eq!(r.system.completions.len(), 30_000);
        // Every request executed on a core of its own tenant's groups.
        for c in &r.system.completions {
            let req = &t.requests()[c.id.0 as usize];
            let group = c.core / 16;
            assert_eq!(
                tenancy.tenant_of_group(group),
                tenancy.tenant_of_conn(req.conn),
                "request leaked across the tenant boundary"
            );
        }
    }

    #[test]
    fn noisy_neighbor_cannot_hurt_isolated_tenant() {
        use crate::tenancy::Tenancy;
        use workload::request::{ConnectionId, Request, RequestId};
        use workload::trace::Trace;
        // Tenant 0 (even conns) sends a massive burst; tenant 1 (odd conns)
        // trickles. Under isolation, tenant 1's latency stays at the floor.
        let svc = SimDuration::from_ns(850);
        let mut reqs = Vec::new();
        let mut id = 0u64;
        let push = |arrival_ns: u64, conn: u32, reqs: &mut Vec<Request>, id: &mut u64| {
            reqs.push(Request {
                id: RequestId(*id),
                arrival: SimTime::from_ns(arrival_ns),
                service: svc,
                kind: workload::request::RequestKind::Generic,
                conn: ConnectionId(conn),
                size_bytes: 300,
            });
            *id += 1;
        };
        let mut t_ns = 0u64;
        for i in 0..30_000u64 {
            t_ns += 20; // tenant 0: 50 MRPS burst, far beyond its half
            push(t_ns, (i % 8) as u32 * 2, &mut reqs, &mut id);
            if i % 100 == 0 {
                push(t_ns + 1, 1 + (i % 8) as u32 * 2, &mut reqs, &mut id);
            }
        }
        reqs.sort_by_key(|r| (r.arrival, r.id.0));
        for (i, r) in reqs.iter_mut().enumerate() {
            r.id = RequestId(i as u64);
        }
        let trace = Trace::new(reqs);
        let mut cfg = AcConfig::ac_int(4, 16, svc);
        let tenancy = Tenancy::even(4, 2);
        cfg.tenancy = Some(tenancy.clone());
        let r = Altocumulus::new(cfg).run_detailed(&trace);
        // Tenant 1 (odd conns) latencies stay near the no-load floor.
        let mut victim_worst = SimDuration::ZERO;
        for c in &r.system.completions {
            let req = &trace.requests()[c.id.0 as usize];
            if tenancy.tenant_of_conn(req.conn) == 1 {
                victim_worst = victim_worst.max(c.latency());
            }
        }
        assert!(
            victim_worst < SimDuration::from_us(3),
            "isolated tenant's worst latency {victim_worst} polluted by the noisy neighbor"
        );
    }

    fn staging_trace(n: usize) -> Trace {
        use workload::request::{ConnectionId, Request, RequestId};
        let reqs = (0..n)
            .map(|i| Request {
                id: RequestId(i as u64),
                arrival: SimTime::from_ns(i as u64 * 10),
                service: SimDuration::from_ns(100),
                kind: workload::request::RequestKind::Generic,
                conn: ConnectionId(0),
                size_bytes: 64,
            })
            .collect();
        Trace::new(reqs)
    }

    fn qr(idx: usize, migrated: bool) -> QueuedRequest {
        let mut q =
            QueuedRequest::new(idx, SimDuration::from_ns(100), SimTime::from_ns(idx as u64));
        q.migrated = migrated;
        q
    }

    fn stage(netrx: &mut VecDeque<QueuedRequest>, trace: &Trace, count: usize) -> Vec<Descriptor> {
        let mut staged = Vec::new();
        let mut hint = 0;
        stage_from_tail(netrx, trace, count, &mut staged, &mut hint, false);
        assert_eq!(
            hint as usize,
            netrx
                .iter()
                .rev()
                .take_while(|q| q.migrated)
                .count()
                .min(hint as usize),
            "returned hint must only cover the migrated tail run"
        );
        staged
    }

    #[test]
    fn stage_hint_accumulates_and_short_circuits() {
        let t = staging_trace(6);
        // head -> tail: 0, 1(m), 2, 3(m), 4(m), 5
        let mut netrx: VecDeque<_> = [
            qr(0, false),
            qr(1, true),
            qr(2, false),
            qr(3, true),
            qr(4, true),
            qr(5, false),
        ]
        .into_iter()
        .collect();
        let mut staged = Vec::new();
        let mut hint = 0;
        stage_from_tail(&mut netrx, &t, 2, &mut staged, &mut hint, false);
        assert_eq!(
            staged.iter().map(|d| d.trace_idx).collect::<Vec<_>>(),
            vec![5, 2]
        );
        // Removing 5 and 2 collapsed the walked-over migrated entries into
        // one contiguous tail run, which the hint now covers exactly.
        assert_eq!(
            netrx.iter().map(|q| q.idx).collect::<Vec<_>>(),
            vec![0, 1, 3, 4]
        );
        assert_eq!(hint, 2, "walked-over migrated entries feed the hint");
        // Second staging starts below the hinted run and finds request 0.
        stage_from_tail(&mut netrx, &t, 2, &mut staged, &mut hint, false);
        assert_eq!(
            staged.iter().map(|d| d.trace_idx).collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(hint, 3, "the whole remaining queue is known migrated");
        // Third staging is an O(1) no-op: hint covers the queue.
        stage_from_tail(&mut netrx, &t, 2, &mut staged, &mut hint, false);
        assert!(staged.is_empty());
        assert_eq!(netrx.len(), 3);
        // An emergency (re-migration allowed) drain ignores and resets it.
        stage_from_tail(&mut netrx, &t, 8, &mut staged, &mut hint, true);
        assert_eq!(staged.len(), 3);
        assert_eq!(hint, 0);
    }

    #[test]
    fn stage_from_tail_takes_tail_first() {
        let t = staging_trace(4);
        let mut netrx: VecDeque<_> = (0..4).map(|i| qr(i, false)).collect();
        let staged = stage(&mut netrx, &t, 2);
        assert_eq!(
            staged.iter().map(|d| d.trace_idx).collect::<Vec<_>>(),
            vec![3, 2],
            "staging walks the queue from the tail"
        );
        assert_eq!(
            netrx.iter().map(|q| q.idx).collect::<Vec<_>>(),
            vec![0, 1],
            "the head of the queue is untouched"
        );
    }

    #[test]
    fn stage_from_tail_skips_migrated_and_preserves_order() {
        let t = staging_trace(5);
        // head -> tail: 0, 1(migrated), 2(migrated), 3, 4
        let mut netrx: VecDeque<_> = [
            qr(0, false),
            qr(1, true),
            qr(2, true),
            qr(3, false),
            qr(4, false),
        ]
        .into_iter()
        .collect();
        let staged = stage(&mut netrx, &t, 3);
        assert_eq!(
            staged.iter().map(|d| d.trace_idx).collect::<Vec<_>>(),
            vec![4, 3, 0],
            "already-migrated entries are never re-staged"
        );
        assert_eq!(
            netrx.iter().map(|q| q.idx).collect::<Vec<_>>(),
            vec![1, 2],
            "skipped entries keep their relative order"
        );
        assert!(netrx.iter().all(|q| q.migrated));
    }

    #[test]
    fn stage_from_tail_caps_at_count() {
        let t = staging_trace(6);
        let mut netrx: VecDeque<_> = (0..6).map(|i| qr(i, false)).collect();
        let staged = stage(&mut netrx, &t, 2);
        assert_eq!(staged.len(), 2);
        assert_eq!(netrx.len(), 4);
        // Entries beyond the cap — including migrated ones nearer the head —
        // are left exactly where they were.
        assert_eq!(
            netrx.iter().map(|q| q.idx).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn stage_from_tail_drains_short_queue() {
        let t = staging_trace(3);
        let mut netrx: VecDeque<_> = [qr(0, true), qr(1, false)].into_iter().collect();
        let staged = stage(&mut netrx, &t, 10);
        assert_eq!(
            staged.iter().map(|d| d.trace_idx).collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(
            netrx.iter().map(|q| q.idx).collect::<Vec<_>>(),
            vec![0],
            "migrated entry survives a full drain"
        );
        assert!(stage(&mut netrx, &t, 10).is_empty());
        let descriptors = stage(&mut VecDeque::new(), &t, 4);
        assert!(descriptors.is_empty());
    }

    #[test]
    fn streaming_keeps_event_queue_small() {
        // Tentpole acceptance: peak event-queue population is O(in-flight),
        // not O(trace) — the peak is a *virtual-ledger* value, identical
        // across both worker planes.
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.6, 64, 20_000, 256);
        let mut ac = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean()));
        let r = ac.run_detailed(&t);
        assert_eq!(r.system.completions.len(), 20_000);
        assert!(
            r.summary.peak_queue < 8_000,
            "peak queue {} should stay far below the {}-event trace",
            r.summary.peak_queue,
            t.len()
        );
        // The default (elided) worker plane keeps arrivals and the manager
        // plane as main-loop events but batches the rest; the per-event
        // oracle pays a Deliver and a WorkerDone per request on top.
        assert!(r.summary.events > 20_000, "events: {}", r.summary.events);
        let mut ev_cfg = AcConfig::ac_int(4, 16, dist.mean());
        ev_cfg.worker_plane = WorkerPlane::EventDriven;
        let ev = Altocumulus::new(ev_cfg).run_detailed(&t);
        assert!(ev.summary.events > 40_000, "events: {}", ev.summary.events);
        assert!(
            r.summary.events + 40_000 <= ev.summary.events,
            "worker elision should remove two events per request: {} vs {}",
            r.summary.events,
            ev.summary.events
        );
        assert_eq!(r.summary.peak_queue, ev.summary.peak_queue);
    }

    #[test]
    fn injection_stagger_is_3ns_per_slot() {
        assert_eq!(injection_stagger(0), SimDuration::ZERO);
        assert_eq!(injection_stagger(1), SimDuration::from_ns(3));
        assert_eq!(injection_stagger(5), SimDuration::from_ns(15));
    }

    #[test]
    fn stagger_is_per_planned_order() {
        // Pins the audited injection-slot semantics: the MIGRATE loop's
        // stagger index enumerates *planned* orders, so a guard-blocked or
        // empty-staged order keeps its slot and later sends do NOT compact
        // forward. The golden values below come from a run where blocked
        // orders and sends coexist; compacting the slots would shift MIGRATE
        // delivery times and change every number.
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.85, 64, 12_000, 5);
        let r = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean())).run_detailed(&t);
        assert!(
            r.stats.guard_blocked > 0 && r.stats.migrate_messages > 0,
            "pin needs blocked orders interleaved with sends: {:?}",
            r.stats
        );
        assert_eq!(r.system.end_time, SimTime::from_ps(192_720_703));
        assert_eq!(r.system.p99(), SimDuration::from_ps(2_244_608));
        assert_eq!(r.stats.migrate_messages, 691);
        assert_eq!(r.stats.guard_blocked, 1646);
        assert_eq!(r.stats.migrated_requests, 2364);
    }

    #[test]
    fn low_load_dormancy_matches_event_driven_oracle() {
        // At 5% load most groups are quiescent most of the time, so the
        // idle-tick fast-forward carries the bulk of the manager plane —
        // and must still be indistinguishable from the event-driven oracle.
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.05, 64, 5_000, 5);
        let el = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean())).run_detailed(&t);
        let mut cfg = AcConfig::ac_int(4, 16, dist.mean());
        cfg.control_plane = crate::config::ControlPlane::EventDriven;
        let ev = Altocumulus::new(cfg).run_detailed(&t);
        assert_eq!(el.system.completions, ev.system.completions);
        assert_eq!(el.system.end_time, ev.system.end_time);
        assert_eq!(el.stats.ticks, ev.stats.ticks);
        assert!(el.stats.ticks > 0);
        assert_eq!(el.stats.update_messages, ev.stats.update_messages);
        assert_eq!(el.stats.migrated_requests, ev.stats.migrated_requests);
        assert!(
            el.summary.events * 2 < ev.summary.events,
            "idle elision should remove most events: {} vs {}",
            el.summary.events,
            ev.summary.events
        );
    }

    #[test]
    fn worker_plane_matches_event_driven_oracle() {
        // Moderate load with migrations in play: the analytic timelines
        // carry the whole request lifecycle and must be indistinguishable
        // from the per-event oracle in every observable — including the
        // virtual-ledger peak — while processing strictly fewer events.
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let t = trace(dist, 0.6, 64, 8_000, 5);
        let el = Altocumulus::new(AcConfig::ac_int(4, 16, dist.mean())).run_detailed(&t);
        let mut cfg = AcConfig::ac_int(4, 16, dist.mean());
        cfg.worker_plane = WorkerPlane::EventDriven;
        let ev = Altocumulus::new(cfg).run_detailed(&t);
        assert_eq!(el.system.completions, ev.system.completions);
        assert_eq!(el.system.end_time, ev.system.end_time);
        assert_eq!(el.stats, ev.stats);
        assert!(el.stats.migrated_requests > 0, "load should migrate");
        assert_eq!(el.summary.peak_queue, ev.summary.peak_queue);
        assert_eq!(el.summary.end_time, ev.summary.end_time);
        assert_eq!(el.summary.stopped_early, ev.summary.stopped_early);
        assert!(
            el.summary.events < ev.summary.events,
            "worker elision should cut events: {} vs {}",
            el.summary.events,
            ev.summary.events
        );
    }

    #[test]
    fn msr_interface_slower_manager() {
        // MSR runtime cost occupies the ACrss manager longer; throughput at
        // saturation must not improve.
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(100));
        let t = trace(dist, 0.95, 32, 40_000, 8);
        let isa = Altocumulus::new(AcConfig::ac_rss(2, 16, dist.mean())).run(&t);
        let mut msr_cfg = AcConfig::ac_rss(2, 16, dist.mean());
        msr_cfg.interface = crate::hw::interface::Interface::Msr;
        let msr = Altocumulus::new(msr_cfg).run(&t);
        assert!(msr.p99() >= isa.p99());
    }
}
