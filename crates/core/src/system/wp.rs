//! The elided worker plane: analytic service timelines with lazy
//! materialization (`WorkerPlane::Elided`).
//!
//! The per-event oracle pushes one main-queue event per worker-plane step —
//! `Deliver` for every descriptor in flight, `WorkerDone` for every service
//! completion, `MgrOpDone` for every serialized ACrss dispatch op. After
//! PR 3 elided the manager plane these dominate the event count, and every
//! one of them is *locally determined*: the moment a quiet handler
//! schedules it, its time is final and only that group's own quiet handlers
//! can consume it. This engine therefore never lets them touch the calendar
//! queue. Quiet handlers run against a [`TimelineSink`] that parks their
//! pushes on one analytic [`Timeline`] keyed by real `(time, seq)` ranks —
//! each seq still reserved from the main queue via
//! [`EventQueue::reserve_seqs`] at the exact instant the oracle would have
//! pushed, so the global tie-break lattice is untouched — and the main loop
//! lazily materializes timeline entries by merging the timeline head with
//! the main-queue head.
//!
//! # Byte-identity argument
//!
//! The loop below replays [`run_streamed`](simcore::event::run_streamed)
//! over the *virtual* queue (main queue ∪ held event ∪ timeline):
//!
//! - **Order.** Every event, global or batched, executes at its exact
//!   `(time, seq)` rank. The one cached main-queue pop (`held`) stays valid
//!   across any run of timeline events because quiet handlers only ever
//!   push onto the timeline; any injection refill forces the cached pop
//!   back into the queue first (injected arrivals can out-rank it).
//! - **Refill.** Arrivals are topped up exactly when the oracle would:
//!   before executing a virtual head at `time >= source.next_time()` —
//!   ties refill, because reserved arrival seqs precede dynamic ones.
//! - **Accounting.** `peak_queue` samples the virtual population
//!   (`queue.len() + held + timeline.len()`) at the oracle's exact sample
//!   points (after each refill and each handled event), the same virtual
//!   ledger discipline the parallel engine uses; `end_time` and
//!   `stopped_early` come from a per-event stop check. Only
//!   `summary.events` legitimately differs: like the elided control plane,
//!   batched events are not main-loop events, so the count drops by the
//!   number of elided worker-plane steps.
//! - **Invalidation.** There is none to handle here by construction: the
//!   events that could truncate a planned timeline mid-batch — fault
//!   strikes (epoch bumps, straggler inflation, resteers) — exist only
//!   under a non-empty fault plan, and [`super::Altocumulus::run_with`]
//!   downgrades those runs wholesale to `WorkerPlane::EventDriven`, exactly
//!   as fault plans downgrade the parallel engine. Migrate landings and
//!   mailbox drains are main-queue events, so they interleave with the
//!   timeline at their natural rank and need no truncation either.
//!
//! RNG draws: the worker plane makes none (NIC steering draws in the
//! injector, straggler inflation only under a fault plan), so draw counts
//! are identical trivially.

use simcore::event::{EventQueue, EventSource, RunSummary, World};
use simcore::telemetry::TelemetrySink;
use simcore::time::SimTime;
use simcore::timeline::Timeline;

use super::{AcWorld, Completion, Ev, QuietEnv, QuietSink, SystemResult};

/// The elided worker plane's [`QuietSink`]: follow-up events go to the
/// analytic timeline under a main-queue-reserved seq; spans and completions
/// apply directly, exactly like the serial oracle's sink.
struct TimelineSink<'a, S: TelemetrySink> {
    q: &'a mut EventQueue<Ev>,
    tl: &'a mut Timeline<Ev>,
    tel: &'a mut S,
    result: &'a mut SystemResult,
    completed: &'a mut usize,
}

/// One timeline lane per event *class*, not per producer: each class's
/// schedule times are near-monotone on their own — `Deliver` is
/// `now + intra-transfer latency` (constant under the coherent transfer,
/// so the lane is a pure FIFO), `MgrOpDone` is `now + dispatch_op`
/// (constant, FIFO), and `WorkerDone` is `now + service cost` (sorted up
/// to the service-time spread). Three lanes keep the merge frontier at
/// most three keys deep — the heap degenerates into a couple of compares —
/// while the per-lane backwards-scan insert absorbs any non-constant
/// latency a future transfer model might introduce.
const LANE_DELIVER: usize = 0;
const LANE_DONE: usize = 1;
const LANE_MGR_OP: usize = 2;
const LANES: usize = 3;

impl<S: TelemetrySink> QuietSink for TimelineSink<'_, S> {
    fn push(&mut self, at: SimTime, ev: Ev) {
        let lane = match &ev {
            Ev::Deliver(..) => LANE_DELIVER,
            Ev::WorkerDone(..) => LANE_DONE,
            Ev::MgrOpDone(_) => LANE_MGR_OP,
            _ => unreachable!("quiet handlers only schedule worker-plane events"),
        };
        let seq = self.q.reserve_seqs(1);
        self.tl.push(lane, at, seq, ev);
    }
    fn span(&mut self, track: u32, kind: u16, loc: u32, at: SimTime) {
        self.tel.span_point(track, kind, loc, at);
    }
    fn complete(&mut self, c: Completion) {
        self.result.record(c);
        *self.completed += 1;
    }
}

/// The healthy-run [`QuietEnv`] plus group `$g` and a [`TimelineSink`], as
/// visibly disjoint field borrows (the worker-plane twin of
/// `quiet_parts!`). The empty fault inputs are sound because fault plans
/// never reach this engine.
macro_rules! timeline_parts {
    ($w:expr, $g:expr, $q:expr, $tl:expr) => {{
        (
            QuietEnv {
                trace: $w.trace,
                cfg: $w.cfg,
                intra_transfer: &$w.intra_transfer,
                dispatch_op: $w.dispatch_op,
                epochs: &[],
                mgr_dead: false,
                inflate: false,
            },
            &mut $w.groups[$g],
            TimelineSink {
                q: $q,
                tl: $tl,
                tel: &mut *$w.tel,
                result: &mut $w.result,
                completed: &mut $w.completed,
            },
        )
    }};
}

/// Runs a healthy serial simulation with the worker plane elided. Returns
/// a [`RunSummary`] whose `events` counts main-queue events only; every
/// other field (and every simulation observable) is byte-identical to
/// [`run_streamed`](simcore::event::run_streamed) on the same world.
pub(super) fn run_elided<S: TelemetrySink>(
    w: &mut AcWorld<'_, S>,
    queue: &mut EventQueue<Ev>,
    source: &mut impl EventSource<Ev>,
) -> RunSummary {
    debug_assert!(
        w.faults.is_none(),
        "fault plans downgrade to WorkerPlane::EventDriven"
    );
    // One lane per event class (see the `LANE_*` constants), each
    // pre-sized for the whole mesh's worst-case pending population — every
    // worker holding `local_bound` descriptors in flight plus one
    // in-service completion, plus one serialized op per group — so the hot
    // loop never grows them.
    let per_lane = w.cfg.groups * (w.cfg.workers_per_group() * (w.cfg.local_bound + 1) + 1);
    let mut tl: Timeline<Ev> = Timeline::new(LANES, per_lane);

    let mut events = 0u64;
    let mut now = SimTime::ZERO;
    // One main-queue pop cached across timeline runs. Valid as the queue
    // minimum because timeline handlers never push to the main queue.
    let mut held: Option<(SimTime, u64, Ev)> = None;
    let mut peak = queue.len();
    let mut source_next = source.next_time();
    loop {
        if held.is_none() {
            held = queue.pop_with_seq();
        }
        // The virtual head: earliest of cached main-queue pop and timeline
        // head by `(time, seq)` — the oracle's total order.
        let local = tl.peek_key();
        let take_local = match (local, &held) {
            (Some(lk), Some((ht, hs, _))) => lk < (*ht, *hs),
            (Some(_), None) => true,
            (None, _) => false,
        };
        let head_time = if take_local {
            local.map(|(t, _)| t)
        } else {
            held.as_ref().map(|&(t, _, _)| t)
        };
        let Some(head_time) = head_time else {
            // Virtual queue empty: refill or finish (the oracle's empty-pop
            // branch).
            if source_next.is_none() {
                break;
            }
            source.inject_chunk(queue);
            source_next = source.next_time();
            peak = peak.max(queue.len() + tl.len());
            continue;
        };
        if source_next.is_some_and(|t| head_time >= t) {
            // The source may still hold an event at or before the head
            // (ties refill: reserved arrival seqs precede dynamic ones).
            // The cached pop goes back first — an injected arrival can
            // out-rank it.
            if let Some((t, seq, ev)) = held.take() {
                queue.push_at_seq(t, seq, ev);
            }
            source.inject_chunk(queue);
            source_next = source.next_time();
            peak = peak.max(queue.len() + tl.len());
            continue;
        }
        if take_local {
            let (t, seq, ev) = tl.pop().expect("checked non-empty");
            debug_assert!(t >= now, "timeline went backwards in time");
            now = t;
            // Timeline events carry the exact oracle `(time, seq)` rank, so
            // the recorded sequence is identical to the event-driven engine.
            w.observe(now, seq, &ev);
            handle_batched(w, ev, now, queue, &mut tl);
        } else {
            let (t, seq, ev) = held.take().expect("checked non-empty");
            debug_assert!(t >= now, "event queue went backwards in time");
            now = t;
            w.observe(now, seq, &ev);
            handle_global(w, ev, now, queue, &mut tl);
            events += 1;
        }
        peak = peak.max(queue.len() + usize::from(held.is_some()) + tl.len());
        if w.should_stop(now) {
            return RunSummary {
                events,
                end_time: now,
                stopped_early: true,
                peak_queue: peak,
            };
        }
    }
    RunSummary {
        events,
        end_time: now,
        stopped_early: false,
        peak_queue: peak,
    }
}

/// A main-queue event, dispatched like [`World::handle`] minus every fault
/// branch (downgraded away), with quiet effects routed to the timeline.
fn handle_global<S: TelemetrySink>(
    w: &mut AcWorld<'_, S>,
    ev: Ev,
    now: SimTime,
    q: &mut EventQueue<Ev>,
    tl: &mut Timeline<Ev>,
) {
    match ev {
        Ev::Enqueue(g, idx) => {
            let (g, idx) = (g as usize, idx as usize);
            // Healthy runs have no takeover redirection: `live_group` is the
            // identity. Arrivals still wake dormant groups first.
            w.wake_group(g, now, None, q);
            let (env, grp, mut sink) = timeline_parts!(w, g, q, tl);
            env.enqueue(g, idx, now, grp, &mut sink);
        }
        Ev::Tick(g) => w.runtime_tick(g as usize, now, q),
        Ev::Msg { dst, seq, msg } => {
            let msg = w.msg_slab.take(msg);
            if let Some(g) = w.handle_msg_inner(dst as usize, seq, msg, now, q) {
                let (env, grp, mut sink) = timeline_parts!(w, g, q, tl);
                env.try_dispatch(g, now, grp, &mut sink);
            }
        }
        Ev::RecvDrained(g) => {
            let g = g as usize;
            w.groups[g].recv_fifo = w.groups[g].recv_fifo.saturating_sub(1);
        }
        Ev::Deliver(..) | Ev::WorkerDone(..) | Ev::MgrOpDone(..) => {
            unreachable!("worker-plane events never enter the elided main queue")
        }
        Ev::Fault(_) => unreachable!("fault plans downgrade to WorkerPlane::EventDriven"),
    }
}

/// A lazily-materialized timeline event: the healthy cores of the quiet
/// handlers, running at the exact `(time, seq)` rank the oracle would have
/// popped them at.
fn handle_batched<S: TelemetrySink>(
    w: &mut AcWorld<'_, S>,
    ev: Ev,
    now: SimTime,
    q: &mut EventQueue<Ev>,
    tl: &mut Timeline<Ev>,
) {
    match ev {
        Ev::Deliver(g, wk, h) => {
            let (g, wk) = (g as usize, wk as usize);
            debug_assert!(!w.cold[g].dormant, "deliver at a dormant group");
            let (env, grp, mut sink) = timeline_parts!(w, g, q, tl);
            env.deliver(g, wk, h, now, grp, &mut sink);
        }
        Ev::WorkerDone(g, wk, epoch) => {
            let (g, wk) = (g as usize, wk as usize);
            debug_assert_eq!(epoch, 0, "healthy workers never change epoch");
            debug_assert!(!w.cold[g].dormant, "completion at a dormant group");
            let (env, grp, mut sink) = timeline_parts!(w, g, q, tl);
            env.worker_done(g, wk, now, grp, &mut sink);
        }
        Ev::MgrOpDone(g) => {
            let g = g as usize;
            let (env, grp, mut sink) = timeline_parts!(w, g, q, tl);
            env.mgr_op_done(g, now, grp, &mut sink);
        }
        _ => unreachable!("only worker-plane events ride the timeline"),
    }
}
