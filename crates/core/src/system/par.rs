//! The quiet-window parallel engine.
//!
//! One run alternates between two regimes, chosen window by window:
//!
//! 1. **Collect.** The main thread pops events off the global calendar
//!    queue (under the streaming-refill protocol of
//!    [`simcore::event::run_streamed`]) for as long as they are *quiet* —
//!    the healthy intra-group request lifecycle (`Enqueue` at a non-dormant
//!    group, `Deliver`, `WorkerDone`, `MgrOpDone`, `RecvDrained`). Quiet
//!    handlers touch only their own group plus three recordable channels
//!    (event pushes, telemetry spans, completions), so events of different
//!    partitions inside one window are independent. The first non-quiet
//!    event (tick, message, or a batch-size cap) becomes the window's
//!    **cut**.
//!
//! 2. **Execute.** Each partition's slice of the batch is shipped to a
//!    worker thread together with the partition's groups (moved out of the
//!    [`GroupStore`], no `unsafe`). The shard replays its events in exact
//!    `(time, seq)` order, running follow-up events scheduled strictly
//!    before the cut locally (a child min-heap ordered by `(time, birth
//!    ordinal)` — within one shard the ordinal order equals the seq order
//!    the serial run would have assigned). Everything observable is
//!    recorded: per event a [`WRec`] (its time plus how to recover its
//!    serial seq), per effect an [`ARec`].
//!
//! 3. **Commit.** The main thread merges the shards' record lists back
//!    into one serial history by ascending `(time, seq)` — batch events
//!    carry their original seq, children get theirs assigned at replay,
//!    which reproduces the exact values the serial loop would have used
//!    because seq reservation happens in serial order. Replay applies
//!    completions and telemetry spans in that order, pushes escaped events
//!    (those at or past the cut) into the real queue under their exact
//!    seqs, and maintains a *virtual ledger* of the serial queue occupancy
//!    so `RunSummary::peak_queue` and the stop-at-`trace.len()` cutoff are
//!    byte-identical to the serial engine. The cut event itself then runs
//!    through the ordinary serial handler.
//!
//! Windows too small to pay for the fan-out (or confined to a single
//! partition) are re-inserted and run serially under the same virtual
//! ledger. Fault plans never reach this module: [`super::Altocumulus`]
//! downgrades faulted runs to the serial engine wholesale. Likewise the
//! parallel engine always runs the *per-event* worker plane — the
//! quiet-window protocol owns the queue and does its own batching, so
//! [`WorkerPlane::Elided`](simcore::timeline::WorkerPlane) timelines
//! (see [`super::wp`]) are a serial-engine optimization only; the
//! downgrade happens at the same dispatch site and keeps output
//! byte-identical by construction.

use super::*;
use simcore::event::EventSource;
use simcore::parengine::with_pool;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Cap on the number of quiet events collected into one window. Bounds
/// shard memory and keeps the commit walk's child heap shallow.
const MAX_BATCH: usize = 4096;

/// Windows smaller than this are not worth two thread hops; they run
/// serially on the main thread instead.
const MIN_PAR_BATCH: usize = 64;

/// A follow-up event scheduled by a quiet handler strictly before the cut:
/// it belongs to the current window and is executed inside the shard.
/// Ordered as a min-heap on `(time, birth ordinal)`; within one shard the
/// birth order equals the order the serial run reserves seqs in, so this
/// tie-break is exactly the serial one.
struct ChildEv {
    at: SimTime,
    ord: u32,
    ev: Ev,
}

impl PartialEq for ChildEv {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.ord == other.ord
    }
}
impl Eq for ChildEv {}
impl PartialOrd for ChildEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ChildEv {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so BinaryHeap (a max-heap) pops the earliest first.
        (other.at, other.ord).cmp(&(self.at, self.ord))
    }
}

/// How the commit walk recovers one shard event's serial seq.
#[derive(Debug, Clone, Copy)]
enum WKey {
    /// A batch event: popped off the real queue pre-window, seq known.
    Batch(u64),
    /// A window-local child: its seq is whatever the walk reserves when
    /// replaying its parent's push (`Cursor::assigned[ord]`).
    Child(u32),
}

/// One event a shard executed, in shard-local order.
#[derive(Debug, Clone, Copy)]
struct WRec {
    time: SimTime,
    key: WKey,
    /// Number of [`ARec`] entries this event produced.
    n_actions: u32,
}

/// One externally-visible effect of a shard event, recorded in exact
/// handler order for the commit walk to replay.
enum ARec {
    /// A push at or past the cut: goes into the real queue at replay,
    /// under the seq reserved at that exact serial position.
    Escaped { at: SimTime, ev: Ev },
    /// A push strictly before the cut: executed in-shard; replay only
    /// reserves its seq (keeping the global counter's serial evolution)
    /// and notes it for the child's own [`WRec`].
    Consumed,
    /// A finished request.
    Complete(Completion),
    /// A telemetry span point (recorded only when the sink is enabled).
    Span {
        track: u32,
        kind: u16,
        loc: u32,
        at: SimTime,
    },
}

/// Round-trip payload of one partition: filled with a batch by the main
/// thread, executed and annotated by a pool worker, drained by the commit
/// walk. Buffers persist across windows to amortize allocation.
struct Shard {
    part: usize,
    /// First group of the partition's contiguous range; group `g` lives at
    /// `groups[g - lo]`.
    lo: usize,
    groups: Vec<Group>,
    batch: Vec<(SimTime, u64, Ev)>,
    cut: SimTime,
    heap: BinaryHeap<ChildEv>,
    recs: Vec<WRec>,
    actions: Vec<ARec>,
    /// Event-record descriptors, aligned with `recs` — shards never retain
    /// the executed [`Ev`], so when a recording sink is attached each
    /// shard computes the `(kind, group, payload)` descriptor at execution
    /// and the commit walk emits it at the exact serial `(time, seq)`.
    /// Empty when the sink records no events.
    descs: Vec<(u8, u32, u64)>,
}

/// The shard-side [`QuietSink`]: records effects instead of applying them.
struct ShardSink<'a> {
    cut: SimTime,
    heap: &'a mut BinaryHeap<ChildEv>,
    next_ord: &'a mut u32,
    actions: &'a mut Vec<ARec>,
    tel_enabled: bool,
}

impl QuietSink for ShardSink<'_> {
    fn push(&mut self, at: SimTime, ev: Ev) {
        if at < self.cut {
            // Strictly before the cut: runs in this window. `at == cut`
            // must escape — the cut's seq predates every child seq, so the
            // serial order puts the cut first on that tie.
            self.heap.push(ChildEv {
                at,
                ord: *self.next_ord,
                ev,
            });
            *self.next_ord += 1;
            self.actions.push(ARec::Consumed);
        } else {
            self.actions.push(ARec::Escaped { at, ev });
        }
    }

    fn span(&mut self, track: u32, kind: u16, loc: u32, at: SimTime) {
        if self.tel_enabled {
            self.actions.push(ARec::Span {
                track,
                kind,
                loc,
                at,
            });
        }
    }

    fn complete(&mut self, c: Completion) {
        self.actions.push(ARec::Complete(c));
    }
}

/// Executes one shard on a pool worker: replays the batch merged with
/// window-local children in `(time, seq)` order, recording every effect.
fn run_shard(
    cfg: &AcConfig,
    trace: &Trace,
    intra: &Transfer,
    dispatch_op: SimDuration,
    tel_enabled: bool,
    rec_enabled: bool,
    mut sh: Shard,
) -> Shard {
    let env = QuietEnv {
        trace,
        cfg,
        intra_transfer: intra,
        dispatch_op,
        epochs: &[],
        mgr_dead: false,
        inflate: false,
    };
    sh.recs.clear();
    sh.actions.clear();
    sh.descs.clear();
    debug_assert!(sh.heap.is_empty(), "child heap leaked across windows");
    let mut next_ord = 0u32;
    let mut bi = 0usize;
    loop {
        let next_batch = sh.batch.get(bi).map(|&(t, s, _)| (t, s));
        let next_child = sh.heap.peek().map(|c| c.at);
        let (time, key, ev) = match (next_batch, next_child) {
            (None, None) => break,
            (Some((t, s)), nc) if nc.is_none_or(|tc| t <= tc) => {
                // Batch beats same-time children: every batch seq was
                // reserved before the window opened, every child seq after.
                let slot = &mut sh.batch[bi];
                let (_, _, ev) = std::mem::replace(slot, (SimTime::ZERO, 0, Ev::RecvDrained(0)));
                bi += 1;
                (t, WKey::Batch(s), ev)
            }
            _ => {
                let c = sh.heap.pop().expect("peeked a child");
                (c.at, WKey::Child(c.ord), c.ev)
            }
        };
        if rec_enabled {
            sh.descs.push(describe_slabless_ev(&ev));
        }
        let before = sh.actions.len();
        let mut sink = ShardSink {
            cut: sh.cut,
            heap: &mut sh.heap,
            next_ord: &mut next_ord,
            actions: &mut sh.actions,
            tel_enabled,
        };
        match ev {
            Ev::Enqueue(g, idx) => {
                let (g, idx) = (g as usize, idx as usize);
                env.enqueue(g, idx, time, &mut sh.groups[g - sh.lo], &mut sink)
            }
            Ev::Deliver(g, w, h) => {
                let (g, w) = (g as usize, w as usize);
                env.deliver(g, w, h, time, &mut sh.groups[g - sh.lo], &mut sink)
            }
            Ev::WorkerDone(g, w, _epoch) => {
                let (g, w) = (g as usize, w as usize);
                env.worker_done(g, w, time, &mut sh.groups[g - sh.lo], &mut sink)
            }
            Ev::MgrOpDone(g) => {
                let g = g as usize;
                env.mgr_op_done(g, time, &mut sh.groups[g - sh.lo], &mut sink)
            }
            Ev::RecvDrained(g) => {
                let grp = &mut sh.groups[g as usize - sh.lo];
                grp.recv_fifo = grp.recv_fifo.saturating_sub(1);
            }
            Ev::Tick(_) | Ev::Msg { .. } | Ev::Fault(_) => {
                unreachable!("serial-only event batched into a quiet window")
            }
        }
        sh.recs.push(WRec {
            time,
            key,
            n_actions: (sh.actions.len() - before) as u32,
        });
    }
    sh.batch.clear();
    sh
}

/// Virtual occupancy of the *serial* engine's queue, maintained so the
/// parallel run reports the exact `peak_queue` and refill schedule the
/// serial run would have. `len` counts every event the serial queue would
/// hold (including ones this engine popped early or never physically
/// pushed); `inj` is the serial injection cursor, which trails the real
/// one (physical refills during collection are invisible to the ledger and
/// replayed virtually at their serial positions).
struct Ledger {
    len: usize,
    peak: usize,
    inj: usize,
}

/// Replays, virtually, every chunk refill the serial loop would have done
/// before handling an event at `t`: the serial pop protocol refills while
/// the source watermark is `<= t` (ties refill; see `run_streamed`).
fn refill_virtual<L, M>(source: &StreamInjector<L, M>, v: &mut Ledger, t: SimTime)
where
    L: Fn(usize) -> SimTime,
{
    while v.inj < source.total() && source.bound_of(v.inj) <= t {
        let n = source.chunk().min(source.total() - v.inj);
        v.inj += n;
        v.len += n;
        v.peak = v.peak.max(v.len);
    }
}

/// One virtual chunk refill plus enough physical injection to keep the
/// real queue a superset of the virtual one.
fn virtual_chunk<L, M>(
    queue: &mut EventQueue<Ev>,
    source: &mut StreamInjector<L, M>,
    v: &mut Ledger,
) where
    L: Fn(usize) -> SimTime,
    M: FnMut(usize) -> (SimTime, Ev),
{
    let n = source.chunk().min(source.total() - v.inj);
    v.inj += n;
    v.len += n;
    while source.injected() < v.inj {
        source.inject_chunk(queue);
    }
    v.peak = v.peak.max(v.len);
}

/// Pops the next event under the serial engine's streaming protocol, but
/// gated on the *virtual* injection cursor, updating the ledger exactly as
/// the serial loop would. Returns `None` when queue and source are both
/// exhausted.
fn pop_virtual<L, M>(
    queue: &mut EventQueue<Ev>,
    source: &mut StreamInjector<L, M>,
    v: &mut Ledger,
) -> Option<(SimTime, u64, Ev)>
where
    L: Fn(usize) -> SimTime,
    M: FnMut(usize) -> (SimTime, Ev),
{
    loop {
        match queue.pop_with_seq() {
            Some((t, s, ev)) => {
                if v.inj >= source.total() || t < source.bound_of(v.inj) {
                    return Some((t, s, ev));
                }
                // The serial run would refill before committing to this
                // pop (a reserved stream seq outranks any dynamic push at
                // the same time).
                queue.push_at_seq(t, s, ev);
                virtual_chunk(queue, source, v);
            }
            None => {
                if v.inj >= source.total() {
                    return None;
                }
                virtual_chunk(queue, source, v);
            }
        }
    }
}

/// Per-shard commit-walk state.
#[derive(Default)]
struct Cursor {
    /// Next [`WRec`] to replay.
    ri: usize,
    /// Next [`ARec`] to replay.
    ai: usize,
    /// Serial seq assigned to child `ord` when its parent's push replayed.
    assigned: Vec<u64>,
}

fn resolve(key: &WKey, cur: &Cursor) -> u64 {
    match *key {
        WKey::Batch(s) => s,
        WKey::Child(ord) => cur.assigned[ord as usize],
    }
}

/// Is `ev` executable inside a quiet window? (Healthy runs only — the
/// engine never sees a non-empty fault plan.)
fn is_quiet<S: TelemetrySink>(ev: &Ev, world: &AcWorld<'_, S>) -> bool {
    match *ev {
        // An arrival at a dormant group must wake it (replaying elided
        // ticks) — a serial-only concern. Dormancy can't change inside a
        // window (only ticks and wakes flip it, and both cut), so this
        // collection-time check holds for the whole window. Dormancy lives
        // in the cold plane, read here on the main thread only.
        Ev::Enqueue(g, _) => !world.cold[g as usize].dormant,
        Ev::Deliver(..) | Ev::WorkerDone(..) | Ev::MgrOpDone(_) | Ev::RecvDrained(_) => true,
        Ev::Tick(_) | Ev::Msg { .. } | Ev::Fault(_) => false,
    }
}

/// Home group of a quiet event.
fn group_of(ev: &Ev) -> usize {
    match *ev {
        Ev::Enqueue(g, _)
        | Ev::Deliver(g, ..)
        | Ev::WorkerDone(g, ..)
        | Ev::MgrOpDone(g)
        | Ev::RecvDrained(g) => g as usize,
        Ev::Tick(_) | Ev::Msg { .. } | Ev::Fault(_) => {
            unreachable!("non-quiet event has no home partition")
        }
    }
}

/// The parallel engine's main loop. Byte-identical to
/// `run_streamed(world, queue, source, SimTime::MAX)` on the same inputs —
/// same completions in the same order, same telemetry, same seq evolution,
/// same [`RunSummary`] — as long as the fault plan is empty (enforced by
/// the caller's downgrade guard).
pub(super) fn run_windows<S, L, M>(
    world: &mut AcWorld<'_, S>,
    queue: &mut EventQueue<Ev>,
    source: &mut StreamInjector<L, M>,
    partitioning: &Partitioning,
) -> RunSummary
where
    S: TelemetrySink,
    L: Fn(usize) -> SimTime,
    M: FnMut(usize) -> (SimTime, Ev),
{
    let cfg = world.cfg;
    let trace = world.trace;
    let intra = world.intra_transfer;
    let dispatch_op = world.dispatch_op;
    let tel_enabled = world.tel.enabled();
    let rec_enabled = world.tel.records_events();
    let trace_len = trace.len();
    let nparts = partitioning.parts();

    let mut v = Ledger {
        len: queue.len(),
        peak: queue.len(),
        inj: 0,
    };
    let mut events = 0u64;
    let mut now = SimTime::ZERO;
    let mut stopped = false;

    let mut shells: Vec<Option<Shard>> = partitioning
        .ranges()
        .iter()
        .enumerate()
        .map(|(p, r)| {
            Some(Shard {
                part: p,
                lo: r.start,
                groups: Vec::new(),
                batch: Vec::new(),
                cut: SimTime::MAX,
                heap: BinaryHeap::new(),
                recs: Vec::new(),
                actions: Vec::new(),
                descs: Vec::new(),
            })
        })
        .collect();
    let mut curs: Vec<Cursor> = (0..nparts).map(|_| Cursor::default()).collect();
    let mut heads: BinaryHeap<Reverse<(SimTime, u64, usize)>> = BinaryHeap::new();

    let shard_fn = move |_w: usize, sh: Shard| {
        run_shard(
            cfg,
            trace,
            &intra,
            dispatch_op,
            tel_enabled,
            rec_enabled,
            sh,
        )
    };

    let debug_stats = std::env::var_os("PAR_DEBUG").is_some();
    let mut stat_windows = 0u64;
    let mut stat_win_events = 0u64;
    let mut stat_fallbacks = 0u64;
    let mut stat_fb_events = 0u64;
    let mut t_collect = std::time::Duration::ZERO;
    let mut t_exec = std::time::Duration::ZERO;
    let mut t_commit = std::time::Duration::ZERO;
    let mut t_mark = std::time::Instant::now();

    with_pool(nparts, shard_fn, |pool| {
        'run: loop {
            // ---- Collect: pop quiet events into per-partition batches ----
            let mut batch_total = 0usize;
            let mut active = 0usize;
            let cut: Option<(SimTime, u64, Ev)> = loop {
                // Physical streaming-pop protocol; refills here advance the
                // real cursor only — the ledger replays them virtually at
                // their serial positions during the commit walk.
                let popped = loop {
                    match queue.pop_with_seq() {
                        Some((t, s, ev)) => {
                            if source.next_time().is_none_or(|nt| t < nt) {
                                break Some((t, s, ev));
                            }
                            queue.push_at_seq(t, s, ev);
                            source.inject_chunk(queue);
                        }
                        None => {
                            if source.next_time().is_none() {
                                break None;
                            }
                            source.inject_chunk(queue);
                        }
                    }
                };
                let Some((t, s, ev)) = popped else { break None };
                if batch_total >= MAX_BATCH || !is_quiet(&ev, world) {
                    break Some((t, s, ev));
                }
                let p = partitioning.part_of(group_of(&ev));
                let sh = shells[p].as_mut().expect("shell in place");
                if sh.batch.is_empty() {
                    active += 1;
                }
                sh.batch.push((t, s, ev));
                batch_total += 1;
            };

            if debug_stats {
                t_collect += t_mark.elapsed();
                t_mark = std::time::Instant::now();
            }

            // ---- Small or single-partition window: run it serially ----
            if batch_total < MIN_PAR_BATCH || active < 2 {
                stat_fallbacks += 1;
                stat_fb_events += batch_total as u64;
                if batch_total == 0 {
                    // Cut-only window (a streak of serial-only events):
                    // handle it in place — it already popped in serial
                    // order, no reinsertion round-trip needed.
                    let Some((t, s, ev)) = cut else { break 'run };
                    debug_assert!(t >= now, "window went backwards in time");
                    refill_virtual(source, &mut v, t);
                    v.len -= 1;
                    world.observe(t, s, &ev);
                    world.handle(t, ev, queue);
                    events += 1;
                    now = t;
                    v.len = queue.len() - (source.injected() - v.inj);
                    v.peak = v.peak.max(v.len);
                    if world.completed >= trace_len {
                        stopped = true;
                        break 'run;
                    }
                    continue 'run;
                }
                for shell in &mut shells {
                    let sh = shell.as_mut().expect("shell in place");
                    for (t, s, ev) in sh.batch.drain(..) {
                        queue.push_at_seq(t, s, ev);
                    }
                }
                if let Some((t, s, ev)) = cut {
                    queue.push_at_seq(t, s, ev);
                }
                // Drain what was re-inserted (and whatever it spawns, up to
                // the same budget) under the virtual serial protocol.
                for _ in 0..batch_total + 1 {
                    let Some((t, s, ev)) = pop_virtual(queue, source, &mut v) else {
                        break 'run;
                    };
                    debug_assert!(t >= now, "window went backwards in time");
                    v.len -= 1;
                    world.observe(t, s, &ev);
                    world.handle(t, ev, queue);
                    events += 1;
                    now = t;
                    v.len = queue.len() - (source.injected() - v.inj);
                    v.peak = v.peak.max(v.len);
                    if world.completed >= trace_len {
                        stopped = true;
                        break 'run;
                    }
                }
                continue 'run;
            }

            // ---- Execute: fan the batches out to the pool ----
            stat_windows += 1;
            stat_win_events += batch_total as u64;
            let cut_time = cut.as_ref().map(|c| c.0).unwrap_or(SimTime::MAX);
            let mut in_flight = 0usize;
            for (p, shell) in shells.iter_mut().enumerate() {
                let idle = shell.as_ref().expect("shell in place").batch.is_empty();
                if idle {
                    // A partition sitting this window out still holds the
                    // records of the last window it ran; clear them so the
                    // commit walk below never replays stale history.
                    let sh = shell.as_mut().expect("shell in place");
                    sh.recs.clear();
                    sh.actions.clear();
                    sh.descs.clear();
                    continue;
                }
                let mut sh = shell.take().expect("shell in place");
                sh.cut = cut_time;
                sh.groups = world.groups.take_part(p);
                pool.send(p, sh);
                in_flight += 1;
            }
            for _ in 0..in_flight {
                let mut sh = pool.recv();
                world
                    .groups
                    .put_part(sh.part, std::mem::take(&mut sh.groups));
                let p = sh.part;
                shells[p] = Some(sh);
            }

            if debug_stats {
                t_exec += t_mark.elapsed();
                t_mark = std::time::Instant::now();
            }

            // ---- Commit: replay all shards on the serial (time, seq) order ----
            heads.clear();
            for (p, cur) in curs.iter_mut().enumerate() {
                cur.ri = 0;
                cur.ai = 0;
                cur.assigned.clear();
                let sh = shells[p].as_ref().expect("shell in place");
                if let Some(rec) = sh.recs.first() {
                    heads.push(Reverse((rec.time, resolve(&rec.key, cur), p)));
                }
            }
            while let Some(Reverse((t, seq, p))) = heads.pop() {
                debug_assert!(t >= now, "commit walk went backwards in time");
                refill_virtual(source, &mut v, t);
                v.len -= 1;
                let sh = shells[p].as_mut().expect("shell in place");
                let cur = &mut curs[p];
                let rec = sh.recs[cur.ri];
                if rec_enabled {
                    // The shard computed the descriptor at execution; emit
                    // it here, at the event's exact serial `(time, seq)`
                    // rank and before its effects replay — the same
                    // observe-before-handle order the serial engines use.
                    let (kind, group, payload) = sh.descs[cur.ri];
                    world.tel.event_record(t, seq, kind, group, payload);
                }
                for _ in 0..rec.n_actions {
                    let action = std::mem::replace(&mut sh.actions[cur.ai], ARec::Consumed);
                    cur.ai += 1;
                    match action {
                        ARec::Escaped { at, ev } => {
                            let s = queue.reserve_seqs(1);
                            queue.push_at_seq(at, s, ev);
                            v.len += 1;
                        }
                        ARec::Consumed => {
                            cur.assigned.push(queue.reserve_seqs(1));
                            v.len += 1;
                        }
                        ARec::Complete(c) => {
                            world.result.record(c);
                            world.completed += 1;
                        }
                        ARec::Span {
                            track,
                            kind,
                            loc,
                            at,
                        } => world.tel.span_point(track, kind, loc, at),
                    }
                }
                events += 1;
                now = t;
                v.peak = v.peak.max(v.len);
                if world.completed >= trace_len {
                    stopped = true;
                    break 'run;
                }
                cur.ri += 1;
                if let Some(next) = sh.recs.get(cur.ri) {
                    heads.push(Reverse((next.time, resolve(&next.key, cur), p)));
                }
            }

            // ---- The cut runs through the ordinary serial handler ----
            match cut {
                Some((t, s, ev)) => {
                    refill_virtual(source, &mut v, t);
                    v.len -= 1;
                    world.observe(t, s, &ev);
                    world.handle(t, ev, queue);
                    events += 1;
                    now = t;
                    v.len = queue.len() - (source.injected() - v.inj);
                    v.peak = v.peak.max(v.len);
                    if world.completed >= trace_len {
                        stopped = true;
                        break 'run;
                    }
                }
                None => break 'run,
            }
            debug_assert_eq!(
                v.len,
                queue.len() - (source.injected() - v.inj),
                "virtual ledger diverged from the real queue"
            );
            if debug_stats {
                t_commit += t_mark.elapsed();
                t_mark = std::time::Instant::now();
            }
        }
    });
    if debug_stats {
        eprintln!(
            "par: {stat_windows} windows ({stat_win_events} ev), \
             {stat_fallbacks} fallbacks ({stat_fb_events} ev), \
             collect {t_collect:?} exec {t_exec:?} commit {t_commit:?}"
        );
    }

    RunSummary {
        events,
        end_time: now,
        stopped_early: stopped,
        peak_queue: v.peak,
    }
}
