//! Multi-application isolation — the paper's future work, implemented.
//!
//! The conclusion of the paper notes that "our distributed software runtime
//! offers the opportunity for isolating different applications, which we
//! leave as a study for future work". This module provides that study's
//! mechanism: groups are partitioned among *tenants*; the NIC steers each
//! tenant's connections only to its own groups, and the runtime restricts
//! migration destinations to same-tenant managers — so one tenant's
//! overload can never spill onto another's cores, while migration still
//! balances load *within* each tenant.

use workload::request::ConnectionId;

/// A static partition of manager groups among tenants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tenancy {
    /// `tenant_of_group[g]` = tenant owning group `g`.
    tenant_of_group: Vec<u32>,
    /// Number of tenants.
    tenants: u32,
}

impl Tenancy {
    /// Creates a tenancy from a per-group tenant assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is empty, tenant ids are not contiguous from
    /// zero, or some tenant owns no group.
    pub fn new(tenant_of_group: Vec<u32>) -> Self {
        assert!(!tenant_of_group.is_empty(), "need at least one group");
        let tenants = tenant_of_group.iter().copied().max().unwrap() + 1;
        for t in 0..tenants {
            assert!(tenant_of_group.contains(&t), "tenant {t} owns no group");
        }
        Tenancy {
            tenant_of_group,
            tenants,
        }
    }

    /// Splits `groups` groups evenly among `tenants` tenants
    /// (round-robin remainder).
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero or exceeds `groups`.
    pub fn even(groups: usize, tenants: u32) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        assert!(tenants as usize <= groups, "more tenants than groups");
        Self::new((0..groups).map(|g| (g as u32) % tenants).collect())
    }

    /// Number of tenants.
    pub fn tenants(&self) -> u32 {
        self.tenants
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.tenant_of_group.len()
    }

    /// The tenant owning group `g`.
    pub fn tenant_of_group(&self, g: usize) -> u32 {
        self.tenant_of_group[g]
    }

    /// The tenant a connection belongs to (static striping, mirroring how a
    /// provider would map client flows to applications).
    pub fn tenant_of_conn(&self, conn: ConnectionId) -> u32 {
        conn.0 % self.tenants
    }

    /// The groups owned by `tenant`, in index order.
    pub fn groups_of(&self, tenant: u32) -> Vec<usize> {
        self.tenant_of_group
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == tenant)
            .map(|(g, _)| g)
            .collect()
    }

    /// True iff groups `a` and `b` belong to the same tenant (migration is
    /// only permitted inside one tenant's partition).
    pub fn same_tenant(&self, a: usize, b: usize) -> bool {
        self.tenant_of_group[a] == self.tenant_of_group[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let t = Tenancy::even(8, 2);
        assert_eq!(t.tenants(), 2);
        assert_eq!(t.groups_of(0), vec![0, 2, 4, 6]);
        assert_eq!(t.groups_of(1), vec![1, 3, 5, 7]);
        assert!(t.same_tenant(0, 2));
        assert!(!t.same_tenant(0, 1));
    }

    #[test]
    fn uneven_split() {
        let t = Tenancy::even(5, 2);
        assert_eq!(t.groups_of(0).len(), 3);
        assert_eq!(t.groups_of(1).len(), 2);
    }

    #[test]
    fn conn_striping_covers_all_tenants() {
        let t = Tenancy::even(4, 4);
        let mut seen = std::collections::HashSet::new();
        for c in 0..16 {
            seen.insert(t.tenant_of_conn(ConnectionId(c)));
        }
        assert_eq!(seen.len(), 4);
        // Stable.
        assert_eq!(
            t.tenant_of_conn(ConnectionId(7)),
            t.tenant_of_conn(ConnectionId(7))
        );
    }

    #[test]
    #[should_panic(expected = "owns no group")]
    fn rejects_gaps() {
        Tenancy::new(vec![0, 2]); // tenant 1 missing
    }

    #[test]
    #[should_panic(expected = "more tenants than groups")]
    fn rejects_overcommit() {
        Tenancy::even(2, 3);
    }

    #[test]
    fn custom_assignment() {
        let t = Tenancy::new(vec![0, 0, 0, 1]); // asymmetric: 3 + 1 groups
        assert_eq!(t.groups_of(0).len(), 3);
        assert_eq!(t.groups_of(1), vec![3]);
        assert_eq!(t.tenant_of_group(3), 1);
    }
}
