//! Online SLO-violation prediction (paper §IV + Fig. 5 online path).
//!
//! Each manager estimates the current offered load from its arrival counter,
//! then evaluates the calibrated threshold model `E[T̂]` for its worker group.
//! The threshold is recomputed every period from the *measured* load, which
//! is what makes Altocumulus adapt to bursty traffic where statically-tuned
//! hardware schedulers cannot.

use queueing::threshold::ThresholdModel;
use simcore::time::SimDuration;

/// How the migration threshold is chosen each period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// The calibrated linear model of Eq. 2 (the paper's design).
    Model(ThresholdModel),
    /// A fixed queue length (ablation).
    Fixed(usize),
    /// The naive upper bound `k·L + 1` (ablation; maximal effectiveness,
    /// minimal accuracy).
    NaiveUpperBound {
        /// SLO-to-mean-service ratio `L`.
        slo_ratio: f64,
    },
}

impl ThresholdPolicy {
    /// Evaluates the threshold for a group with `workers` cores at measured
    /// offered load `offered` (Erlangs).
    pub fn threshold(&self, workers: usize, offered: f64) -> usize {
        match *self {
            ThresholdPolicy::Model(m) => m.threshold(workers, offered),
            ThresholdPolicy::Fixed(t) => t,
            ThresholdPolicy::NaiveUpperBound { slo_ratio } => {
                queueing::naive_upper_bound(workers, slo_ratio)
            }
        }
    }
}

/// Exponentially-weighted estimator of the local offered load.
///
/// Every period the runtime feeds it the number of arrivals since the last
/// tick; it maintains a smoothed rate and converts it to Erlangs using the
/// (known, offline-profiled) mean service time.
#[derive(Debug, Clone)]
pub struct LoadEstimator {
    mean_service: SimDuration,
    /// EWMA smoothing factor for the per-period rate.
    alpha: f64,
    rate_per_sec: f64,
    primed: bool,
}

impl LoadEstimator {
    /// Creates an estimator. `mean_service` comes from the offline profile
    /// (µ in Fig. 5); `alpha` is the EWMA weight of the newest sample.
    ///
    /// # Panics
    ///
    /// Panics if `mean_service` is zero or `alpha` outside `(0, 1]`.
    pub fn new(mean_service: SimDuration, alpha: f64) -> Self {
        assert!(
            !mean_service.is_zero(),
            "mean service time must be positive"
        );
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        LoadEstimator {
            mean_service,
            alpha,
            rate_per_sec: 0.0,
            primed: false,
        }
    }

    /// Records `arrivals` observed during the elapsed `period` and updates
    /// the smoothed rate.
    pub fn observe(&mut self, arrivals: u64, period: SimDuration) {
        let secs = period.as_secs_f64();
        if secs <= 0.0 {
            return;
        }
        let sample = arrivals as f64 / secs;
        if self.primed {
            self.rate_per_sec = (1.0 - self.alpha) * self.rate_per_sec + self.alpha * sample;
        } else {
            self.rate_per_sec = sample;
            self.primed = true;
        }
    }

    /// Fast-forwards the estimator across `ticks` idle periods, exactly as
    /// if [`observe`](Self::observe)`(0, period)` had been called `ticks`
    /// times.
    ///
    /// Deliberately implemented as the literal loop of EWMA multiplies
    /// rather than the closed form `rate · (1−α)^k`: `powf` rounds once
    /// while the loop rounds per step, and the idle-tick fast-forward in
    /// the system model needs the skipped ticks to leave the estimator
    /// *bit-identical* to having run them. Idle stretches are bounded by
    /// the trace's arrival gaps divided by the period, so the loop stays
    /// short in practice.
    pub fn fast_forward_idle(&mut self, ticks: u64, period: SimDuration) {
        for _ in 0..ticks {
            self.observe(0, period);
        }
    }

    /// Smoothed arrival rate (requests/second).
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Offered load in Erlangs: `A = λ · E[S]`.
    pub fn offered_erlangs(&self) -> f64 {
        self.rate_per_sec * self.mean_service.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use queueing::erlang::expected_queue_len;

    #[test]
    fn estimator_converges_to_steady_rate() {
        let mut e = LoadEstimator::new(SimDuration::from_ns(850), 0.2);
        // 2 arrivals every 200ns = 10 GRPS... use realistic: 1 arrival per
        // 200ns period = 5 MRPS.
        for _ in 0..100 {
            e.observe(1, SimDuration::from_ns(200));
        }
        assert!((e.rate_per_sec() - 5e6).abs() / 5e6 < 1e-9);
        // A = 5e6 * 850e-9 = 4.25 Erlangs.
        assert!((e.offered_erlangs() - 4.25).abs() < 1e-9);
    }

    #[test]
    fn estimator_tracks_rate_changes() {
        let mut e = LoadEstimator::new(SimDuration::from_us(1), 0.3);
        for _ in 0..50 {
            e.observe(2, SimDuration::from_us(1));
        }
        let before = e.rate_per_sec();
        for _ in 0..50 {
            e.observe(6, SimDuration::from_us(1));
        }
        let after = e.rate_per_sec();
        assert!(after > before * 2.0, "EWMA should follow the burst");
    }

    #[test]
    fn smoothing_dampens_noise() {
        let mut smooth = LoadEstimator::new(SimDuration::from_us(1), 0.05);
        let mut jumpy = LoadEstimator::new(SimDuration::from_us(1), 1.0);
        let samples = [0u64, 8, 0, 8, 0, 8, 0, 8];
        for &s in &samples {
            smooth.observe(s, SimDuration::from_us(1));
            jumpy.observe(s, SimDuration::from_us(1));
        }
        // Jumpy ends at the last sample; smooth stays near the start value's
        // neighbourhood (it was primed with 0, climbing slowly).
        assert_eq!(jumpy.rate_per_sec(), 8e6);
        assert!(smooth.rate_per_sec() < 4e6);
    }

    #[test]
    fn fast_forward_idle_is_bit_identical_to_observed_zeros() {
        // The quiescence contract of the idle-tick fast-forward: k skipped
        // ticks leave the estimator bit-identical to k real observe(0, ·)
        // calls, for alphas whose (1-α) multiplies round at every step.
        let period = SimDuration::from_ns(200);
        for alpha in [0.2, 0.05, 0.37, 1.0] {
            for k in [0u64, 1, 2, 7, 100, 1000] {
                let mut looped = LoadEstimator::new(SimDuration::from_ns(850), alpha);
                let mut skipped = looped.clone();
                // Prime both with some traffic so the decay path is active.
                for _ in 0..5 {
                    looped.observe(3, period);
                    skipped.observe(3, period);
                }
                for _ in 0..k {
                    looped.observe(0, period);
                }
                skipped.fast_forward_idle(k, period);
                assert_eq!(
                    looped.rate_per_sec().to_bits(),
                    skipped.rate_per_sec().to_bits(),
                    "alpha={alpha} k={k}: fast-forward diverged from real ticks"
                );
            }
        }
    }

    #[test]
    fn policy_model_matches_threshold_model() {
        let m = ThresholdModel::paper_fixed();
        let p = ThresholdPolicy::Model(m);
        assert_eq!(p.threshold(15, 15.0 * 0.97), m.threshold(15, 15.0 * 0.97));
    }

    #[test]
    fn policy_fixed_and_naive() {
        assert_eq!(ThresholdPolicy::Fixed(42).threshold(16, 15.0), 42);
        assert_eq!(
            ThresholdPolicy::NaiveUpperBound { slo_ratio: 10.0 }.threshold(64, 60.0),
            641
        );
    }

    #[test]
    fn model_threshold_scales_with_measured_load() {
        let p = ThresholdPolicy::Model(ThresholdModel::identity());
        let t_low = p.threshold(15, 15.0 * 0.80);
        let t_high = p.threshold(15, 15.0 * 0.99);
        assert!(t_high > t_low);
        // Cross-check one value against Erlang-C directly.
        let expect = expected_queue_len(15, 15.0 * 0.99).round() as usize;
        assert_eq!(p.threshold(15, 15.0 * 0.99), expect.max(1));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn estimator_rejects_bad_alpha() {
        LoadEstimator::new(SimDuration::from_us(1), 0.0);
    }
}
