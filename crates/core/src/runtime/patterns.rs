//! Queue-length pattern classification (paper §VI, Fig. 9).
//!
//! Every period, each manager classifies the synchronized queue-length
//! vector `q` into one of three imbalance patterns, which determine the
//! MIGRATE fan-out:
//!
//! - **Hill**: the longest queue exceeds the second longest by ≥ `Bulk` —
//!   the longest queue sprays batches to several shorter queues.
//! - **Valley**: the shortest queue is below the second shortest by ≥
//!   `Bulk` — every other manager sends one batch to the valley.
//! - **Pairing**: a gradual slope — the i-th longest queue sends to the
//!   i-th shortest.
//!
//! Because `q` is synchronized by UPDATE broadcasts, every manager computes
//! the same classification and only acts in its own role.

/// The detected imbalance pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// One queue towers above the rest.
    Hill,
    /// One queue is starved below the rest.
    Valley,
    /// A gradual imbalance across queues.
    Pairing,
}

impl Pattern {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Hill => "hill",
            Pattern::Valley => "valley",
            Pattern::Pairing => "pairing",
        }
    }
}

/// Classifies `q` (one entry per manager) against batch size `bulk`.
///
/// Returns `None` when queues are too balanced for any migration to be
/// worthwhile (max spread < `bulk`).
///
/// # Examples
///
/// ```
/// use altocumulus::runtime::patterns::{classify, Pattern};
///
/// assert_eq!(classify(&[30, 30, 70, 30], 40), Some(Pattern::Hill));
/// assert_eq!(classify(&[50, 50, 10, 50], 40), Some(Pattern::Valley));
/// assert_eq!(classify(&[80, 65, 50, 35], 20), Some(Pattern::Pairing));
/// assert_eq!(classify(&[30, 31, 32, 33], 40), None);
/// ```
pub fn classify(q: &[u32], bulk: usize) -> Option<Pattern> {
    classify_with(q, bulk, &mut Vec::new())
}

/// [`classify`] with a caller-owned scratch buffer for the sorted queue
/// snapshot, so per-tick callers don't allocate.
fn classify_with(q: &[u32], bulk: usize, sorted: &mut Vec<u32>) -> Option<Pattern> {
    if q.len() < 2 {
        return None;
    }
    let bulk = bulk as u32;
    sorted.clear();
    sorted.extend_from_slice(q);
    sorted.sort_unstable();
    let n = sorted.len();
    let (min, min2) = (sorted[0], sorted[1]);
    let (max2, max) = (sorted[n - 2], sorted[n - 1]);
    if max - min < bulk {
        return None; // balanced enough
    }
    if max - max2 >= bulk {
        Some(Pattern::Hill)
    } else if min2 - min >= bulk {
        Some(Pattern::Valley)
    } else {
        Some(Pattern::Pairing)
    }
}

/// One migration order produced by the planner: send `count` descriptors
/// from the local queue to manager `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationOrder {
    /// Destination manager index.
    pub dst: usize,
    /// Number of descriptors to move.
    pub count: usize,
}

/// Reusable planner scratch space: the bounded rank buffers (the
/// `concurrency+1` smallest and `concurrency` largest `(len, index)` keys —
/// all any trigger ever reads) plus the sorted snapshot used by the
/// debug-mode [`classify`] cross-check. One instance per manager lets every
/// tick plan with zero allocations once the buffers reach steady capacity.
#[derive(Debug, Clone, Default)]
pub struct PlanScratch {
    /// k-smallest `(len, index)` keys, ascending.
    small: Vec<(u32, u32)>,
    /// k-largest `(len, index)` keys, descending.
    large: Vec<(u32, u32)>,
    sorted: Vec<u32>,
}

/// Plans this period's MIGRATE messages for manager `me` (paper Algorithm 1
/// lines 4–13).
///
/// Triggers on either condition: the local queue exceeds the threshold `T`,
/// or the global pattern assigns `me` a sender role. The per-message size is
/// `S = bulk / concurrency`; at most `concurrency` destinations are used.
/// The caller still applies the per-message guard
/// (`q[me] − S < q[dst] + S` forbids) before actually sending.
pub fn plan_migrations(
    me: usize,
    q: &[u32],
    threshold: usize,
    bulk: usize,
    concurrency: usize,
) -> Vec<MigrationOrder> {
    let mut orders = Vec::new();
    plan_migrations_into(
        me,
        q,
        threshold,
        bulk,
        concurrency,
        &mut PlanScratch::default(),
        &mut orders,
    );
    orders
}

/// Ablation variant of [`plan_migrations`]: only the threshold trigger, no
/// Hill/Valley/Pairing roles.
pub fn plan_threshold_only(
    me: usize,
    q: &[u32],
    threshold: usize,
    bulk: usize,
    concurrency: usize,
) -> Vec<MigrationOrder> {
    let mut orders = Vec::new();
    plan_threshold_only_into(
        me,
        q,
        threshold,
        bulk,
        concurrency,
        &mut PlanScratch::default(),
        &mut orders,
    );
    orders
}

/// Allocation-free form of [`plan_migrations`]: clears `orders` and fills it
/// with this period's plan, reusing `scratch` across calls.
#[allow(clippy::too_many_arguments)]
pub fn plan_migrations_into(
    me: usize,
    q: &[u32],
    threshold: usize,
    bulk: usize,
    concurrency: usize,
    scratch: &mut PlanScratch,
    orders: &mut Vec<MigrationOrder>,
) {
    plan_with_patterns(me, q, threshold, bulk, concurrency, true, scratch, orders)
}

/// Allocation-free form of [`plan_threshold_only`].
#[allow(clippy::too_many_arguments)]
pub fn plan_threshold_only_into(
    me: usize,
    q: &[u32],
    threshold: usize,
    bulk: usize,
    concurrency: usize,
    scratch: &mut PlanScratch,
    orders: &mut Vec<MigrationOrder>,
) {
    plan_with_patterns(me, q, threshold, bulk, concurrency, false, scratch, orders)
}

#[allow(clippy::too_many_arguments)]
fn plan_with_patterns(
    me: usize,
    q: &[u32],
    threshold: usize,
    bulk: usize,
    concurrency: usize,
    use_patterns: bool,
    scratch: &mut PlanScratch,
    orders: &mut Vec<MigrationOrder>,
) {
    assert!(me < q.len(), "manager index out of range");
    assert!(bulk > 0 && concurrency > 0);
    orders.clear();
    if q.len() < 2 {
        return;
    }
    let my_len = q[me] as usize;
    let n = q.len();

    if my_len > threshold {
        // Overloaded: the threshold spray reads the k-smallest ranking no
        // matter how the mesh classifies, so build it in one pass that also
        // tracks the two largest keys — all the classification and the
        // Hill role need. On a congested mesh this is the common case, and
        // it costs exactly one sweep.
        let k_small = (concurrency + 1).max(2).min(n);
        let small = &mut scratch.small;
        small.clear();
        let k0 = (q[0], 0u32);
        let k1 = (q[1], 1u32);
        let (lo, hi) = if k0 < k1 { (k0, k1) } else { (k1, k0) };
        small.push(lo);
        small.push(hi);
        let (mut max1, mut max2) = (hi, lo);
        for (i, &len) in q.iter().enumerate().skip(2) {
            let key = (len, i as u32);
            if small.len() < k_small || key < *small.last().expect("non-empty") {
                let pos = small.partition_point(|&e| e < key);
                if small.len() == k_small {
                    small.pop();
                }
                small.insert(pos, key);
            }
            if key > max2 {
                if key > max1 {
                    max2 = max1;
                    max1 = key;
                } else {
                    max2 = key;
                }
            }
        }
        let minima = [small[0], small[1]];
        let pattern = classification_of(use_patterns, bulk, &minima, &[max1, max2]);
        let large = &mut scratch.large;
        large.clear();
        if matches!(pattern, Some(Pattern::Pairing)) {
            rank_large_into(q, concurrency.max(2).min(n), large);
        }
        plan_from_extremes(
            me,
            my_len,
            n,
            threshold,
            bulk,
            concurrency,
            pattern,
            max1.1 as usize,
            small,
            large,
            orders,
        );
        debug_assert_eq!(
            pattern,
            if use_patterns {
                classify_with(q, bulk, &mut scratch.sorted)
            } else {
                None
            },
            "single-pass classification diverged from the sorted oracle"
        );
        return;
    }

    // Below threshold: one branch-cheap pass for the four extreme keys.
    // They are enough to classify the pattern and to decide whether any
    // trigger can involve `me` at all — which on a balanced mesh is the
    // common "no" (the planner runs every period for every manager; most
    // periods plan nothing). The deeper insertion-buffer ranking below then
    // runs only on the periods that actually migrate.
    let mut min1 = (q[0], 0u32);
    let mut min2 = (q[1], 1u32);
    if min2 < min1 {
        core::mem::swap(&mut min1, &mut min2);
    }
    let (mut max1, mut max2) = (min2, min1);
    for (i, &len) in q.iter().enumerate().skip(2) {
        let key = (len, i as u32);
        // Independent branches: with n == 3 the middle key is both the
        // second-smallest and the second-largest.
        if key < min2 {
            if key < min1 {
                min2 = min1;
                min1 = key;
            } else {
                min2 = key;
            }
        }
        if key > max2 {
            if key > max1 {
                max2 = max1;
                max1 = key;
            } else {
                max2 = key;
            }
        }
    }
    let pattern = classification_of(use_patterns, bulk, &[min1, min2], &[max1, max2]);
    // Hill fan-out (only the longest sends) reads k-smallest; Pairing
    // senders are the top `concurrency.min(n/2)` ranks, and whether `me` is
    // among them is unknown without ranking that deep.
    let need_rank = (matches!(pattern, Some(Pattern::Hill)) && me == max1.1 as usize)
        || matches!(pattern, Some(Pattern::Pairing));
    if !need_rank {
        // The only order a non-ranking period can produce is the Valley
        // fan-in: everyone but the shortest sends it one batch.
        if matches!(pattern, Some(Pattern::Valley)) && me != min1.1 as usize {
            orders.push(MigrationOrder {
                dst: min1.1 as usize,
                count: (bulk / concurrency).max(1),
            });
        }
        debug_assert_eq!(
            pattern,
            if use_patterns {
                classify_with(q, bulk, &mut scratch.sorted)
            } else {
                None
            },
            "four-extreme classification diverged from the sorted oracle"
        );
        return;
    }

    // Rare ranking case below threshold: a Hill whose summit is `me`, or a
    // Pairing mesh. Rank only the ends the triggers read: the k-smallest
    // always (Hill fan-out targets, Pairing receivers), the k-largest for
    // Pairing sender ranks. `(len, index)` is a total order, so the k-end
    // contents and order are exactly those of the full sort a naive planner
    // would take.
    let k_small = (concurrency + 1).max(2).min(n);
    let small = &mut scratch.small;
    small.clear();
    for (i, &len) in q.iter().enumerate() {
        let key = (len, i as u32);
        if small.len() < k_small || key < *small.last().expect("non-empty") {
            let pos = small.partition_point(|&e| e < key);
            if small.len() == k_small {
                small.pop();
            }
            small.insert(pos, key);
        }
    }
    let large = &mut scratch.large;
    large.clear();
    if matches!(pattern, Some(Pattern::Pairing)) {
        rank_large_into(q, concurrency.max(2).min(n), large);
    }
    plan_from_extremes(
        me,
        my_len,
        n,
        threshold,
        bulk,
        concurrency,
        pattern,
        max1.1 as usize,
        small,
        large,
        orders,
    );
    debug_assert_eq!(
        pattern,
        if use_patterns {
            classify_with(q, bulk, &mut scratch.sorted)
        } else {
            None
        },
        "four-extreme classification diverged from the sorted oracle"
    );
}

/// One capped insertion pass ranking the `k` largest `(len, index)` keys of
/// `q` into `large`, descending — the exact top-k contents and order of a
/// full sort. Only Pairing reads deep top ranks, so this runs on Pairing
/// periods alone.
fn rank_large_into(q: &[u32], k: usize, large: &mut Vec<(u32, u32)>) {
    for (i, &len) in q.iter().enumerate() {
        let key = (len, i as u32);
        if large.len() < k || key > *large.last().expect("non-empty") {
            let pos = large.partition_point(|&e| e > key);
            if large.len() == k {
                large.pop();
            }
            large.insert(pos, key);
        }
    }
}

/// Reads the pattern classification off the bounded extreme buffers.
fn classification_of(
    use_patterns: bool,
    bulk: usize,
    small: &[(u32, u32)],
    large: &[(u32, u32)],
) -> Option<Pattern> {
    if !use_patterns {
        return None;
    }
    let bulk32 = bulk as u32;
    let (min, min2) = (small[0].0, small[1].0);
    let (max, max2) = (large[0].0, large[1].0);
    if max - min < bulk32 {
        None // balanced enough
    } else if max - max2 >= bulk32 {
        Some(Pattern::Hill)
    } else if min2 - min >= bulk32 {
        Some(Pattern::Valley)
    } else {
        Some(Pattern::Pairing)
    }
}

/// Trigger logic shared by the scan-based and patched planners: everything
/// after the `(len, index)` extreme ranking. `small` must hold the exact
/// k-smallest contents and order of a full sort of the planning array;
/// `large` the k-largest, but only when `pattern` is Pairing (the sole
/// consumer of top ranks — `longest` carries the Hill role separately, so
/// the other callers may pass an empty slice).
#[allow(clippy::too_many_arguments)]
fn plan_from_extremes(
    me: usize,
    my_len: usize,
    n: usize,
    threshold: usize,
    bulk: usize,
    concurrency: usize,
    pattern: Option<Pattern>,
    longest: usize,
    small: &[(u32, u32)],
    large: &[(u32, u32)],
    orders: &mut Vec<MigrationOrder>,
) {
    let s = (bulk / concurrency).max(1);
    let shortest = small[0].1 as usize;

    // Threshold trigger: queue beyond T is predicted to violate; spray the
    // excess over the `concurrency` least-loaded other managers.
    if my_len > threshold {
        let mut excess = my_len - threshold;
        for &(_, dst) in small
            .iter()
            .filter(|&&(_, i)| i as usize != me)
            .take(concurrency)
        {
            if excess == 0 {
                break;
            }
            let count = s.min(excess);
            orders.push(MigrationOrder {
                dst: dst as usize,
                count,
            });
            excess -= count;
        }
    }

    // Pattern trigger, classified by the caller off the four extremes.
    match pattern {
        Some(Pattern::Hill) if me == longest => {
            for &(_, dst) in small
                .iter()
                .filter(|&&(_, i)| i as usize != me)
                .take(concurrency)
            {
                orders.push(MigrationOrder {
                    dst: dst as usize,
                    count: s,
                });
            }
        }
        Some(Pattern::Valley) if me != shortest => {
            orders.push(MigrationOrder {
                dst: shortest,
                count: s,
            });
        }
        Some(Pattern::Pairing) => {
            // The r-th longest sends to the r-th shortest, r = 0.. up to
            // concurrency pairs and only while the sender is actually longer.
            for r in 0..concurrency.min(n / 2) {
                let (sender_len, sender) = large[r];
                let (receiver_len, receiver) = small[r];
                if sender as usize == me && receiver as usize != me && sender_len > receiver_len {
                    orders.push(MigrationOrder {
                        dst: receiver as usize,
                        count: s,
                    });
                }
            }
        }
        _ => {}
    }

    // Deduplicate by destination, keeping the larger count. Unstable sort is
    // fine (and allocation-free): entries sharing a dst merge to the max
    // count regardless of their relative order.
    orders.sort_unstable_by_key(|o| o.dst);
    orders.dedup_by(|a, b| {
        if a.dst == b.dst {
            b.count = b.count.max(a.count);
            true
        } else {
            false
        }
    });
}

/// Bounded `(len, index)` extremes of a *shared* queue-length array, ranked
/// one place deeper than any planner trigger reads. Replacing a single
/// entry of the array (a manager overlaying its live local length onto the
/// shared PR view) can then be patched into exact per-manager extremes in
/// O(concurrency) — [`plan_patched_into`] — instead of rescanning all `n`
/// entries per manager per period.
#[derive(Debug, Clone, Default)]
pub struct SharedExtremes {
    /// `k_small + 1` smallest keys, ascending.
    small: Vec<(u32, u32)>,
    /// `k_large + 1` largest keys, descending.
    large: Vec<(u32, u32)>,
}

impl SharedExtremes {
    /// Ranks `q`'s `(len, index)` keys into `self`, reusing the buffers.
    ///
    /// The extra rank beyond [`plan_with_patterns`]'s `k` covers deletion:
    /// if the overlaid manager's old key sat in a buffer, the (k+1)-th key
    /// is exactly the one that takes its place.
    pub fn rank(&mut self, q: &[u32], concurrency: usize) {
        let n = q.len();
        let k_small = ((concurrency + 1).max(2) + 1).min(n);
        let k_large = (concurrency.max(2) + 1).min(n);
        self.small.clear();
        self.large.clear();
        for (i, &len) in q.iter().enumerate() {
            let key = (len, i as u32);
            if self.small.len() < k_small || key < *self.small.last().expect("non-empty") {
                let pos = self.small.partition_point(|&e| e < key);
                if self.small.len() == k_small {
                    self.small.pop();
                }
                self.small.insert(pos, key);
            }
            if self.large.len() < k_large || key > *self.large.last().expect("non-empty") {
                let pos = self.large.partition_point(|&e| e > key);
                if self.large.len() == k_large {
                    self.large.pop();
                }
                self.large.insert(pos, key);
            }
        }
    }
}

/// Plans for `me` against a shared array of `n` lengths with `me`'s entry
/// replaced by its live `my_len` — equivalent to [`plan_migrations_into`]
/// (`use_patterns: true`) or [`plan_threshold_only_into`] (`false`) on the
/// overlaid array, but O(concurrency) per call: `ext` must have been
/// [`SharedExtremes::rank`]ed over the shared array this period, and
/// `old_len` must be the value `me` held in it.
///
/// Exactness of the patch: any non-`me` element among the k smallest of the
/// overlaid array has at most `k - 1` overlaid elements below it, hence at
/// most `k` shared ones (the old `me` key may sit anywhere), so it is
/// already in `ext`'s `k + 1`-deep buffer. Removing the old key and
/// inserting the live one therefore yields a superset of the true k-end,
/// and truncation restores the exact full-sort contents and order.
#[allow(clippy::too_many_arguments)]
pub fn plan_patched_into(
    me: usize,
    my_len: u32,
    n: usize,
    old_len: u32,
    ext: &SharedExtremes,
    threshold: usize,
    bulk: usize,
    concurrency: usize,
    use_patterns: bool,
    scratch: &mut PlanScratch,
    orders: &mut Vec<MigrationOrder>,
) {
    assert!(me < n, "manager index out of range");
    assert!(bulk > 0 && concurrency > 0);
    orders.clear();
    if n < 2 {
        return;
    }
    let k_small = (concurrency + 1).max(2).min(n);
    let k_large = concurrency.max(2).min(n);
    let old_key = (old_len, me as u32);
    let new_key = (my_len, me as u32);

    let small = &mut scratch.small;
    small.clear();
    small.extend_from_slice(&ext.small);
    if let Ok(pos) = small.binary_search(&old_key) {
        small.remove(pos);
    }
    if small.len() < k_small || new_key < *small.last().expect("non-empty") {
        let pos = small.partition_point(|&e| e < new_key);
        small.insert(pos, new_key);
    }
    small.truncate(k_small);

    let large = &mut scratch.large;
    large.clear();
    large.extend_from_slice(&ext.large);
    if let Ok(pos) = large.binary_search_by(|e| old_key.cmp(e)) {
        large.remove(pos);
    }
    if large.len() < k_large || new_key > *large.last().expect("non-empty") {
        let pos = large.partition_point(|&e| e > new_key);
        large.insert(pos, new_key);
    }
    large.truncate(k_large);

    let pattern = classification_of(use_patterns, bulk, small, large);
    plan_from_extremes(
        me,
        my_len as usize,
        n,
        threshold,
        bulk,
        concurrency,
        pattern,
        large[0].1 as usize,
        small,
        large,
        orders,
    );
}

/// The per-message migration guard (Algorithm 1 line 8): forbid a migration
/// that would leave the migrated requests in a *longer* queue than they came
/// from.
pub fn guard_allows(q_src: u32, q_dst: u32, s: usize) -> bool {
    // Paper: skip when q[j] - S < q[dst] + S.
    (q_src as i64 - s as i64) >= (q_dst as i64 + s as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-optimization planner: full `(len, index)` sort, reference
    /// for the bounded-extreme selection in `plan_with_patterns`.
    fn plan_with_full_sort(
        me: usize,
        q: &[u32],
        threshold: usize,
        bulk: usize,
        concurrency: usize,
        use_patterns: bool,
    ) -> Vec<MigrationOrder> {
        let mut orders = Vec::new();
        if q.len() < 2 {
            return orders;
        }
        let s = (bulk / concurrency).max(1);
        let my_len = q[me] as usize;
        let mut by_len: Vec<usize> = (0..q.len()).collect();
        by_len.sort_unstable_by_key(|&i| (q[i], i));
        let shortest = by_len[0];
        let longest = *by_len.last().unwrap();
        if my_len > threshold {
            let mut excess = my_len - threshold;
            for &dst in by_len.iter().filter(|&&i| i != me).take(concurrency) {
                if excess == 0 {
                    break;
                }
                let count = s.min(excess);
                orders.push(MigrationOrder { dst, count });
                excess -= count;
            }
        }
        match if use_patterns {
            classify(q, bulk)
        } else {
            None
        } {
            Some(Pattern::Hill) if me == longest => {
                for &dst in by_len.iter().filter(|&&i| i != me).take(concurrency) {
                    orders.push(MigrationOrder { dst, count: s });
                }
            }
            Some(Pattern::Valley) if me != shortest => {
                orders.push(MigrationOrder {
                    dst: shortest,
                    count: s,
                });
            }
            Some(Pattern::Pairing) => {
                let n = q.len();
                for r in 0..concurrency.min(n / 2) {
                    let sender = by_len[n - 1 - r];
                    let receiver = by_len[r];
                    if sender == me && receiver != me && q[sender] > q[receiver] {
                        orders.push(MigrationOrder {
                            dst: receiver,
                            count: s,
                        });
                    }
                }
            }
            _ => {}
        }
        orders.sort_unstable_by_key(|o| o.dst);
        orders.dedup_by(|a, b| {
            if a.dst == b.dst {
                b.count = b.count.max(a.count);
                true
            } else {
                false
            }
        });
        orders
    }

    proptest::proptest! {
        /// The bounded-extreme planner is order-for-order identical to the
        /// full-sort reference over random queue vectors, both triggers,
        /// with tie-heavy value ranges.
        #[test]
        fn bounded_selection_matches_full_sort(
            q in proptest::collection::vec(0u32..6, 2..80),
            me_raw in 0usize..80,
            threshold in 0usize..8,
            bulk in 1usize..40,
            concurrency_raw in 1usize..12,
            use_patterns in proptest::prelude::any::<bool>(),
        ) {
            let me = me_raw % q.len();
            let concurrency = concurrency_raw.min(bulk);
            let reference =
                plan_with_full_sort(me, &q, threshold, bulk, concurrency, use_patterns);
            let mut got = Vec::new();
            plan_with_patterns(
                me,
                &q,
                threshold,
                bulk,
                concurrency,
                use_patterns,
                &mut PlanScratch::default(),
                &mut got,
            );
            proptest::prop_assert_eq!(got, reference);
        }
    }

    #[test]
    fn paper_walkthrough_example() {
        // §VI walk-through: Bulk=40, Concurrency=4, q=[30,30,70,30] -> Hill.
        // The 3rd queue's manager sends 10 descriptors to each other queue.
        let q = [30, 30, 70, 30];
        assert_eq!(classify(&q, 40), Some(Pattern::Hill));
        let orders = plan_migrations(2, &q, usize::MAX, 40, 4);
        assert_eq!(orders.len(), 3);
        assert!(orders.iter().all(|o| o.count == 10));
        let dsts: Vec<usize> = orders.iter().map(|o| o.dst).collect();
        assert_eq!(dsts, vec![0, 1, 3]); // QD = {0, 1, 3}
                                         // Non-hill managers send nothing on the pattern trigger.
        assert!(plan_migrations(0, &q, usize::MAX, 40, 4).is_empty());
    }

    #[test]
    fn valley_everyone_sends_to_shortest() {
        let q = [50, 50, 10, 50];
        assert_eq!(classify(&q, 40), Some(Pattern::Valley));
        for me in [0, 1, 3] {
            let orders = plan_migrations(me, &q, usize::MAX, 40, 4);
            assert_eq!(orders.len(), 1, "manager {me}");
            assert_eq!(orders[0].dst, 2);
        }
        // The valley itself sends nothing.
        assert!(plan_migrations(2, &q, usize::MAX, 40, 4).is_empty());
    }

    #[test]
    fn pairing_matches_ranks() {
        // Gradual slope: no single Hill/Valley gap reaches Bulk, but the
        // overall spread does.
        let q = [80, 65, 50, 35];
        assert_eq!(classify(&q, 20), Some(Pattern::Pairing));
        // Longest (0) pairs with shortest (3).
        let o0 = plan_migrations(0, &q, usize::MAX, 20, 2);
        assert_eq!(o0, vec![MigrationOrder { dst: 3, count: 10 }]);
        // 2nd longest (1) pairs with 2nd shortest (2).
        let o1 = plan_migrations(1, &q, usize::MAX, 20, 2);
        assert_eq!(o1, vec![MigrationOrder { dst: 2, count: 10 }]);
        // Receivers don't send.
        assert!(plan_migrations(3, &q, usize::MAX, 20, 2).is_empty());
    }

    #[test]
    fn balanced_queues_no_pattern() {
        assert_eq!(classify(&[100, 101, 99, 100], 16), None);
        assert!(plan_migrations(0, &[100, 101, 99, 100], usize::MAX, 16, 4).is_empty());
    }

    #[test]
    fn threshold_trigger_sprays_excess() {
        // Balanced pattern-wise but over threshold.
        let q = [100, 98, 99, 100];
        let orders = plan_migrations(0, &q, 80, 16, 4);
        // Excess = 20, S = 4: up to ceil(20/4)=5 but capped at concurrency=4
        // destinations of 4 each = 16 moved.
        assert_eq!(orders.len(), q.len() - 1); // 3 other managers
        let total: usize = orders.iter().map(|o| o.count).sum();
        assert!(total <= 20);
        assert!(total >= 12);
        assert!(orders.iter().all(|o| o.dst != 0));
    }

    #[test]
    fn threshold_and_pattern_dedupe() {
        // Hill manager over threshold: destinations must not duplicate.
        let q = [200, 10, 10, 10];
        let orders = plan_migrations(0, &q, 50, 40, 4);
        let mut dsts: Vec<usize> = orders.iter().map(|o| o.dst).collect();
        let before = dsts.len();
        dsts.dedup();
        assert_eq!(before, dsts.len(), "duplicate destinations: {orders:?}");
    }

    #[test]
    fn guard_matches_paper_condition() {
        // q_src - S >= q_dst + S required.
        assert!(guard_allows(70, 30, 10)); // 60 >= 40
        assert!(!guard_allows(40, 30, 10)); // 30 < 40
        assert!(!guard_allows(30, 30, 1)); // equal queues: never worth it
        assert!(guard_allows(32, 30, 1)); // 31 >= 31
    }

    #[test]
    fn single_manager_never_migrates() {
        assert!(plan_migrations(0, &[500], 10, 16, 4).is_empty());
        assert_eq!(classify(&[500], 16), None);
    }

    #[test]
    fn labels() {
        assert_eq!(Pattern::Hill.label(), "hill");
        assert_eq!(Pattern::Valley.label(), "valley");
        assert_eq!(Pattern::Pairing.label(), "pairing");
    }
}
