//! The decentralized software runtime (paper §VI, Algorithm 1).
//!
//! Every manager core periodically: synchronizes queue lengths (UPDATE),
//! re-evaluates the SLO-violation threshold from the measured load
//! ([`predictor`]), classifies the queue-length pattern and plans MIGRATE
//! messages ([`patterns`]). The event-driven execution lives in
//! [`crate::system`].

pub mod patterns;
pub mod predictor;

pub use patterns::{
    classify, guard_allows, plan_migrations, plan_migrations_into, MigrationOrder, Pattern,
    PlanScratch,
};
pub use predictor::{LoadEstimator, ThresholdPolicy};
