//! Property-based tests for pattern classification and migration planning.

use altocumulus::runtime::patterns::{classify, guard_allows, plan_migrations, Pattern};
use proptest::prelude::*;

proptest! {
    /// Planning never targets the sender itself and never exceeds
    /// `concurrency` distinct destinations.
    #[test]
    fn plan_targets_sane(
        q in proptest::collection::vec(0u32..1000, 2..32),
        me_seed in 0usize..32,
        threshold in 1usize..500,
        bulk in 1usize..64,
        conc_seed in 1usize..64,
    ) {
        let me = me_seed % q.len();
        let concurrency = conc_seed.min(bulk);
        let orders = plan_migrations(me, &q, threshold, bulk, concurrency);
        let mut dsts = std::collections::HashSet::new();
        for o in &orders {
            prop_assert_ne!(o.dst, me, "never migrate to self");
            prop_assert!(o.dst < q.len());
            prop_assert!(o.count >= 1);
            prop_assert!(o.count <= bulk);
            prop_assert!(dsts.insert(o.dst), "duplicate destination {}", o.dst);
        }
    }

    /// Per-order size never exceeds S = max(bulk/concurrency, 1) except for
    /// the threshold trigger which is also capped by bulk.
    #[test]
    fn plan_sizes_bounded(
        q in proptest::collection::vec(0u32..5000, 2..16),
        bulk in 1usize..64,
        conc_seed in 1usize..64,
    ) {
        let concurrency = conc_seed.min(bulk);
        let s = (bulk / concurrency).max(1);
        for me in 0..q.len() {
            for o in plan_migrations(me, &q, usize::MAX, bulk, concurrency) {
                prop_assert!(o.count <= s, "pattern order size {} > S {s}", o.count);
            }
        }
    }

    /// Classification is permutation-invariant (it only looks at sorted
    /// lengths).
    #[test]
    fn classify_permutation_invariant(
        mut q in proptest::collection::vec(0u32..500, 2..16),
        bulk in 1usize..64,
        swap_a in 0usize..16,
        swap_b in 0usize..16,
    ) {
        let before = classify(&q, bulk);
        let (a, b) = (swap_a % q.len(), swap_b % q.len());
        q.swap(a, b);
        prop_assert_eq!(before, classify(&q, bulk));
    }

    /// A Hill never coexists with a Valley verdict, and balanced vectors
    /// yield None.
    #[test]
    fn classify_consistent(q in proptest::collection::vec(0u32..300, 2..16), bulk in 1usize..64) {
        match classify(&q, bulk) {
            None => {
                let max = *q.iter().max().unwrap();
                let min = *q.iter().min().unwrap();
                prop_assert!(max - min < bulk as u32);
            }
            Some(Pattern::Hill) => {
                let mut s = q.clone();
                s.sort_unstable();
                prop_assert!(s[s.len()-1] - s[s.len()-2] >= bulk as u32);
            }
            Some(Pattern::Valley) => {
                let mut s = q.clone();
                s.sort_unstable();
                prop_assert!(s[1] - s[0] >= bulk as u32);
                // Not also a Hill (Hill takes precedence).
                prop_assert!(s[s.len()-1] - s[s.len()-2] < bulk as u32);
            }
            Some(Pattern::Pairing) => {
                let mut s = q.clone();
                s.sort_unstable();
                prop_assert!(s[s.len()-1] - s[0] >= bulk as u32);
            }
        }
    }

    /// The guard is antisymmetric-ish: if a migration src->dst is allowed,
    /// the reverse with the same sizes is not.
    #[test]
    fn guard_one_directional(a in 0u32..10_000, b in 0u32..10_000, s in 1usize..64) {
        if guard_allows(a, b, s) {
            prop_assert!(!guard_allows(b, a, s), "guard allowed both directions a={a} b={b} s={s}");
        }
    }

    /// An allowed migration strictly reduces the maximum of the pair.
    #[test]
    fn guard_implies_improvement(a in 0u32..10_000, b in 0u32..10_000, s in 1usize..64) {
        prop_assume!(guard_allows(a, b, s));
        let after_src = a as i64 - s as i64;
        let after_dst = b as i64 + s as i64;
        prop_assert!(after_src.max(after_dst) <= a.max(b) as i64);
    }
}
