//! Differential property tests for worker-plane elision: on any
//! configuration and trace, `WorkerPlane::Elided` must be **byte-identical**
//! to the `WorkerPlane::EventDriven` oracle — same completions in the same
//! order, same latency quantiles, same migration counters, same telemetry
//! span chains and probe export, same `peak_queue` (the elided engine
//! tracks the *virtual* queue population: main queue ∪ held pop ∪
//! timeline). The only licensed difference is `summary.events`: batched
//! worker-plane steps are not main-loop events, so the elided count must
//! never exceed the oracle's.
//!
//! The `fixed_service` dimension packs the schedule with exact time ties —
//! the hardest case for the `(time, seq)` lane merge — exactly as in
//! `prop_parengine.rs`; the period strategy avoids multiples of 3 ns for
//! the tie-freedom reason documented in `prop_control_plane.rs`.

use altocumulus::{AcConfig, Altocumulus, Attachment, ControlPlane, Interface, WorkerPlane};
use proptest::prelude::*;
use simcore::faults::Straggler;
use simcore::telemetry::Telemetry;
use simcore::time::{SimDuration, SimTime};
use workload::{PoissonProcess, ServiceDistribution, Trace, TraceBuilder};

#[derive(Debug, Clone)]
struct WpCase {
    groups: usize,
    group_size: usize,
    attachment: Attachment,
    interface: Interface,
    plane: ControlPlane,
    period_ns: u64,
    bulk: usize,
    concurrency: usize,
    local_bound: usize,
    load: f64,
    connections: u32,
    seed: u64,
    fixed_service: bool,
}

fn case_strategy() -> impl Strategy<Value = WpCase> {
    (
        1usize..7, // groups (1 exercises the no-migration degenerate mesh)
        2usize..9, // group_size
        prop_oneof![Just(Attachment::Integrated), Just(Attachment::RssPcie)],
        prop_oneof![Just(Interface::Isa), Just(Interface::Msr)],
        prop_oneof![Just(ControlPlane::Elided), Just(ControlPlane::EventDriven)],
        // Period: > 61 ns and never a multiple of 3 (see module docs).
        (62u64..999).prop_map(|p| if p.is_multiple_of(3) { p + 1 } else { p }),
        1usize..33, // bulk
        1usize..9,  // concurrency (clamped to bulk below)
        1usize..3,  // local bound
        0.05f64..0.9,
        (1u32..32, 0u64..1000, prop_oneof![Just(false), Just(true)]),
    )
        .prop_map(
            |(
                groups,
                group_size,
                attachment,
                interface,
                plane,
                period_ns,
                bulk,
                conc,
                lb,
                load,
                (conns, seed, fixed_service),
            )| {
                WpCase {
                    groups,
                    group_size,
                    attachment,
                    interface,
                    plane,
                    period_ns,
                    bulk,
                    concurrency: conc.min(bulk),
                    local_bound: lb,
                    load,
                    connections: conns,
                    seed,
                    fixed_service,
                }
            },
        )
}

fn build(case: &WpCase, mean: SimDuration, plane: WorkerPlane) -> Altocumulus {
    let mut cfg = match case.attachment {
        Attachment::Integrated => AcConfig::ac_int(case.groups, case.group_size, mean),
        Attachment::RssPcie => AcConfig::ac_rss(case.groups, case.group_size, mean),
    };
    cfg.interface = case.interface;
    cfg.period = SimDuration::from_ns(case.period_ns);
    cfg.bulk = case.bulk;
    cfg.concurrency = case.concurrency;
    cfg.local_bound = case.local_bound;
    cfg.control_plane = case.plane;
    cfg.worker_plane = plane;
    cfg.seed = case.seed;
    Altocumulus::new(cfg)
}

fn dist_for(case: &WpCase) -> ServiceDistribution {
    let mean = SimDuration::from_ns(850);
    if case.fixed_service {
        ServiceDistribution::Fixed(mean)
    } else {
        ServiceDistribution::Exponential { mean }
    }
}

fn trace_for(case: &WpCase, dist: &ServiceDistribution, requests: usize) -> Trace {
    let cores = case.groups * case.group_size;
    let rate = PoissonProcess::rate_for_load(case.load, cores, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), *dist)
        .requests(requests)
        .connections(case.connections)
        .seed(case.seed)
        .build()
}

/// Byte-level comparison of every observable except `summary.events`,
/// which legitimately differs between the engines (and is checked
/// separately: elided never exceeds the oracle).
macro_rules! assert_observables_identical {
    ($elided:expr, $oracle:expr) => {
        prop_assert_eq!(&$elided.system.completions, &$oracle.system.completions);
        prop_assert_eq!($elided.system.end_time, $oracle.system.end_time);
        prop_assert_eq!($elided.system.p99(), $oracle.system.p99());
        prop_assert_eq!(&$elided.stats, &$oracle.stats);
        prop_assert_eq!($elided.faults, $oracle.faults);
        prop_assert_eq!($elided.summary.end_time, $oracle.summary.end_time);
        prop_assert_eq!($elided.summary.stopped_early, $oracle.summary.stopped_early);
        prop_assert_eq!($elided.summary.peak_queue, $oracle.summary.peak_queue);
        prop_assert!(
            $elided.summary.events <= $oracle.summary.events,
            "elision added events: {} > {}",
            $elided.summary.events,
            $oracle.summary.events
        );
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: elided vs per-event worker plane,
    /// bit-identical observables over random configs.
    #[test]
    fn elided_worker_plane_is_byte_identical(case in case_strategy()) {
        let dist = dist_for(&case);
        let trace = trace_for(&case, &dist, 1200);
        let elided = build(&case, dist.mean(), WorkerPlane::Elided).run_detailed(&trace);
        let oracle = build(&case, dist.mean(), WorkerPlane::EventDriven).run_detailed(&trace);
        assert_observables_identical!(elided, oracle);
    }

    /// Traced runs: the per-request span chains (arrival → dispatch →
    /// worker-arrive → done) and the probe rings must export the exact
    /// oracle byte stream even though most spans are emitted from lazily
    /// materialized timeline events.
    #[test]
    fn telemetry_span_chains_are_identical(case in case_strategy()) {
        let dist = dist_for(&case);
        let trace = trace_for(&case, &dist, 800);
        let mut tel_elided = Telemetry::new();
        let mut tel_oracle = Telemetry::new();
        let elided =
            build(&case, dist.mean(), WorkerPlane::Elided).run_traced(&trace, &mut tel_elided);
        let oracle =
            build(&case, dist.mean(), WorkerPlane::EventDriven).run_traced(&trace, &mut tel_oracle);
        assert_observables_identical!(elided, oracle);
        prop_assert_eq!(tel_elided.spans.points(), tel_oracle.spans.points());
        prop_assert_eq!(tel_elided.probes.to_jsonl(), tel_oracle.probes.to_jsonl());
    }
}

/// Satellite regression: a *non-empty but inert* fault plan (straggler
/// window far past the trace end) must downgrade an `Elided` config to the
/// per-event engine wholesale. Observables stay identical to the healthy
/// elided run, while the event count reveals the downgrade: the downgraded
/// run counts every worker-plane event in the main loop, the healthy
/// elided run does not.
#[test]
fn inert_fault_plan_downgrades_to_event_driven() {
    let mean = SimDuration::from_ns(850);
    let dist = ServiceDistribution::Exponential { mean };
    let rate = PoissonProcess::rate_for_load(0.7, 24, mean);
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(4000)
        .connections(16)
        .seed(7)
        .build();
    let cfg = AcConfig::ac_int(3, 8, mean);
    let healthy_elided = Altocumulus::new(cfg.clone()).run_detailed(&trace);

    let mut inert = cfg.clone();
    inert.faults.stragglers.push(Straggler {
        first_core: 0,
        last_core: 23,
        from: SimTime::from_us(1_000_000),
        until: SimTime::from_us(1_000_001),
        slowdown: 3.0,
    });
    let downgraded = Altocumulus::new(inert.clone()).run_detailed(&trace);
    let mut inert_oracle = inert;
    inert_oracle.worker_plane = WorkerPlane::EventDriven;
    let oracle = Altocumulus::new(inert_oracle).run_detailed(&trace);

    // Downgrade proof: the faulted-but-inert run matches the explicit
    // per-event oracle *including* the main-loop event count...
    assert_eq!(downgraded.summary.events, oracle.summary.events);
    // ...and that count strictly exceeds the healthy elided run's, so the
    // elision cannot have engaged under the fault plan.
    assert!(
        downgraded.summary.events > healthy_elided.summary.events,
        "downgraded {} should exceed elided {}",
        downgraded.summary.events,
        healthy_elided.summary.events
    );
    // Inert faults change nothing observable.
    assert_eq!(
        downgraded.system.completions,
        healthy_elided.system.completions
    );
    assert_eq!(downgraded.system.end_time, healthy_elided.system.end_time);
    assert_eq!(downgraded.stats, healthy_elided.stats);
    assert_eq!(
        downgraded.summary.peak_queue,
        healthy_elided.summary.peak_queue
    );
}
