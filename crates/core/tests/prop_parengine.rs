//! Differential property tests for the quiet-window parallel engine: on
//! any configuration, trace, thread count and (possibly permuted)
//! contiguous partitioning, `run_detailed_par` / `run_traced_par` must be
//! **byte-identical** to the serial engine — same completions in the same
//! order, same latency quantiles, same migration counters, same
//! `RunSummary` (including `peak_queue`, which the parallel engine tracks
//! through a virtual ledger of the serial queue occupancy), same telemetry
//! span log and probe-ring export.
//!
//! The period strategy avoids multiples of 3 ns for the same tie-freedom
//! reason documented in `prop_control_plane.rs`.

use altocumulus::{AcConfig, Altocumulus, Attachment, ControlPlane, Interface, WorkerPlane};
use proptest::prelude::*;
use simcore::faults::{FaultPlan, WorkerFailure};
use simcore::telemetry::Telemetry;
use simcore::time::{SimDuration, SimTime};
use simcore::Partitioning;
use workload::{PoissonProcess, ServiceDistribution, Trace, TraceBuilder};

#[derive(Debug, Clone)]
struct ParCase {
    groups: usize,
    group_size: usize,
    attachment: Attachment,
    interface: Interface,
    plane: ControlPlane,
    period_ns: u64,
    bulk: usize,
    concurrency: usize,
    local_bound: usize,
    load: f64,
    connections: u32,
    seed: u64,
    fixed_service: bool,
}

fn case_strategy() -> impl Strategy<Value = ParCase> {
    (
        2usize..7, // groups (>= 2 so the parallel engine engages)
        2usize..9, // group_size
        prop_oneof![Just(Attachment::Integrated), Just(Attachment::RssPcie)],
        prop_oneof![Just(Interface::Isa), Just(Interface::Msr)],
        prop_oneof![Just(ControlPlane::Elided), Just(ControlPlane::EventDriven)],
        // Period: > 61 ns and never a multiple of 3 (see module docs).
        (62u64..999).prop_map(|p| if p.is_multiple_of(3) { p + 1 } else { p }),
        1usize..33, // bulk
        1usize..9,  // concurrency (clamped to bulk below)
        1usize..3,  // local bound
        0.05f64..0.9,
        // Connections, trace seed, and the service-time shape: Fixed packs
        // the schedule with exact time ties, the hardest case for the
        // (time, seq) merge; Exponential exercises the spread-out regime.
        (1u32..32, 0u64..1000, prop_oneof![Just(false), Just(true)]),
    )
        .prop_map(
            |(
                groups,
                group_size,
                attachment,
                interface,
                plane,
                period_ns,
                bulk,
                conc,
                lb,
                load,
                (conns, seed, fixed_service),
            )| {
                ParCase {
                    groups,
                    group_size,
                    attachment,
                    interface,
                    plane,
                    period_ns,
                    bulk,
                    concurrency: conc.min(bulk),
                    local_bound: lb,
                    load,
                    connections: conns,
                    seed,
                    fixed_service,
                }
            },
        )
}

fn build(case: &ParCase, mean: SimDuration) -> Altocumulus {
    let mut cfg = match case.attachment {
        Attachment::Integrated => AcConfig::ac_int(case.groups, case.group_size, mean),
        Attachment::RssPcie => AcConfig::ac_rss(case.groups, case.group_size, mean),
    };
    cfg.interface = case.interface;
    cfg.period = SimDuration::from_ns(case.period_ns);
    cfg.bulk = case.bulk;
    cfg.concurrency = case.concurrency;
    cfg.local_bound = case.local_bound;
    cfg.control_plane = case.plane;
    // This suite compares the serial engine against the parallel one, whose
    // quiet-window protocol owns the queue and therefore always runs the
    // per-event worker plane. Pin the serial side to the same engine so the
    // `summary.events` comparison stays meaningful; worker-plane elision has
    // its own differential oracle in prop_workerplane.rs.
    cfg.worker_plane = WorkerPlane::EventDriven;
    cfg.seed = case.seed;
    Altocumulus::new(cfg)
}

fn dist_for(case: &ParCase) -> ServiceDistribution {
    let mean = SimDuration::from_ns(850);
    if case.fixed_service {
        ServiceDistribution::Fixed(mean)
    } else {
        ServiceDistribution::Exponential { mean }
    }
}

fn trace_for(case: &ParCase, dist: &ServiceDistribution, requests: usize) -> Trace {
    let cores = case.groups * case.group_size;
    let rate = PoissonProcess::rate_for_load(case.load, cores, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), *dist)
        .requests(requests)
        .connections(case.connections)
        .seed(case.seed)
        .build()
}

/// Full byte-level comparison of two results.
macro_rules! assert_results_identical {
    ($a:expr, $b:expr) => {
        prop_assert_eq!(&$a.system.completions, &$b.system.completions);
        prop_assert_eq!($a.system.end_time, $b.system.end_time);
        prop_assert_eq!($a.system.p99(), $b.system.p99());
        prop_assert_eq!(&$a.stats, &$b.stats);
        prop_assert_eq!($a.faults, $b.faults);
        prop_assert_eq!($a.summary.events, $b.summary.events);
        prop_assert_eq!($a.summary.end_time, $b.summary.end_time);
        prop_assert_eq!($a.summary.stopped_early, $b.summary.stopped_early);
        prop_assert_eq!($a.summary.peak_queue, $b.summary.peak_queue);
        // Replay provenance: per-stream RNG draw counts are part of the
        // recorded run identity, so they must be engine-invariant too.
        prop_assert_eq!($a.rng, $b.rng);
    };
}

/// A random contiguous partitioning of `0..n` into `parts` ranges, with
/// the *order* of the ranges shuffled by `shuffle_seed` — partition index
/// need not correlate with group index, and the merge must not care.
fn random_partitioning(n: usize, parts: usize, cut_seed: u64, shuffle_seed: u64) -> Partitioning {
    let parts = parts.min(n).max(1);
    // Deterministic LCG; no external RNG needed in tests.
    let mut state = cut_seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    // Pick parts-1 distinct interior boundaries.
    let mut bounds: Vec<usize> = Vec::with_capacity(parts + 1);
    bounds.push(0);
    while bounds.len() < parts {
        let b = 1 + lcg() % (n - 1);
        if !bounds.contains(&b) {
            bounds.push(b);
        }
    }
    bounds.push(n);
    bounds.sort_unstable();
    let mut ranges: Vec<std::ops::Range<usize>> = bounds.windows(2).map(|w| w[0]..w[1]).collect();
    // Fisher–Yates shuffle of the range order.
    let mut state = shuffle_seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(1);
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for i in (1..ranges.len()).rev() {
        ranges.swap(i, lcg() % (i + 1));
    }
    Partitioning::new(n, ranges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: the even-split parallel engine at every
    /// practical thread count vs the serial engine, bit-identical output.
    #[test]
    fn parallel_engine_is_byte_identical(case in case_strategy(), threads in 1usize..=8) {
        let dist = dist_for(&case);
        let trace = trace_for(&case, &dist, 1200);
        let serial = build(&case, dist.mean()).run_detailed(&trace);
        let par = build(&case, dist.mean()).run_detailed_par(&trace, threads);
        assert_results_identical!(serial, par);
    }

    /// Random (permuted) contiguous partitionings, with telemetry: span
    /// logs and probe rings must merge into the exact serial byte stream
    /// regardless of how groups are split or which worker owns which part.
    #[test]
    fn permuted_partitionings_merge_identically(
        case in case_strategy(),
        parts in 2usize..6,
        cut_seed in 0u64..1 << 48,
        shuffle_seed in 0u64..1 << 48,
    ) {
        let dist = dist_for(&case);
        let trace = trace_for(&case, &dist, 800);
        let mut tel_serial = Telemetry::new();
        let mut tel_par = Telemetry::new();
        let serial = build(&case, dist.mean()).run_traced(&trace, &mut tel_serial);
        let p = random_partitioning(case.groups, parts, cut_seed, shuffle_seed);
        let par = build(&case, dist.mean()).run_traced_partitioned(&trace, &mut tel_par, p);
        assert_results_identical!(serial, par);
        prop_assert_eq!(tel_serial.spans.points(), tel_par.spans.points());
        prop_assert_eq!(tel_serial.probes.to_jsonl(), tel_par.probes.to_jsonl());
    }
}

/// Satellite 6 regression: the same split handed over in two different
/// partition orders (so partition ids, worker assignment and join order
/// all differ) must produce identical output — the commit walk merges on
/// `(time, seq)`, never on partition or arrival order.
#[test]
fn partition_join_order_is_irrelevant() {
    let mean = SimDuration::from_ns(850);
    let mut cfg = AcConfig::ac_int(6, 8, mean);
    cfg.period = SimDuration::from_ns(200);
    cfg.worker_plane = WorkerPlane::EventDriven;
    let dist = ServiceDistribution::Exponential { mean };
    let rate = PoissonProcess::rate_for_load(0.7, 48, mean);
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(4000)
        .connections(24)
        .seed(11)
        .build();

    let forward = Partitioning::new(6, vec![0..2, 2..4, 4..6]);
    let backward = Partitioning::new(6, vec![4..6, 0..2, 2..4]);
    let mut tel_a = Telemetry::new();
    let mut tel_b = Telemetry::new();
    let a = Altocumulus::new(cfg.clone()).run_traced_partitioned(&trace, &mut tel_a, forward);
    let b = Altocumulus::new(cfg.clone()).run_traced_partitioned(&trace, &mut tel_b, backward);
    let serial = Altocumulus::new(cfg).run_detailed(&trace);

    assert_eq!(a.system.completions, b.system.completions);
    assert_eq!(a.system.completions, serial.system.completions);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stats, serial.stats);
    assert_eq!(a.summary.events, serial.summary.events);
    assert_eq!(a.summary.peak_queue, serial.summary.peak_queue);
    assert_eq!(b.summary.peak_queue, serial.summary.peak_queue);
    assert_eq!(tel_a.spans.points(), tel_b.spans.points());
    assert_eq!(tel_a.probes.to_jsonl(), tel_b.probes.to_jsonl());
}

/// Regression: a partition that executed a window and then sits one or
/// more windows out must not leak its old shard records into a later
/// commit walk. With one group per partition, windows routinely miss a
/// few partitions, which is exactly the shape that triggered stale-record
/// replay (extra un-elided ticks: same completions, more events). The
/// tie-heavy Fixed service distribution is load-bearing — it reproduces
/// the hotpath workload where the bug was found.
#[test]
fn idle_partitions_leave_no_stale_records() {
    let mean = SimDuration::from_ns(850);
    let mut cfg = AcConfig::ac_int(16, 16, mean);
    cfg.worker_plane = WorkerPlane::EventDriven;
    let dist = ServiceDistribution::Fixed(mean);
    let rate = PoissonProcess::rate_for_load(0.6, 256, mean);
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(1000)
        .connections(16)
        .seed(1)
        .build();
    let serial = Altocumulus::new(cfg.clone()).run_detailed(&trace);
    let par = Altocumulus::new(cfg).run_detailed_par(&trace, 16);
    assert_eq!(serial.system.completions, par.system.completions);
    assert_eq!(serial.stats, par.stats);
    assert_eq!(serial.summary.events, par.summary.events);
    assert_eq!(serial.summary.end_time, par.summary.end_time);
    assert_eq!(serial.summary.peak_queue, par.summary.peak_queue);
}

/// A non-empty fault plan must downgrade the parallel request to the
/// serial engine wholesale (fault events are cross-group and RNG-bearing);
/// the result is trivially identical, and `faults` counters still line up.
#[test]
fn faulted_runs_fall_back_to_serial() {
    let mean = SimDuration::from_ns(850);
    let mut cfg = AcConfig::ac_int(4, 8, mean);
    cfg.faults = FaultPlan {
        worker_failures: vec![WorkerFailure {
            core: 9,
            at: SimTime::from_us(5),
        }],
        ..FaultPlan::default()
    };
    let dist = ServiceDistribution::Exponential { mean };
    let rate = PoissonProcess::rate_for_load(0.6, 32, mean);
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(2000)
        .connections(16)
        .seed(3)
        .build();
    let serial = Altocumulus::new(cfg.clone()).run_detailed(&trace);
    let par = Altocumulus::new(cfg).run_detailed_par(&trace, 4);
    assert_eq!(serial.system.completions, par.system.completions);
    assert_eq!(serial.faults, par.faults);
    assert_eq!(serial.summary.events, par.summary.events);
    assert_eq!(serial.summary.peak_queue, par.summary.peak_queue);
}
