//! Integration tests for deterministic fault injection and graceful
//! degradation in the Altocumulus system (see `simcore::faults` and
//! DESIGN.md § Fault model & degradation).

use altocumulus::config::Resilience;
use altocumulus::{AcConfig, AcResult, Altocumulus, ControlPlane};
use simcore::faults::{FaultPlan, FifoStall, ManagerFailure, NocFaults, Straggler, WorkerFailure};
use simcore::time::{SimDuration, SimTime};
use workload::{PoissonProcess, ServiceDistribution, Trace, TraceBuilder};

const GROUPS: usize = 4;
const GROUP_SIZE: usize = 16;
const CORES: usize = GROUPS * GROUP_SIZE;

fn trace(load: f64, n: usize, conns: u32) -> Trace {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(load, CORES, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(n)
        .connections(conns)
        .seed(77)
        .build()
}

fn cfg() -> AcConfig {
    AcConfig::ac_int(GROUPS, GROUP_SIZE, SimDuration::from_ns(850))
}

fn run(c: AcConfig, t: &Trace) -> AcResult {
    Altocumulus::new(c).run_detailed(t)
}

/// An inert-but-non-empty plan: every fault knob present, none with any
/// observable effect (slowdown 1.0, zero-probability NoC). Exercises the
/// fault-layer *code paths* while the physics must stay untouched.
fn inert_plan() -> FaultPlan {
    FaultPlan {
        stragglers: vec![Straggler {
            first_core: 0,
            last_core: CORES - 1,
            from: SimTime::ZERO,
            until: SimTime::MAX,
            slowdown: 1.0,
        }],
        noc: Some(NocFaults {
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay: SimDuration::from_ns(500),
        }),
        ..FaultPlan::default()
    }
}

fn assert_identical(a: &AcResult, b: &AcResult) {
    assert_eq!(a.system.completions, b.system.completions);
    assert_eq!(a.system.end_time, b.system.end_time);
    assert_eq!(a.stats.ticks, b.stats.ticks);
    assert_eq!(a.stats.migrate_messages, b.stats.migrate_messages);
    assert_eq!(a.stats.migrated_requests, b.stats.migrated_requests);
    assert_eq!(a.stats.nacked_messages, b.stats.nacked_messages);
    assert_eq!(a.stats.update_messages, b.stats.update_messages);
    assert_eq!(a.stats.guard_blocked, b.stats.guard_blocked);
}

#[test]
fn inert_nonempty_plan_is_byte_identical_to_empty() {
    let t = trace(0.7, 20_000, 5);
    let healthy = run(cfg(), &t);
    let mut c = cfg();
    c.faults = inert_plan();
    let inert = run(c, &t);
    assert_identical(&healthy, &inert);
    // The fault layer ran (it exists) but acted on nothing.
    assert_eq!(inert.faults.worker_failures, 0);
    assert_eq!(inert.faults.resteered_requests, 0);
    assert_eq!(inert.faults.updates_dropped, 0);
    // A fault-free run never touches the FAULTS stream — its draw count is
    // part of the recorded run identity.
    assert_eq!(healthy.rng.faults, 0);
}

#[test]
fn straggler_inflates_tail_but_loses_nothing() {
    let t = trace(0.7, 20_000, 64);
    let healthy = run(cfg(), &t);
    let mut c = cfg();
    // Second group's workers run 6x slower through the middle of the run.
    c.faults.stragglers.push(Straggler {
        first_core: GROUP_SIZE + 1,
        last_core: 2 * GROUP_SIZE - 1,
        from: SimTime::from_us(30),
        until: SimTime::from_us(200),
        slowdown: 6.0,
    });
    let slowed = run(c, &t);
    assert_eq!(slowed.system.completions.len(), t.len());
    assert!(
        slowed.system.p99() > healthy.system.p99(),
        "straggling cores must hurt the tail: {} vs {}",
        slowed.system.p99(),
        healthy.system.p99()
    );
}

#[test]
fn dead_workers_resteer_and_everything_completes() {
    let t = trace(0.7, 30_000, 64);
    let mut c = cfg();
    for core in [1usize, 2, 3] {
        c.faults.worker_failures.push(WorkerFailure {
            core,
            at: SimTime::from_us(50),
        });
    }
    let r = run(c, &t);
    assert_eq!(
        r.system.completions.len(),
        t.len(),
        "graceful degradation must not lose requests"
    );
    assert_eq!(r.faults.worker_failures, 3);
    assert!(
        r.faults.resteered_requests > 0,
        "at 70% load the dying workers must have held work: {:?}",
        r.faults
    );
}

#[test]
fn whole_group_death_triggers_emergency_drain() {
    let t = trace(0.55, 30_000, 64);
    let mut c = cfg();
    c.resilience = Resilience::hardened();
    // Every worker of group 0 dies; only the manager survives to evacuate.
    for w in 1..GROUP_SIZE {
        c.faults.worker_failures.push(WorkerFailure {
            core: w,
            at: SimTime::from_us(40),
        });
    }
    let r = run(c, &t);
    assert_eq!(r.system.completions.len(), t.len());
    assert_eq!(r.faults.worker_failures, (GROUP_SIZE - 1) as u64);
    assert!(
        r.faults.emergency_migrations > 0,
        "a workerless group must evacuate its queue: {:?}",
        r.faults
    );
}

#[test]
fn manager_death_is_taken_over_by_a_neighbor() {
    let t = trace(0.55, 30_000, 64);
    let mut c = cfg();
    c.resilience = Resilience::hardened();
    c.faults.manager_failures.push(ManagerFailure {
        group: 1,
        at: SimTime::from_us(50),
    });
    let r = run(c, &t);
    assert_eq!(
        r.system.completions.len(),
        t.len(),
        "takeover must rescue the dead manager's queue and arrivals"
    );
    assert_eq!(r.faults.manager_failures, 1);
    assert_eq!(r.faults.takeovers, 1);
    assert!(
        r.faults.redirected_arrivals > 0,
        "post-takeover arrivals steered at group 1 must land at the heir: {:?}",
        r.faults
    );
}

#[test]
fn staged_migrations_into_a_dead_manager_time_out_and_resteer() {
    let t = trace(0.8, 30_000, 5); // imbalanced => frequent migrations
    let mut c = cfg();
    // Slow failure detection: peers keep MIGRATE-ing into the dead group's
    // frozen (attractive) queue view until the per-migration timeout fires.
    c.resilience = Resilience {
        nack_backoff: Some(SimDuration::from_us(2)),
        migrate_timeout: Some(SimDuration::from_us(10)),
        takeover_delay: SimDuration::from_us(40),
    };
    c.faults.manager_failures.push(ManagerFailure {
        group: 1,
        at: SimTime::from_us(60),
    });
    let r = run(c, &t);
    assert_eq!(r.system.completions.len(), t.len());
    assert!(
        r.faults.migrate_timeouts > 0,
        "MIGRATEs dropped by the dead manager must time out: {:?}",
        r.faults
    );
    assert!(
        r.faults.resteered_requests > 0,
        "timed-out descriptors must return to service: {:?}",
        r.faults
    );
}

#[test]
fn fifo_stall_storm_nacks_and_recovers() {
    let t = trace(0.8, 30_000, 5); // few connections => heavy imbalance
    let healthy = run(cfg(), &t);
    let mut c = cfg();
    c.resilience = Resilience::hardened();
    // Every group's receive FIFO wedges for a long window mid-run: all
    // migrations NACK, sources back off, then the storm clears.
    for g in 0..GROUPS {
        c.faults.fifo_stalls.push(FifoStall {
            group: g,
            from: SimTime::from_us(50),
            until: SimTime::from_us(250),
        });
    }
    let r = run(c, &t);
    assert_eq!(r.system.completions.len(), t.len());
    assert!(
        r.stats.nacked_messages > healthy.stats.nacked_messages,
        "a stalled receive FIFO must NACK incoming MIGRATEs: {} vs healthy {}",
        r.stats.nacked_messages,
        healthy.stats.nacked_messages
    );
    assert!(
        r.faults.backoff_skipped > 0,
        "hardened resilience must back off NACKing destinations: {:?}",
        r.faults
    );
}

#[test]
fn faulted_runs_are_deterministic() {
    let t = trace(0.7, 20_000, 64);
    let horizon = t.requests().last().unwrap().arrival;
    let workers: Vec<usize> = (0..CORES).filter(|c| c % GROUP_SIZE != 0).collect();
    let make = || {
        let mut c = cfg();
        c.resilience = Resilience::hardened();
        c.faults = FaultPlan::stress(42, &workers, 0.5, horizon);
        run(c, &t)
    };
    let a = make();
    let b = make();
    assert_eq!(a.system.completions, b.system.completions);
    assert_eq!(a.system.end_time, b.system.end_time);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.stats.migrate_messages, b.stats.migrate_messages);
    assert!(
        a.faults.worker_failures > 0 || a.faults.updates_dropped > 0,
        "the stress plan must actually inject something: {:?}",
        a.faults
    );
    // Replay provenance: the per-stream draw counts recorded into run
    // artifacts must be deterministic, and a lossy stress plan must
    // actually consume the FAULTS stream.
    assert_eq!(a.rng, b.rng);
    assert!(a.rng.faults > 0, "lossy NoC must draw: {:?}", a.rng);
}

#[test]
fn control_planes_agree_under_deterministic_faults() {
    // NoC faults draw from an RNG whose draw count differs between control
    // planes (idle-elided ticks send no UPDATEs), so cross-plane equivalence
    // is only claimed for the deterministic fault dimensions.
    let t = trace(0.7, 20_000, 5);
    let make = |plane: ControlPlane| {
        let mut c = cfg();
        c.control_plane = plane;
        c.resilience = Resilience::hardened();
        c.faults.stragglers.push(Straggler {
            first_core: 1,
            last_core: GROUP_SIZE - 1,
            from: SimTime::from_us(30),
            until: SimTime::from_us(120),
            slowdown: 3.0,
        });
        c.faults.worker_failures.push(WorkerFailure {
            core: GROUP_SIZE + 1,
            at: SimTime::from_us(60),
        });
        c.faults.fifo_stalls.push(FifoStall {
            group: 2,
            from: SimTime::from_us(40),
            until: SimTime::from_us(90),
        });
        run(c, &t)
    };
    let el = make(ControlPlane::Elided);
    let ev = make(ControlPlane::EventDriven);
    assert_eq!(el.system.completions, ev.system.completions);
    assert_eq!(el.system.end_time, ev.system.end_time);
    assert_eq!(el.faults, ev.faults);
    assert_eq!(el.stats.migrated_requests, ev.stats.migrated_requests);
}
