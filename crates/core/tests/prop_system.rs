//! Property-based tests over whole-system invariants: for arbitrary (small)
//! configurations and workloads, the Altocumulus simulation conserves
//! requests, respects at-most-once migration, and never reports impossible
//! latencies.

use altocumulus::{AcConfig, Altocumulus, Attachment, Interface};
use proptest::prelude::*;
use simcore::time::SimDuration;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

#[derive(Debug, Clone)]
struct SysCase {
    groups: usize,
    group_size: usize,
    attachment: Attachment,
    interface: Interface,
    period_ns: u64,
    bulk: usize,
    concurrency: usize,
    local_bound: usize,
    load: f64,
    connections: u32,
    seed: u64,
}

fn case_strategy() -> impl Strategy<Value = SysCase> {
    (
        1usize..5, // groups
        2usize..9, // group_size
        prop_oneof![Just(Attachment::Integrated), Just(Attachment::RssPcie)],
        prop_oneof![Just(Interface::Isa), Just(Interface::Msr)],
        50u64..1000, // period ns
        1usize..33,  // bulk
        1usize..9,   // concurrency (clamped to bulk below)
        1usize..3,   // local bound
        0.1f64..0.9, // load
        1u32..32,    // connections
        0u64..1000,  // seed
    )
        .prop_map(
            |(
                groups,
                group_size,
                attachment,
                interface,
                period_ns,
                bulk,
                conc,
                lb,
                load,
                conns,
                seed,
            )| {
                SysCase {
                    groups,
                    group_size,
                    attachment,
                    interface,
                    period_ns,
                    bulk,
                    concurrency: conc.min(bulk),
                    local_bound: lb,
                    load,
                    connections: conns,
                    seed,
                }
            },
        )
}

fn build(case: &SysCase, mean: SimDuration) -> Altocumulus {
    let mut cfg = match case.attachment {
        Attachment::Integrated => AcConfig::ac_int(case.groups, case.group_size, mean),
        Attachment::RssPcie => AcConfig::ac_rss(case.groups, case.group_size, mean),
    };
    cfg.interface = case.interface;
    cfg.period = SimDuration::from_ns(case.period_ns);
    cfg.bulk = case.bulk;
    cfg.concurrency = case.concurrency;
    cfg.local_bound = case.local_bound;
    cfg.seed = case.seed;
    Altocumulus::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation + sanity across arbitrary configurations.
    #[test]
    fn system_conserves_requests(case in case_strategy()) {
        let dist = ServiceDistribution::Exponential {
            mean: SimDuration::from_ns(850),
        };
        let cores = case.groups * case.group_size;
        let rate = PoissonProcess::rate_for_load(case.load, cores, dist.mean());
        let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(1500)
            .connections(case.connections)
            .seed(case.seed)
            .build();
        let r = build(&case, dist.mean()).run_detailed(&trace);

        // Every request completes exactly once.
        prop_assert_eq!(r.system.completions.len(), trace.len());
        let mut seen = vec![false; trace.len()];
        for c in &r.system.completions {
            let i = c.id.0 as usize;
            prop_assert!(!seen[i], "request {i} completed twice");
            seen[i] = true;
        }
        // Latency >= handler cost; cores in range.
        for c in &r.system.completions {
            let req = &trace.requests()[c.id.0 as usize];
            prop_assert!(c.latency() >= req.service);
            prop_assert!(c.core < cores);
        }
        // Migration accounting is internally consistent.
        let migrated = r.system.completions.iter().filter(|c| c.migrated).count() as u64;
        prop_assert_eq!(migrated, r.stats.migrated_requests);
        if case.groups == 1 {
            prop_assert_eq!(r.stats.migrate_messages, 0);
        }
        prop_assert!(r.stats.nacked_requests <= r.stats.migrate_messages * case.bulk as u64);
    }

    /// Determinism for arbitrary configurations.
    #[test]
    fn system_deterministic(case in case_strategy()) {
        let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
        let cores = case.groups * case.group_size;
        let rate = PoissonProcess::rate_for_load(case.load, cores, dist.mean());
        let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(800)
            .connections(case.connections)
            .seed(case.seed)
            .build();
        let a = build(&case, dist.mean()).run_detailed(&trace);
        let b = build(&case, dist.mean()).run_detailed(&trace);
        prop_assert_eq!(a.system.p99(), b.system.p99());
        prop_assert_eq!(a.system.end_time, b.system.end_time);
        prop_assert_eq!(a.stats.migrated_requests, b.stats.migrated_requests);
        prop_assert_eq!(a.stats.migrate_messages, b.stats.migrate_messages);
    }
}
