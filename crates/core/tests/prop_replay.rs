//! Property tests for the record/replay trace contract.
//!
//! The recorded event stream is an *engine-independent* run identity: on
//! any configuration, the `TRACE/1.0` artifact produced with a recording
//! sink attached must be identical — event for event, at exact `(time,
//! seq)` rank — whether the run executed on the elided serial engine, the
//! event-driven serial engine, or the quiet-window parallel engine at any
//! thread count. A summary-granularity recording (the golden-trace format)
//! must likewise verify digest-for-digest against a full re-recording,
//! which is exactly what the `replay` binary does for a golden gate.
//!
//! The corruption properties pin the *detector*: flipping one payload,
//! dropping one event, or perturbing the recording by a single picosecond
//! (the `AC_TRACE_PERTURB` hook, exercised here programmatically via
//! [`Recorder::with_perturb`] to stay env-race-free under parallel test
//! threads) must be rejected at exactly the first divergent index, with a
//! diff that names the divergent `(time, seq)`.

use altocumulus::{event_kind_names, AcConfig, Altocumulus, WorkerPlane};
use proptest::prelude::*;
use simcore::time::SimDuration;
use simcore::trace::{
    first_divergence, parse_artifact, render_divergence, validate_artifact, write_artifact_meta,
    write_run_section, Divergence, Granularity, ParsedRun, Recorder, RunMeta, RunTotals,
};
use simcore::Partitioning;
use workload::{PoissonProcess, ServiceDistribution, Trace, TraceBuilder};

#[derive(Debug, Clone)]
struct Case {
    groups: usize,
    group_size: usize,
    load: f64,
    connections: u32,
    seed: u64,
    fixed_service: bool,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        2usize..6, // groups (>= 2 so the parallel engine engages)
        2usize..7, // group_size
        0.05f64..0.9,
        1u32..32,
        0u64..1000,
        prop_oneof![Just(false), Just(true)],
    )
        .prop_map(
            |(groups, group_size, load, connections, seed, fixed_service)| Case {
                groups,
                group_size,
                load,
                connections,
                seed,
                fixed_service,
            },
        )
}

fn trace_for(case: &Case, requests: usize) -> Trace {
    let mean = SimDuration::from_ns(850);
    let dist = if case.fixed_service {
        ServiceDistribution::Fixed(mean)
    } else {
        ServiceDistribution::Exponential { mean }
    };
    let cores = case.groups * case.group_size;
    let rate = PoissonProcess::rate_for_load(case.load, cores, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(requests)
        .connections(case.connections)
        .seed(case.seed)
        .build()
}

/// Records one run of `case` on the engine selected by `(plane, threads)`
/// and parses the section back: `threads == 1` degenerates the
/// partitioning, so the serial engine chosen by `plane` runs; `threads >=
/// 2` engages the quiet-window parallel engine (which ignores `plane`).
/// `config_fp`/`trace_fp` are pinned to 0 — the worker-plane knob is part
/// of the config fingerprint by design, and this suite compares *event
/// streams* across engines, not provenance (which has its own unit tests).
fn record(
    case: &Case,
    trace: &Trace,
    plane: WorkerPlane,
    threads: usize,
    perturb: Option<u64>,
    granularity: Granularity,
) -> ParsedRun {
    let mean = SimDuration::from_ns(850);
    let mut cfg = AcConfig::ac_int(case.groups, case.group_size, mean);
    cfg.worker_plane = plane;
    cfg.seed = case.seed;
    let seed = cfg.seed;
    let mut sys = Altocumulus::new(cfg);
    let mut rec = Recorder::new(granularity).with_perturb(perturb);
    let parts = Partitioning::even(case.groups, threads);
    let res = sys.run_recorded_partitioned(trace, &mut rec, parts);
    let meta = RunMeta {
        label: "case".into(),
        engine: res.engine,
        seed,
        config_fp: 0,
        trace_fp: 0,
        topology: None,
        params: Vec::new(),
    };
    let totals = RunTotals {
        rng: vec![
            ("nic".into(), res.rng.nic),
            ("faults".into(), res.rng.faults),
        ],
        end_ps: res.summary.end_time.as_ps(),
        completed: res.system.completions.len() as u64,
    };
    let mut text = String::new();
    write_artifact_meta(&mut text, "prop_replay", "prop_replay", true, 1);
    write_run_section(&mut text, &meta, &rec, &totals);
    // A perturbed recording may legitimately fail schema validation (the
    // +1 ps bump can break strict (time, seq) monotonicity against the
    // next event) — in the real pipeline that is already a catch. Here the
    // divergence detector itself is under test, so only honest recordings
    // are schema-gated.
    if perturb.is_none() {
        validate_artifact(&text).expect("fresh recording passes schema validation");
    }
    parse_artifact(&text)
        .expect("fresh recording parses")
        .runs
        .remove(0)
}

fn diff_of(expected: &ParsedRun, actual: &ParsedRun) -> String {
    match first_divergence(expected, actual) {
        None => String::new(),
        Some(d) => render_divergence(&d, expected, actual, event_kind_names(), 4),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Record -> replay round-trips divergence-free across all three
    /// engines and `PAR_THREADS` in {1, 4}: the full event stream of the
    /// elided serial engine, the event-driven serial engine, and the
    /// parallel engine are pairwise identical, and a summary-granularity
    /// recording (the golden format) verifies against a full re-record.
    #[test]
    fn round_trip_is_engine_invariant(case in case_strategy()) {
        let trace = trace_for(&case, 2_000);
        let elided = record(&case, &trace, WorkerPlane::Elided, 1, None, Granularity::Full);
        let ev = record(&case, &trace, WorkerPlane::EventDriven, 1, None, Granularity::Full);
        let par = record(&case, &trace, WorkerPlane::EventDriven, 4, None, Granularity::Full);
        prop_assert_eq!(&elided.engine, "serial_elided");
        prop_assert_eq!(&ev.engine, "serial_event_driven");
        prop_assert_eq!(&par.engine, "parallel");
        prop_assert!(elided.footer.events > 0);

        let d = diff_of(&elided, &ev);
        prop_assert!(d.is_empty(), "elided vs event-driven diverged:\n{}", d);
        let d = diff_of(&ev, &par);
        prop_assert!(d.is_empty(), "event-driven vs parallel diverged:\n{}", d);

        // Golden flow: summary recording vs full re-record on another engine.
        let summary = record(&case, &trace, WorkerPlane::Elided, 1, None, Granularity::Summary);
        let d = diff_of(&summary, &par);
        prop_assert!(d.is_empty(), "summary vs full replay diverged:\n{}", d);
    }

    /// A corrupted artifact is rejected at exactly the corrupted index:
    /// flipping one payload bit or dropping one event yields an event
    /// divergence at that index, never a pass and never a later index.
    #[test]
    fn corruption_is_caught_at_the_exact_index(
        case in case_strategy(),
        pick in 0u64..u64::MAX,
    ) {
        let trace = trace_for(&case, 1_000);
        let honest = record(&case, &trace, WorkerPlane::EventDriven, 1, None, Granularity::Full);
        prop_assume!(!honest.events.is_empty());
        let i = (pick % honest.events.len() as u64) as usize;

        let mut flipped = honest.clone();
        flipped.events[i].payload ^= 0xFF;
        match first_divergence(&flipped, &honest) {
            Some(Divergence::Event { index, .. }) => prop_assert_eq!(index, i as u64),
            other => prop_assert!(false, "expected event divergence at {}, got {:?}", i, other),
        }

        let mut dropped = honest.clone();
        dropped.events.remove(i);
        match first_divergence(&dropped, &honest) {
            Some(Divergence::Event { index, .. }) => prop_assert_eq!(index, i as u64),
            other => prop_assert!(false, "expected event divergence at {}, got {:?}", i, other),
        }
    }
}

/// The seeded-mutation acceptance demo: a recording perturbed via the
/// `AC_TRACE_PERTURB` hook (programmatic form) replays with a divergence at
/// exactly the perturbed index, and the rendered diff names the divergent
/// `(time, seq)` on its `>>` marker line.
#[test]
fn perturbed_recording_is_caught_with_exact_location() {
    let case = Case {
        groups: 2,
        group_size: 4,
        load: 0.5,
        connections: 16,
        seed: 7,
        fixed_service: false,
    };
    let trace = trace_for(&case, 2_000);
    let honest = record(
        &case,
        &trace,
        WorkerPlane::EventDriven,
        1,
        None,
        Granularity::Full,
    );
    let k = honest.events.len() / 3;
    let perturbed = record(
        &case,
        &trace,
        WorkerPlane::EventDriven,
        1,
        Some(k as u64),
        Granularity::Full,
    );

    let div = first_divergence(&perturbed, &honest).expect("perturbation must be caught");
    let Divergence::Event {
        index,
        expected: Some(e),
        actual: Some(a),
    } = div
    else {
        panic!("expected an event divergence, got {div:?}");
    };
    assert_eq!(index, k as u64, "first divergence at the perturbed index");
    assert_eq!(
        e.t_ps,
        a.t_ps + 1,
        "perturbation bumps time by one picosecond"
    );
    assert_eq!(e.seq, a.seq);

    let text = render_divergence(
        &Divergence::Event {
            index,
            expected: Some(e),
            actual: Some(a),
        },
        &perturbed,
        &honest,
        event_kind_names(),
        4,
    );
    assert!(
        text.contains(">>"),
        "diff marks the divergent line:\n{text}"
    );
    assert!(
        text.contains(&format!("t={}ps", a.t_ps)) && text.contains(&format!("seq={}", a.seq)),
        "diff names the divergent (time, seq):\n{text}"
    );
}
