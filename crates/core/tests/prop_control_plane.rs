//! Differential property tests for the manager-plane event elision: the
//! `Elided` control plane (mailbox UPDATE delivery + idle-tick
//! fast-forward) must be *observationally identical* to the legacy
//! `EventDriven` oracle — same completions, same latencies, same migration
//! counters — while dispatching strictly fewer simulator events.
//!
//! The period strategy below avoids multiples of 3 ns and stays above
//! 61 ns. Every message flight in the model is `C + 3k` ns (NoC hop/flit
//! latencies and the injection stagger are all 3 ns quanta, `C` the
//! runtime cost), and tick instants sit on the lattice `m·(C + P)`, so a
//! message can only land *exactly on* a period boundary if `3k = P`
//! (needs `P ≡ 0 mod 3`) or `3k = C + 2P` (needs `3k > 138`, more than
//! the largest flight these configurations can produce once `P > 61`).
//! Excluding those ties keeps the two control planes' same-instant event
//! ordering provably identical; the paper-default periods (200/100 ns)
//! are in the safe set too, which is what keeps the figure outputs
//! byte-identical.

use altocumulus::{AcConfig, Altocumulus, Attachment, ControlPlane, Interface};
use proptest::prelude::*;
use simcore::time::SimDuration;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

#[derive(Debug, Clone)]
struct PlaneCase {
    groups: usize,
    group_size: usize,
    attachment: Attachment,
    interface: Interface,
    period_ns: u64,
    bulk: usize,
    concurrency: usize,
    local_bound: usize,
    predict_only: bool,
    load: f64,
    connections: u32,
    seed: u64,
}

fn case_strategy() -> impl Strategy<Value = PlaneCase> {
    (
        1usize..5, // groups
        2usize..9, // group_size
        prop_oneof![Just(Attachment::Integrated), Just(Attachment::RssPcie)],
        prop_oneof![Just(Interface::Isa), Just(Interface::Msr)],
        // Period: > 61 ns and never a multiple of 3 (see module docs).
        (62u64..999).prop_map(|p| if p.is_multiple_of(3) { p + 1 } else { p }),
        1usize..33, // bulk
        1usize..9,  // concurrency (clamped to bulk below)
        1usize..3,  // local bound
        any::<bool>(),
        // Loads from near-idle (deep idle-tick fast-forward) to busy.
        0.02f64..0.9,
        1u32..32, // connections
        0u64..1000,
    )
        .prop_map(
            |(
                groups,
                group_size,
                attachment,
                interface,
                period_ns,
                bulk,
                conc,
                lb,
                predict_only,
                load,
                conns,
                seed,
            )| {
                PlaneCase {
                    groups,
                    group_size,
                    attachment,
                    interface,
                    period_ns,
                    bulk,
                    concurrency: conc.min(bulk),
                    local_bound: lb,
                    predict_only,
                    load,
                    connections: conns,
                    seed,
                }
            },
        )
}

fn build(case: &PlaneCase, mean: SimDuration, plane: ControlPlane) -> Altocumulus {
    let mut cfg = match case.attachment {
        Attachment::Integrated => AcConfig::ac_int(case.groups, case.group_size, mean),
        Attachment::RssPcie => AcConfig::ac_rss(case.groups, case.group_size, mean),
    };
    cfg.interface = case.interface;
    cfg.period = SimDuration::from_ns(case.period_ns);
    cfg.bulk = case.bulk;
    cfg.concurrency = case.concurrency;
    cfg.local_bound = case.local_bound;
    cfg.predict_only = case.predict_only;
    cfg.control_plane = plane;
    cfg.seed = case.seed;
    Altocumulus::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: elided vs event-driven on random
    /// configurations and loads, bit-identical observable output.
    #[test]
    fn elided_control_plane_is_observationally_identical(case in case_strategy()) {
        let dist = ServiceDistribution::Exponential {
            mean: SimDuration::from_ns(850),
        };
        let cores = case.groups * case.group_size;
        let rate = PoissonProcess::rate_for_load(case.load, cores, dist.mean());
        let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(1200)
            .connections(case.connections)
            .seed(case.seed)
            .build();
        let el = build(&case, dist.mean(), ControlPlane::Elided).run_detailed(&trace);
        let ev = build(&case, dist.mean(), ControlPlane::EventDriven).run_detailed(&trace);

        // Every completion identical: id, finish instant, core, migrated
        // flag — i.e. every per-request latency byte-for-byte.
        prop_assert_eq!(&el.system.completions, &ev.system.completions);
        prop_assert_eq!(el.system.end_time, ev.system.end_time);
        prop_assert_eq!(el.system.p99(), ev.system.p99());

        // Every migration counter identical, including the analytically
        // accounted ticks and UPDATE broadcasts of fast-forwarded groups.
        prop_assert_eq!(el.stats.ticks, ev.stats.ticks);
        prop_assert_eq!(el.stats.migrate_messages, ev.stats.migrate_messages);
        prop_assert_eq!(el.stats.migrated_requests, ev.stats.migrated_requests);
        prop_assert_eq!(el.stats.nacked_messages, ev.stats.nacked_messages);
        prop_assert_eq!(el.stats.nacked_requests, ev.stats.nacked_requests);
        prop_assert_eq!(el.stats.update_messages, ev.stats.update_messages);
        prop_assert_eq!(el.stats.guard_blocked, ev.stats.guard_blocked);
        prop_assert_eq!(el.stats.predicted.len(), ev.stats.predicted.len());
        for i in 0..trace.len() {
            prop_assert_eq!(el.stats.predicted.contains(i), ev.stats.predicted.contains(i));
        }

        // And the whole point: the elided plane dispatches fewer events.
        prop_assert!(el.summary.events <= ev.summary.events);
        if case.groups > 1 && ev.stats.update_messages > 0 {
            prop_assert!(
                el.summary.events < ev.summary.events,
                "UPDATE elision must remove events: {} vs {}",
                el.summary.events,
                ev.summary.events
            );
        }
    }
}
