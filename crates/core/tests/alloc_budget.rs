//! Steady-state allocation budget for the full Altocumulus hot path.
//!
//! A warmed-up run is compared against a longer run of the same
//! configuration: the allocation *delta per extra event* must be pinned
//! near zero. The tolerance (well under 1/100 events) covers the only
//! remaining sanctioned sources — log-amortized growth of result/histogram
//! storage and the owned descriptor payload of rare MIGRATE sends — while
//! failing loudly if any per-event allocation (queue snapshots, per-tick
//! clones, planner buffers) sneaks back into the loop.
//!
//! Single `#[test]` on purpose: the global counter is process-wide and
//! sibling tests on other threads would pollute the deltas.

use altocumulus::{AcConfig, Altocumulus};
use simcore::alloc::CountingAlloc;
use simcore::time::SimDuration;
use workload::arrival::PoissonProcess;
use workload::dist::ServiceDistribution;
use workload::trace::{Trace, TraceBuilder};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn trace(n: usize) -> Trace {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(0.6, 64, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(n)
        .connections(256)
        .seed(1)
        .build()
}

fn run(trace: &Trace) -> (u64, u64) {
    let mean = SimDuration::from_ns(850);
    let mut ac = Altocumulus::new(AcConfig::ac_int(4, 16, mean));
    let before = ALLOC.allocations();
    let r = ac.run_detailed(trace);
    assert_eq!(r.system.completions.len(), trace.len());
    (ALLOC.allocations() - before, r.summary.events)
}

#[test]
fn altocumulus_steady_state_allocations_pinned() {
    let small_trace = trace(20_000);
    let big_trace = trace(60_000);

    // Warmup run so one-time lazy initialization is off the books.
    let _ = run(&small_trace);

    let (allocs_small, events_small) = run(&small_trace);
    let (allocs_big, events_big) = run(&big_trace);

    assert!(events_big > events_small, "bigger trace, more events");
    let extra_events = events_big - events_small;
    let extra_allocs = allocs_big.saturating_sub(allocs_small);
    let per_event = extra_allocs as f64 / extra_events as f64;
    assert!(
        per_event < 0.01,
        "steady-state allocation rate {per_event:.4}/event \
         ({extra_allocs} extra allocations over {extra_events} extra events)"
    );
}
