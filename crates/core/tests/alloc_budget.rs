//! Steady-state allocation budget for the full Altocumulus hot path.
//!
//! A warmed-up run is compared against a longer run of the same
//! configuration: the allocation *delta per extra event* must be pinned
//! near zero. The tolerance (well under 1/100 events) covers the only
//! remaining sanctioned sources — log-amortized growth of result/histogram
//! storage and the owned descriptor payload of rare MIGRATE sends — while
//! failing loudly if any per-event allocation (queue snapshots, per-tick
//! clones, planner buffers, mailbox churn) sneaks back into the loop.
//!
//! Two regimes are pinned under the default `Elided` control plane:
//! moderate load, where every tick broadcasts UPDATEs through the per-group
//! mailboxes (`MailEntry` pushes must reuse retained `Vec` capacity), and
//! near-idle load, where groups continuously go dormant and get woken by
//! arrivals (the fast-forward accounting and per-instant tick-seq block
//! reservation must not allocate either).
//!
//! A batched-worker-plane regime pins the `WorkerPlane::Elided` engine
//! under heavy-tailed backlog (multi-entry timeline lanes, stale-key
//! churn): steady-state batching must stay allocation-free, with
//! re-planning confined to capacity retained from construction.
//!
//! A further pair of regimes pin the telemetry layer: disabled telemetry
//! (the default [`Altocumulus::run_detailed`] path) must stay at the same
//! zero steady-state budget — the sink is monomorphized away — and enabled
//! telemetry may add only the recorder's own amortized ring growth (span
//! log doubling), nothing per-event beyond it.
//!
//! Runs without the libtest harness (`harness = false` in Cargo.toml): the
//! global counter is process-wide, and libtest's own main thread allocates
//! lazily mid-test (its channel-receive context), polluting the deltas — a
//! plain `fn main` keeps the process single-threaded.

use altocumulus::{AcConfig, Altocumulus, Telemetry, WorkerPlane};
use simcore::alloc::CountingAlloc;
use simcore::time::SimDuration;
use simcore::trace::{Granularity, Recorder};
use workload::arrival::PoissonProcess;
use workload::dist::ServiceDistribution;
use workload::trace::{Trace, TraceBuilder};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn trace(n: usize, load: f64) -> Trace {
    let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
    let rate = PoissonProcess::rate_for_load(load, 64, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(n)
        .connections(256)
        .seed(1)
        .build()
}

fn run(trace: &Trace) -> (u64, u64) {
    let mean = SimDuration::from_ns(850);
    let mut ac = Altocumulus::new(AcConfig::ac_int(4, 16, mean));
    let before = ALLOC.allocations();
    let r = ac.run_detailed(trace);
    assert_eq!(r.system.completions.len(), trace.len());
    (ALLOC.allocations() - before, r.summary.events)
}

/// Bimodal service at a deeper `local_bound`: worker lanes hold real
/// backlog, so the batched worker plane's timeline exercises multi-entry
/// lane inserts, head-key supersession and merge pops — all of which must
/// run out of the capacity pre-sized at construction. `worker_plane` is
/// pinned explicitly so an environment override can't silently swap the
/// engine under the budget.
fn run_elided_backlog(trace: &Trace) -> (u64, u64) {
    let mean = SimDuration::from_ns(850);
    let mut cfg = AcConfig::ac_int(4, 16, mean);
    cfg.worker_plane = WorkerPlane::Elided;
    cfg.local_bound = 2;
    let mut ac = Altocumulus::new(cfg);
    let before = ALLOC.allocations();
    let r = ac.run_detailed(trace);
    assert_eq!(r.system.completions.len(), trace.len());
    (ALLOC.allocations() - before, r.summary.events)
}

/// Per-event worker plane: every delivery and completion flows through the
/// main calendar queue as a small Copy event holding a slab [`Handle`]
/// (`simcore::slab`), so this regime exercises the request arena's
/// insert/take cycle on every request. The slab grows to the high-water
/// mark of concurrently in-flight payloads during warmup and must then
/// recycle slots through its free list — steady state stays at the same
/// zero per-event budget as the elided regimes.
fn run_slab_arena(trace: &Trace) -> (u64, u64) {
    let mean = SimDuration::from_ns(850);
    let mut cfg = AcConfig::ac_int(4, 16, mean);
    cfg.worker_plane = WorkerPlane::EventDriven;
    let mut ac = Altocumulus::new(cfg);
    let before = ALLOC.allocations();
    let r = ac.run_detailed(trace);
    assert_eq!(r.system.completions.len(), trace.len());
    (ALLOC.allocations() - before, r.summary.events)
}

fn bimodal_trace(n: usize, load: f64) -> Trace {
    let dist = ServiceDistribution::Bimodal {
        short: SimDuration::from_ns(500),
        long: SimDuration::from_us(20),
        p_long: 0.01,
    };
    let rate = PoissonProcess::rate_for_load(load, 64, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(n)
        .connections(256)
        .seed(1)
        .build()
}

/// Like [`run`], but with a recording [`Telemetry`] sink attached. The
/// recorder is created *inside* the measured region with a fixed (small)
/// pre-size, so its constant setup cost cancels between the small and big
/// runs and only per-event recording cost — which must be amortized ring
/// growth, i.e. O(log n) reallocations — remains in the delta.
fn run_traced(trace: &Trace) -> (u64, u64) {
    let mean = SimDuration::from_ns(850);
    let mut ac = Altocumulus::new(AcConfig::ac_int(4, 16, mean));
    let before = ALLOC.allocations();
    let mut tel = Telemetry::with_capacity(1024, 1024);
    let r = ac.run_traced(trace, &mut tel);
    assert_eq!(r.system.completions.len(), trace.len());
    assert!(!tel.spans.is_empty());
    (ALLOC.allocations() - before, r.summary.events)
}

/// Like [`run_traced`], but with a span-granularity run [`Recorder`] (the
/// `--record-out` path): every event folds into the rolling digest and
/// every 512th pushes a checkpoint, so per-event recording cost must stay
/// amortized — checkpoint/span vector doubling only, no per-event heap
/// traffic. Recording *disabled* needs no separate regime: `run_detailed`
/// is the NullSink monomorphization already pinned at the zero budget by
/// the mailbox/dormancy regimes above.
fn run_recorded_spans(trace: &Trace) -> (u64, u64) {
    let mean = SimDuration::from_ns(850);
    let mut ac = Altocumulus::new(AcConfig::ac_int(4, 16, mean));
    let before = ALLOC.allocations();
    let mut rec = Recorder::with_capacity(Granularity::Spans, 0, 1024).with_perturb(None);
    let r = ac.run_recorded(trace, &mut rec);
    assert_eq!(r.system.completions.len(), trace.len());
    // The elided engine's recorder sees every timeline event, a superset
    // of the main-loop count the summary reports.
    assert!(rec.event_count() >= r.summary.events);
    (ALLOC.allocations() - before, r.summary.events)
}

fn assert_pinned_by(
    label: &str,
    small_trace: &Trace,
    big_trace: &Trace,
    budget: f64,
    runner: fn(&Trace) -> (u64, u64),
) {
    // Warmup run so one-time lazy initialization is off the books.
    let _ = runner(small_trace);

    let (allocs_small, events_small) = runner(small_trace);
    let (allocs_big, events_big) = runner(big_trace);

    assert!(events_big > events_small, "bigger trace, more events");
    let extra_events = events_big - events_small;
    let extra_allocs = allocs_big.saturating_sub(allocs_small);
    let per_event = extra_allocs as f64 / extra_events as f64;
    assert!(
        per_event < budget,
        "{label}: steady-state allocation rate {per_event:.4}/event \
         ({extra_allocs} extra allocations over {extra_events} extra events)"
    );
}

fn assert_pinned(label: &str, small_trace: &Trace, big_trace: &Trace) {
    assert_pinned_by(label, small_trace, big_trace, 0.01, run);
}

fn main() {
    // Moderate load: the mailbox UPDATE path carries the manager plane.
    // `run_detailed` *is* the telemetry-disabled mode — the NullSink
    // monomorphization — so these two regimes double as the
    // telemetry-disabled zero-budget pin.
    assert_pinned("mailbox", &trace(20_000, 0.6), &trace(60_000, 0.6));
    // Near-idle load: dormancy, wake and idle-tick fast-forward dominate.
    assert_pinned("dormancy", &trace(5_000, 0.05), &trace(15_000, 0.05));
    // Batched worker plane under backlog: heavy-tailed service with
    // local_bound = 2 keeps multiple descriptors pending per lane, so
    // steady-state timeline traffic (lane inserts, stale-key churn, merge
    // pops, per-event seq reservation) must stay allocation-free. The
    // elided engine's events count is main-loop events only, which makes
    // this delta-per-event pin *stricter* than the oracle's, not looser.
    assert_pinned_by(
        "batched-worker-plane",
        &bimodal_trace(20_000, 0.6),
        &bimodal_trace(60_000, 0.6),
        0.01,
        run_elided_backlog,
    );
    // Slab request arena under the per-event oracle: every request's
    // metadata is parked in the group arena and its Deliver/WorkerDone
    // events travel the main queue as Copy handles. After warmup the
    // arena's free list must absorb all churn — growth only to the
    // high-water mark, then flat.
    assert_pinned_by(
        "slab-arena",
        &bimodal_trace(20_000, 0.6),
        &bimodal_trace(60_000, 0.6),
        0.01,
        run_slab_arena,
    );
    // Telemetry enabled: the recorder's span log doubles O(log n) times and
    // each rare MIGRATE still allocates its descriptor payload; everything
    // else must reuse capacity. The budget is deliberately a small multiple
    // of the disabled one, not a relaxation to "anything goes".
    assert_pinned_by(
        "telemetry-enabled",
        &trace(20_000, 0.6),
        &trace(60_000, 0.6),
        0.02,
        run_traced,
    );
    // Run recording at span granularity: digest folding is allocation-free
    // and checkpoints/span points land in vectors that double — the same
    // amortized shape as the telemetry regime, under the same budget.
    assert_pinned_by(
        "record-spans",
        &trace(20_000, 0.6),
        &trace(60_000, 0.6),
        0.02,
        run_recorded_spans,
    );
    println!("alloc_budget(altocumulus): all regimes pinned");
}
