//! Consistency property tests for the telemetry layer: the recorded span
//! log must *reconstruct* exactly what the simulation reported through its
//! first-class outputs. Span counts must equal the [`MigrationStats`]
//! counters (completions, migrations per group, NACK bounces), and each
//! request's chain of lifecycle points must start at its trace arrival, end
//! at its completion instant, and stay chronological — so the summed phase
//! durations equal the recorded latency by telescoping, with no gaps and no
//! overlaps.
//!
//! [`MigrationStats`]: altocumulus::MigrationStats

use altocumulus::telemetry::span;
use altocumulus::{AcConfig, Altocumulus, Attachment, Interface, Telemetry};
use proptest::prelude::*;
use simcore::telemetry::SpanPoint;
use simcore::time::SimDuration;
use std::collections::HashMap;
use workload::{PoissonProcess, ServiceDistribution, TraceBuilder};

#[derive(Debug, Clone)]
struct TelCase {
    groups: usize,
    group_size: usize,
    attachment: Attachment,
    interface: Interface,
    period_ns: u64,
    bulk: usize,
    concurrency: usize,
    load: f64,
    connections: u32,
    seed: u64,
}

fn case_strategy() -> impl Strategy<Value = TelCase> {
    (
        // At least two groups so the migration machinery (and its spans)
        // can fire; few connections to provoke RSS imbalance.
        2usize..5,
        2usize..9,
        prop_oneof![Just(Attachment::Integrated), Just(Attachment::RssPcie)],
        prop_oneof![Just(Interface::Isa), Just(Interface::Msr)],
        62u64..500,
        1usize..33,
        1usize..9,
        0.3f64..0.9,
        1u32..8,
        0u64..1000,
    )
        .prop_map(
            |(
                groups,
                group_size,
                attachment,
                interface,
                period_ns,
                bulk,
                conc,
                load,
                conns,
                seed,
            )| {
                TelCase {
                    groups,
                    group_size,
                    attachment,
                    interface,
                    period_ns,
                    bulk,
                    concurrency: conc.min(bulk),
                    load,
                    connections: conns,
                    seed,
                }
            },
        )
}

fn build(case: &TelCase, mean: SimDuration) -> Altocumulus {
    let mut cfg = match case.attachment {
        Attachment::Integrated => AcConfig::ac_int(case.groups, case.group_size, mean),
        Attachment::RssPcie => AcConfig::ac_rss(case.groups, case.group_size, mean),
    };
    cfg.interface = case.interface;
    cfg.period = SimDuration::from_ns(case.period_ns);
    cfg.bulk = case.bulk;
    cfg.concurrency = case.concurrency;
    cfg.seed = case.seed;
    Altocumulus::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn span_log_reconstructs_stats_and_latencies(case in case_strategy()) {
        let dist = ServiceDistribution::Exponential {
            mean: SimDuration::from_ns(850),
        };
        let cores = case.groups * case.group_size;
        let rate = PoissonProcess::rate_for_load(case.load, cores, dist.mean());
        let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
            .requests(3000)
            .connections(case.connections)
            .seed(case.seed)
            .build();

        let mut tel = Telemetry::new();
        let r = build(&case, dist.mean()).run_traced(&trace, &mut tel);

        // --- Counter reconstruction against MigrationStats ---------------
        let count_kind = |k: u16| {
            tel.spans.points().iter().filter(|p| p.kind == k).count() as u64
        };
        prop_assert_eq!(
            count_kind(span::COMPLETE) as usize,
            r.system.completions.len(),
            "one COMPLETE span per completion"
        );
        prop_assert_eq!(count_kind(span::ARRIVAL) as usize, trace.len());
        prop_assert_eq!(
            count_kind(span::MIGRATE_LAND),
            r.stats.migrated_requests,
            "one MIGRATE_LAND span per landed request"
        );
        prop_assert_eq!(
            count_kind(span::NACK_RETURN),
            r.stats.nacked_requests,
            "one NACK_RETURN span per bounced request"
        );

        // Landings broken down by destination group match the per-group
        // counters, and their sum matches the total.
        let mut lands_per_group = vec![0u64; case.groups];
        for p in tel.spans.points() {
            if p.kind == span::MIGRATE_LAND {
                lands_per_group[p.loc as usize] += 1;
            }
        }
        prop_assert_eq!(&lands_per_group, &r.stats.migrated_per_group);
        prop_assert_eq!(
            r.stats.migrated_per_group.iter().sum::<u64>(),
            r.stats.migrated_requests
        );

        // --- Per-request lifecycle reconstruction -------------------------
        let completion_of: HashMap<_, _> = r
            .system
            .completions
            .iter()
            .map(|c| (c.id, c))
            .collect();
        let sorted = tel.spans.sorted_by_track();
        prop_assert!(!sorted.is_empty());
        let mut start = 0;
        while start < sorted.len() {
            let track = sorted[start].track;
            let mut end = start;
            while end < sorted.len() && sorted[end].track == track {
                end += 1;
            }
            let pts: &[SpanPoint] = &sorted[start..end];
            start = end;

            let req = &trace.requests()[track as usize];
            let c = completion_of[&req.id];

            // Endpoints: the chain opens at the trace arrival and closes at
            // the recorded completion instant.
            prop_assert_eq!(pts[0].kind, span::ARRIVAL);
            prop_assert_eq!(pts[0].at, req.arrival);
            prop_assert_eq!(pts[0].at, c.arrival);
            let last = pts[pts.len() - 1];
            prop_assert_eq!(last.kind, span::COMPLETE);
            prop_assert_eq!(last.at, c.finish);
            prop_assert_eq!(last.loc as usize, c.core);

            // Chronological and gap-free: every consecutive pair is a phase
            // segment, so summed durations telescope to the latency.
            let mut summed = SimDuration::ZERO;
            for w in pts.windows(2) {
                prop_assert!(w[0].at <= w[1].at, "span points out of order");
                summed += w[1].at - w[0].at;
            }
            prop_assert_eq!(
                summed,
                c.latency(),
                "phase durations must sum to the recorded latency"
            );

            // A request migrates at most once: at most one landing, and the
            // completion's migrated flag equals "this track landed".
            let lands = pts.iter().filter(|p| p.kind == span::MIGRATE_LAND).count();
            prop_assert!(lands <= 1, "at-most-once migration violated");
            prop_assert_eq!(lands == 1, c.migrated);
        }
    }
}
