//! Property tests for the fault-injection layer's two determinism
//! contracts (see `simcore::faults`):
//!
//! 1. **Inertness**: a plan that injects nothing observable — whether
//!    because it is empty or because every knob is present but inert
//!    (slowdown-1.0 stragglers, zero-probability NoC faults) — reproduces
//!    the healthy run byte-for-byte on *arbitrary* configurations. The
//!    fault RNG stream is isolated from the workload streams, so merely
//!    enabling the fault layer must not perturb a single completion.
//! 2. **Reproducibility**: a non-trivial generated stress plan yields
//!    byte-identical results across repeated runs — faults are part of
//!    the deterministic simulation, not noise.

use altocumulus::config::Resilience;
use altocumulus::{AcConfig, Altocumulus, ControlPlane, WorkerPlane};
use proptest::prelude::*;
use simcore::faults::{FaultPlan, NocFaults, Straggler};
use simcore::time::{SimDuration, SimTime};
use workload::{PoissonProcess, ServiceDistribution, Trace, TraceBuilder};

#[derive(Debug, Clone)]
struct FaultCase {
    groups: usize,
    group_size: usize,
    period_ns: u64,
    local_bound: usize,
    event_driven: bool,
    load: f64,
    connections: u32,
    seed: u64,
    intensity: f64,
}

fn case_strategy() -> impl Strategy<Value = FaultCase> {
    (
        2usize..5, // groups (>=2 so takeover/migration targets exist)
        3usize..9, // group_size
        // Same safe-period lattice as prop_control_plane.rs.
        (62u64..999).prop_map(|p| if p.is_multiple_of(3) { p + 1 } else { p }),
        1usize..3, // local bound
        any::<bool>(),
        0.05f64..0.9,
        1u32..32, // connections
        0u64..1000,
        0.1f64..1.0, // stress intensity
    )
        .prop_map(
            |(groups, group_size, period_ns, lb, event_driven, load, conns, seed, intensity)| {
                FaultCase {
                    groups,
                    group_size,
                    period_ns,
                    local_bound: lb,
                    event_driven,
                    load,
                    connections: conns,
                    seed,
                    intensity,
                }
            },
        )
}

fn build(
    case: &FaultCase,
    mean: SimDuration,
    faults: FaultPlan,
    resilience: Resilience,
) -> Altocumulus {
    let mut cfg = AcConfig::ac_int(case.groups, case.group_size, mean);
    cfg.period = SimDuration::from_ns(case.period_ns);
    cfg.local_bound = case.local_bound;
    if case.event_driven {
        cfg.control_plane = ControlPlane::EventDriven;
    }
    // Pin the per-event worker plane on both sides: a non-empty (even
    // inert) fault plan downgrades the elided worker plane internally, and
    // this suite's inert-vs-healthy identity includes `summary.events` —
    // which is the one field the two worker planes legitimately differ in.
    // The downgrade itself is pinned by prop_workerplane.rs.
    cfg.worker_plane = WorkerPlane::EventDriven;
    cfg.seed = case.seed;
    cfg.faults = faults;
    cfg.resilience = resilience;
    Altocumulus::new(cfg)
}

fn make_trace(case: &FaultCase, dist: ServiceDistribution) -> Trace {
    let cores = case.groups * case.group_size;
    let rate = PoissonProcess::rate_for_load(case.load, cores, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(1200)
        .connections(case.connections)
        .seed(case.seed)
        .build()
}

/// Every fault knob present, none with an observable effect.
fn inert_plan(cores: usize) -> FaultPlan {
    FaultPlan {
        stragglers: vec![Straggler {
            first_core: 0,
            last_core: cores - 1,
            from: SimTime::ZERO,
            until: SimTime::MAX,
            slowdown: 1.0,
        }],
        noc: Some(NocFaults {
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay: SimDuration::from_ns(500),
        }),
        ..FaultPlan::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Enabling the fault layer with nothing to inject is invisible:
    /// byte-identical completions, counters, and even event counts.
    #[test]
    fn inert_plan_reproduces_healthy_run(case in case_strategy()) {
        let dist = ServiceDistribution::Exponential {
            mean: SimDuration::from_ns(850),
        };
        let trace = make_trace(&case, dist);
        let cores = case.groups * case.group_size;
        // Default resilience: every optional reaction (backoff, migrate
        // timers) off, so the fault layer's only possible influence is the
        // plan itself — which is inert here.
        let healthy =
            build(&case, dist.mean(), FaultPlan::default(), Resilience::default())
                .run_detailed(&trace);
        let inert = build(&case, dist.mean(), inert_plan(cores), Resilience::default())
            .run_detailed(&trace);

        prop_assert_eq!(&healthy.system.completions, &inert.system.completions);
        prop_assert_eq!(healthy.system.end_time, inert.system.end_time);
        prop_assert_eq!(healthy.stats.ticks, inert.stats.ticks);
        prop_assert_eq!(healthy.stats.migrate_messages, inert.stats.migrate_messages);
        prop_assert_eq!(healthy.stats.migrated_requests, inert.stats.migrated_requests);
        prop_assert_eq!(healthy.stats.nacked_messages, inert.stats.nacked_messages);
        prop_assert_eq!(healthy.stats.update_messages, inert.stats.update_messages);
        prop_assert_eq!(healthy.stats.guard_blocked, inert.stats.guard_blocked);
        prop_assert_eq!(healthy.summary.events, inert.summary.events);
        prop_assert_eq!(inert.faults, Default::default());
    }

    /// A generated stress plan — stragglers, worker deaths, NoC loss — is
    /// bit-reproducible across runs of the same configuration.
    #[test]
    fn stress_plans_are_reproducible(case in case_strategy()) {
        let dist = ServiceDistribution::Exponential {
            mean: SimDuration::from_ns(850),
        };
        let trace = make_trace(&case, dist);
        let cores = case.groups * case.group_size;
        let horizon = trace.requests().last().unwrap().arrival;
        let workers: Vec<usize> =
            (0..cores).filter(|c| c % case.group_size != 0).collect();
        let plan = FaultPlan::stress(case.seed, &workers, case.intensity, horizon);

        let a = build(&case, dist.mean(), plan.clone(), Resilience::hardened())
            .run_detailed(&trace);
        let b = build(&case, dist.mean(), plan, Resilience::hardened()).run_detailed(&trace);

        prop_assert_eq!(&a.system.completions, &b.system.completions);
        prop_assert_eq!(a.system.end_time, b.system.end_time);
        prop_assert_eq!(a.faults, b.faults);
        prop_assert_eq!(a.stats.ticks, b.stats.ticks);
        prop_assert_eq!(a.stats.migrate_messages, b.stats.migrate_messages);
        prop_assert_eq!(a.stats.migrated_requests, b.stats.migrated_requests);
        prop_assert_eq!(a.summary.events, b.summary.events);
    }
}
