//! Differential property tests for the compacted hot-state layout.
//!
//! The SoA hot/cold split, the slab request arena, the NetRX `stage_hint`
//! tail-run bound and the single-pass planner are pure layout/traversal
//! changes: every observable — completions, stats, fault counters,
//! `peak_queue`, telemetry span chains, probe JSONL — must be byte-identical
//! however the same simulation is driven. These tests pit the three engines
//! against each other over random configurations, because each engine
//! stresses a different face of the layout:
//!
//! - the **elided serial** engine runs the compacted tick hot path
//!   (stage-hint staging, register-pass planner, update-log cursors);
//! - the **per-event serial** oracle routes every delivery/completion
//!   through the calendar queue as a Copy event resolving in the slab
//!   arenas (generation checks fire on any aliasing bug);
//! - the **parallel** engine lends the hot group plane out to shards while
//!   the cold plane stays serial — a split-brain layout bug (state that
//!   should be hot but stayed cold, or vice versa) desynchronizes it.
//!
//! The case strategy is biased toward migration-heavy meshes (few
//! connections → RSS imbalance → long migrated tails exercising
//! `stage_hint`) and includes the tie-heavy `fixed_service` dimension; the
//! period strategy avoids multiples of 3 ns for the tie-freedom reason
//! documented in `prop_control_plane.rs`.

use altocumulus::{AcConfig, Altocumulus, Attachment, ControlPlane, Interface, WorkerPlane};
use proptest::prelude::*;
use simcore::telemetry::Telemetry;
use simcore::time::SimDuration;
use workload::{PoissonProcess, ServiceDistribution, Trace, TraceBuilder};

#[derive(Debug, Clone)]
struct LayoutCase {
    groups: usize,
    group_size: usize,
    attachment: Attachment,
    plane: ControlPlane,
    period_ns: u64,
    bulk: usize,
    concurrency: usize,
    local_bound: usize,
    load: f64,
    connections: u32,
    seed: u64,
    fixed_service: bool,
}

fn case_strategy() -> impl Strategy<Value = LayoutCase> {
    (
        2usize..8, // groups (≥2: migration is the point of these cases)
        2usize..8, // group_size
        prop_oneof![Just(Attachment::Integrated), Just(Attachment::RssPcie)],
        prop_oneof![Just(ControlPlane::Elided), Just(ControlPlane::EventDriven)],
        // Period: > 61 ns and never a multiple of 3 (see module docs).
        (62u64..999).prop_map(|p| if p.is_multiple_of(3) { p + 1 } else { p }),
        1usize..33, // bulk
        1usize..9,  // concurrency (clamped to bulk below)
        1usize..3,  // local bound
        // Overload matters: the planner's single-pass overloaded branch and
        // the stage-hint's long migrated tails only appear under pressure.
        0.3f64..0.95,
        // Few connections: RSS imbalance concentrates arrivals, maximizing
        // migration traffic (and therefore staged/landed tail churn).
        (1u32..12, 0u64..1000, prop_oneof![Just(false), Just(true)]),
    )
        .prop_map(
            |(
                groups,
                group_size,
                attachment,
                plane,
                period_ns,
                bulk,
                conc,
                lb,
                load,
                (conns, seed, fixed_service),
            )| {
                LayoutCase {
                    groups,
                    group_size,
                    attachment,
                    plane,
                    period_ns,
                    bulk,
                    concurrency: conc.min(bulk),
                    local_bound: lb,
                    load,
                    connections: conns,
                    seed,
                    fixed_service,
                }
            },
        )
}

fn build(case: &LayoutCase, mean: SimDuration, plane: WorkerPlane) -> Altocumulus {
    let mut cfg = match case.attachment {
        Attachment::Integrated => AcConfig::ac_int(case.groups, case.group_size, mean),
        Attachment::RssPcie => AcConfig::ac_rss(case.groups, case.group_size, mean),
    };
    cfg.interface = Interface::Isa;
    cfg.period = SimDuration::from_ns(case.period_ns);
    cfg.bulk = case.bulk;
    cfg.concurrency = case.concurrency;
    cfg.local_bound = case.local_bound;
    cfg.control_plane = case.plane;
    cfg.worker_plane = plane;
    cfg.seed = case.seed;
    Altocumulus::new(cfg)
}

fn trace_for(case: &LayoutCase, dist: &ServiceDistribution, requests: usize) -> Trace {
    let cores = case.groups * case.group_size;
    let rate = PoissonProcess::rate_for_load(case.load, cores, dist.mean());
    TraceBuilder::new(PoissonProcess::new(rate), *dist)
        .requests(requests)
        .connections(case.connections)
        .seed(case.seed)
        .build()
}

fn dist_for(case: &LayoutCase) -> ServiceDistribution {
    let mean = SimDuration::from_ns(850);
    if case.fixed_service {
        ServiceDistribution::Fixed(mean)
    } else {
        ServiceDistribution::Exponential { mean }
    }
}

/// Byte-level comparison of every observable except `summary.events`
/// (engines legitimately hide different event classes from the main loop;
/// the elided engine must only never *add* events).
macro_rules! assert_observables_identical {
    ($a:expr, $b:expr) => {
        prop_assert_eq!(&$a.system.completions, &$b.system.completions);
        prop_assert_eq!($a.system.end_time, $b.system.end_time);
        prop_assert_eq!($a.system.p99(), $b.system.p99());
        prop_assert_eq!(&$a.stats, &$b.stats);
        prop_assert_eq!($a.faults, $b.faults);
        prop_assert_eq!($a.summary.end_time, $b.summary.end_time);
        prop_assert_eq!($a.summary.stopped_early, $b.summary.stopped_early);
        prop_assert_eq!($a.summary.peak_queue, $b.summary.peak_queue);
        prop_assert!(
            $a.summary.events <= $b.summary.events,
            "elision added events: {} > {}",
            $a.summary.events,
            $b.summary.events
        );
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// All three engines over the compacted layout agree byte-for-byte on
    /// migration-heavy random configurations. The parallel run uses the
    /// per-event oracle's event count as its own invariant (both route the
    /// worker plane through the main queue).
    #[test]
    fn engines_agree_on_compacted_layout(case in case_strategy()) {
        let dist = dist_for(&case);
        let trace = trace_for(&case, &dist, 1200);
        let elided = build(&case, dist.mean(), WorkerPlane::Elided).run_detailed(&trace);
        let oracle = build(&case, dist.mean(), WorkerPlane::EventDriven).run_detailed(&trace);
        assert_observables_identical!(elided, oracle);
        let par = build(&case, dist.mean(), WorkerPlane::Elided).run_detailed_par(&trace, 2);
        assert_observables_identical!(par, oracle);
        prop_assert_eq!(par.summary.events, oracle.summary.events);
    }

    /// Traced runs: span chains and probe JSONL are part of the byte
    /// contract — the hot/cold split must not reorder or drop a single
    /// telemetry point (spans are emitted from inside the hot handlers).
    #[test]
    fn telemetry_identical_on_compacted_layout(case in case_strategy()) {
        let dist = dist_for(&case);
        let trace = trace_for(&case, &dist, 800);
        let mut tel_elided = Telemetry::new();
        let mut tel_oracle = Telemetry::new();
        let elided =
            build(&case, dist.mean(), WorkerPlane::Elided).run_traced(&trace, &mut tel_elided);
        let oracle =
            build(&case, dist.mean(), WorkerPlane::EventDriven).run_traced(&trace, &mut tel_oracle);
        assert_observables_identical!(elided, oracle);
        prop_assert_eq!(tel_elided.spans.points(), tel_oracle.spans.points());
        prop_assert_eq!(tel_elided.probes.to_jsonl(), tel_oracle.probes.to_jsonl());
    }
}

/// Deterministic pin: a mesh with heavy RSS imbalance really does exercise
/// the migrated-tail machinery (the `stage_hint` fast path is not allowed
/// to be dead code in this suite), and the engines still agree on it.
#[test]
fn migration_heavy_mesh_exercises_stage_hint() {
    let mean = SimDuration::from_ns(850);
    let dist = ServiceDistribution::Exponential { mean };
    let rate = PoissonProcess::rate_for_load(0.85, 32, mean);
    let trace = TraceBuilder::new(PoissonProcess::new(rate), dist)
        .requests(8000)
        .connections(3) // 3 connections over 4 groups: maximal imbalance
        .seed(11)
        .build();
    let cfg = AcConfig::ac_int(4, 8, mean);
    let elided = Altocumulus::new(cfg.clone()).run_detailed(&trace);
    assert!(
        elided.stats.migrated_requests > 100,
        "imbalanced mesh should migrate heavily, got {}",
        elided.stats.migrated_requests
    );
    let mut oracle_cfg = cfg;
    oracle_cfg.worker_plane = WorkerPlane::EventDriven;
    let oracle = Altocumulus::new(oracle_cfg).run_detailed(&trace);
    assert_eq!(elided.system.completions, oracle.system.completions);
    assert_eq!(elided.stats, oracle.stats);
    assert_eq!(elided.summary.peak_queue, oracle.summary.peak_queue);
}
