//! Property-based tests for the queueing analytics.

use proptest::prelude::*;
use queueing::erlang::{erlang_b, erlang_c, expected_queue_len, MmK};
use queueing::threshold::{linear_fit, ThresholdModel};

proptest! {
    /// Erlang-B and Erlang-C are probabilities, with C >= B (delayed
    /// systems queue at least as much as loss systems block).
    #[test]
    fn erlang_probabilities(servers in 1usize..512, load_frac in 0.01f64..0.999) {
        let offered = servers as f64 * load_frac;
        let b = erlang_b(servers, offered);
        let c = erlang_c(servers, offered);
        prop_assert!((0.0..=1.0).contains(&b), "B={b}");
        prop_assert!((0.0..=1.0).contains(&c), "C={c}");
        prop_assert!(c >= b - 1e-12, "C={c} < B={b}");
    }

    /// Erlang-C is monotone in offered load at fixed server count.
    #[test]
    fn erlang_c_monotone(servers in 1usize..256, a in 0.01f64..0.98, delta in 0.001f64..0.01) {
        let k = servers as f64;
        let c1 = erlang_c(servers, k * a);
        let c2 = erlang_c(servers, k * (a + delta).min(0.999));
        prop_assert!(c2 >= c1 - 1e-12);
    }

    /// Expected queue length is finite and non-negative for stable systems.
    #[test]
    fn queue_len_sane(servers in 1usize..256, load_frac in 0.01f64..0.99) {
        let nq = expected_queue_len(servers, servers as f64 * load_frac);
        prop_assert!(nq.is_finite());
        prop_assert!(nq >= 0.0);
    }

    /// Little's law holds exactly in the closed form: E[Nq] = lambda*E[Wq].
    #[test]
    fn littles_law(servers in 1usize..128, rho in 0.05f64..0.95, mu_mhz in 0.1f64..10.0) {
        let mu = mu_mhz * 1e6;
        let lambda = rho * servers as f64 * mu;
        let m = MmK::new(servers, lambda, mu);
        let lhs = m.mean_queue_len();
        let rhs = m.lambda * m.mean_wait_secs();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.max(1.0));
    }

    /// Waiting-time quantiles are monotone in q.
    #[test]
    fn wait_quantiles_monotone(servers in 1usize..64, rho in 0.3f64..0.95) {
        let mu = 1e6;
        let m = MmK::new(servers, rho * servers as f64 * mu, mu);
        let mut last = -1.0;
        for i in 0..10 {
            let q = i as f64 / 10.0;
            let w = m.wait_quantile_secs(q);
            prop_assert!(w >= last);
            last = w;
        }
    }

    /// linear_fit recovers exact lines from noiseless points.
    #[test]
    fn fit_exact_line(a in -50.0f64..50.0, b in -100.0f64..100.0,
                      xs in proptest::collection::vec(-1000.0f64..1000.0, 2..50)) {
        // Require x spread to avoid degeneracy.
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assume!(spread > 1.0);
        let pts: Vec<(f64, f64)> = xs.iter().map(|&x| (x, a * x + b)).collect();
        let (fa, fb) = linear_fit(&pts);
        prop_assert!((fa - a).abs() < 1e-6 * (1.0 + a.abs()), "a={a} fa={fa}");
        prop_assert!((fb - b).abs() < 1e-4 * (1.0 + b.abs()) + 1e-6, "b={b} fb={fb}");
    }

    /// The threshold is always at least 1 and monotone in load for the
    /// identity model.
    #[test]
    fn threshold_floor_and_monotone(servers in 2usize..128, lo in 0.05f64..0.8, d in 0.01f64..0.15) {
        let m = ThresholdModel::identity();
        let k = servers as f64;
        let hi = (lo + d).min(0.995);
        let t_lo = m.threshold(servers, k * lo);
        let t_hi = m.threshold(servers, k * hi);
        prop_assert!(t_lo >= 1);
        prop_assert!(t_hi >= t_lo);
    }
}
