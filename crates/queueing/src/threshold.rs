//! The Altocumulus SLO-violation threshold model (paper §IV).
//!
//! Altocumulus predicts that queued RPCs beyond a queue-length threshold `T`
//! will violate the SLO. The paper models the expected threshold as a linear
//! transformation of the Erlang-C expected queue length:
//!
//! ```text
//! E[T̂] = a · E[c · N̂q + d] + b          (Eq. 2)
//! E[N̂q] = C_k(A) · A / (k − A)          (Eq. 1)
//! ```
//!
//! with constants `a, b, c, d` fit empirically per service-time distribution
//! (the paper quotes `a=1.01, c=0.998, b=d=0` for Fixed). This module
//! provides the model, the naive bounds it is compared against, and a
//! least-squares calibration routine that fits the constants from simulated
//! `(load, first-violation queue length)` points — the paper's "offline
//! component".

use crate::erlang::expected_queue_len;

/// The linear-in-`E[N̂q]` threshold model of Eq. 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdModel {
    /// Outer slope `a`.
    pub a: f64,
    /// Outer intercept `b`.
    pub b: f64,
    /// Inner slope `c`.
    pub c: f64,
    /// Inner intercept `d`.
    pub d: f64,
}

impl ThresholdModel {
    /// The paper's example constants for the Fixed distribution
    /// (`a=1.01, c=0.998, b=d=0`; Fig. 7(d)).
    pub fn paper_fixed() -> Self {
        ThresholdModel {
            a: 1.01,
            b: 0.0,
            c: 0.998,
            d: 0.0,
        }
    }

    /// Identity model: `T = E[N̂q]`.
    pub fn identity() -> Self {
        ThresholdModel {
            a: 1.0,
            b: 0.0,
            c: 1.0,
            d: 0.0,
        }
    }

    /// Evaluates `E[T̂]` for a `servers`-core system at `offered` Erlangs.
    ///
    /// Because expectation is linear, `E[c·N̂q + d] = c·E[N̂q] + d`.
    /// Returns at least 1.0 (a threshold of zero would migrate everything)
    /// and `f64::INFINITY` when the system is overloaded.
    pub fn expected_threshold(&self, servers: usize, offered: f64) -> f64 {
        let nq = expected_queue_len(servers, offered);
        if !nq.is_finite() {
            return f64::INFINITY;
        }
        (self.a * (self.c * nq + self.d) + self.b).max(1.0)
    }

    /// Integer threshold for runtime comparison against queue depths.
    /// Saturates at `usize::MAX` when overloaded.
    pub fn threshold(&self, servers: usize, offered: f64) -> usize {
        let t = self.expected_threshold(servers, offered);
        if !t.is_finite() {
            usize::MAX
        } else {
            t.round().max(1.0) as usize
        }
    }

    /// Fits `a` and `b` (holding `c=1, d=0`) by least squares from measured
    /// `(offered_load_erlangs, first_violation_queue_length)` pairs — the
    /// offline calibration step of Fig. 5.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 points are given or all x-values coincide.
    pub fn fit(servers: usize, points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two calibration points");
        let xy: Vec<(f64, f64)> = points
            .iter()
            .map(|&(offered, t)| (expected_queue_len(servers, offered), t))
            .filter(|(x, _)| x.is_finite())
            .collect();
        assert!(xy.len() >= 2, "need at least two stable calibration points");
        let (a, b) = linear_fit(&xy);
        // A threshold cannot decrease as E[Nq] grows; measured points are
        // step-quantized (first-violation queue lengths), so OLS over a flat
        // or near-flat step can return a slope that is negative by floating
        // noise. Clamp to the best flat fit in that case.
        let (a, b) = if a < 0.0 {
            let mean_y = xy.iter().map(|p| p.1).sum::<f64>() / xy.len() as f64;
            (0.0, mean_y)
        } else {
            (a, b)
        };
        ThresholdModel {
            a,
            b,
            c: 1.0,
            d: 0.0,
        }
    }
}

/// Naive threshold upper bound `k·L + 1` (paper §IV-A): the queue length at
/// which *every* subsequent arrival violates an SLO of `L×` the mean service
/// time. Maximizes migration effectiveness but misses most violations.
pub fn naive_upper_bound(servers: usize, slo_ratio: f64) -> usize {
    (servers as f64 * slo_ratio + 1.0).round() as usize
}

/// Ordinary least squares for `y = a·x + b`.
///
/// # Panics
///
/// Panics if fewer than 2 points or zero x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(
        denom.abs() > f64::EPSILON * n * sxx.max(1.0),
        "x values are degenerate; cannot fit a line"
    );
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    (a, b)
}

/// Coefficient of determination R² of `y = a·x + b` on `points`.
pub fn r_squared(points: &[(f64, f64)], a: f64, b: f64) -> f64 {
    let n = points.len() as f64;
    if n < 2.0 {
        return 1.0;
    }
    let mean_y: f64 = points.iter().map(|p| p.1).sum::<f64>() / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (a * p.0 + b)).powi(2)).sum();
    if ss_tot == 0.0 {
        return 1.0;
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_near_identity() {
        let m = ThresholdModel::paper_fixed();
        let t = m.expected_threshold(64, 64.0 * 0.99);
        let nq = expected_queue_len(64, 64.0 * 0.99);
        // a*c ~ 1.008: threshold within 1% of E[Nq].
        assert!((t / nq - 1.008).abs() < 0.001, "t={t} nq={nq}");
    }

    #[test]
    fn threshold_monotone_in_load() {
        let m = ThresholdModel::identity();
        let mut last = 0.0;
        for load in [0.90, 0.95, 0.97, 0.99, 0.995] {
            let t = m.expected_threshold(64, 64.0 * load);
            assert!(t > last, "threshold must grow with load");
            last = t;
        }
    }

    #[test]
    fn threshold_floors_at_one() {
        let m = ThresholdModel::identity();
        // Light load: E[Nq] ~ 0 but threshold must stay >= 1.
        assert_eq!(m.threshold(64, 64.0 * 0.1), 1);
    }

    #[test]
    fn threshold_overload_saturates() {
        let m = ThresholdModel::identity();
        assert_eq!(m.threshold(16, 16.0), usize::MAX);
        assert!(m.expected_threshold(16, 20.0).is_infinite());
    }

    #[test]
    fn naive_bound_matches_paper() {
        // 64 cores, L=10 => 641 (paper §IV-A).
        assert_eq!(naive_upper_bound(64, 10.0), 641);
        assert_eq!(naive_upper_bound(16, 10.0), 161);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 7.0).abs() < 1e-9);
        assert!((r_squared(&pts, a, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_noisy_r2() {
        // Deterministic "noise" via a hash-ish jitter.
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                let noise = ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5) * 4.0;
                (x, 2.0 * x + 5.0 + noise)
            })
            .collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 2.0).abs() < 0.05, "a={a}");
        assert!(r_squared(&pts, a, b) > 0.99);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn linear_fit_rejects_constant_x() {
        linear_fit(&[(1.0, 2.0), (1.0, 3.0)]);
    }

    #[test]
    fn fit_recovers_linear_threshold_relation() {
        // Synthesize measurements that truly follow T = 1.2*E[Nq] + 4.
        let loads = [0.95, 0.96, 0.97, 0.98, 0.99];
        let k = 64;
        let pts: Vec<(f64, f64)> = loads
            .iter()
            .map(|&l| {
                let offered = k as f64 * l;
                (offered, 1.2 * expected_queue_len(k, offered) + 4.0)
            })
            .collect();
        let m = ThresholdModel::fit(k, &pts);
        assert!((m.a - 1.2).abs() < 1e-6, "a={}", m.a);
        assert!((m.b - 4.0).abs() < 1e-4, "b={}", m.b);
        // Prediction at an unseen load interpolates.
        let offered = k as f64 * 0.975;
        let predicted = m.expected_threshold(k, offered);
        let truth = 1.2 * expected_queue_len(k, offered) + 4.0;
        assert!((predicted - truth).abs() / truth < 1e-6);
    }

    #[test]
    fn lower_bound_below_upper_bound() {
        // The fitted threshold at high load should sit well below k*L+1,
        // which is the point of the model (catch violations earlier).
        let m = ThresholdModel::paper_fixed();
        let t = m.threshold(64, 64.0 * 0.99);
        assert!(t < naive_upper_bound(64, 10.0), "t={t}");
        assert!(t > 10);
    }
}
