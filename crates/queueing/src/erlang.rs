//! Erlang loss/delay formulas and M/M/k metrics.
//!
//! The Altocumulus prediction model (paper §IV, Eq. 1) uses the Erlang-C
//! formula `C_k(A)` — the probability an arriving request must queue in an
//! M/M/k system offered `A` Erlangs — to model the expected queue length
//! `E[N̂q] = C_k(A) · A / (k − A)`.
//!
//! Both formulas are computed with the standard numerically-stable recurrence
//! on Erlang-B, so they work for hundreds of servers without overflow.

/// Erlang-B blocking probability `B(k, a)` for `k` servers offered `a`
/// Erlangs.
///
/// Uses the recurrence `B(0)=1; B(j) = a·B(j−1) / (j + a·B(j−1))`, which is
/// numerically stable for large `k` and `a`.
///
/// # Panics
///
/// Panics if `a` is negative or not finite.
///
/// # Examples
///
/// ```
/// use queueing::erlang::erlang_b;
/// // Classic telephony check: 10 servers, 5 Erlangs -> ~1.84% blocking.
/// let b = erlang_b(10, 5.0);
/// assert!((b - 0.0184).abs() < 0.0005, "b={b}");
/// ```
pub fn erlang_b(servers: usize, offered: f64) -> f64 {
    assert!(
        offered.is_finite() && offered >= 0.0,
        "offered load must be >= 0"
    );
    if offered == 0.0 {
        return 0.0;
    }
    let mut b = 1.0;
    for j in 1..=servers {
        b = offered * b / (j as f64 + offered * b);
    }
    b
}

/// Erlang-C queueing probability `C_k(A)`: the probability that an arriving
/// request finds all `k` servers busy and must wait.
///
/// Returns 1.0 when the system is overloaded (`A ≥ k`), where the queue grows
/// without bound and every arrival waits.
///
/// # Panics
///
/// Panics if `offered` is negative/not finite or `servers` is zero.
///
/// # Examples
///
/// ```
/// use queueing::erlang::erlang_c;
/// // M/M/1: C = rho.
/// assert!((erlang_c(1, 0.7) - 0.7).abs() < 1e-12);
/// ```
pub fn erlang_c(servers: usize, offered: f64) -> f64 {
    assert!(servers > 0, "need at least one server");
    assert!(offered.is_finite() && offered >= 0.0);
    let k = servers as f64;
    if offered >= k {
        return 1.0;
    }
    let b = erlang_b(servers, offered);
    k * b / (k - offered * (1.0 - b))
}

/// Expected number of requests *waiting* (not in service) in an M/M/k system
/// — the paper's `E[N̂q] = C_k(A) · A / (k − A)` (Eq. 1).
///
/// Returns `f64::INFINITY` when overloaded.
///
/// # Examples
///
/// ```
/// use queueing::erlang::expected_queue_len;
/// // M/M/1 at rho=0.5: E[Nq] = rho^2/(1-rho) = 0.5.
/// assert!((expected_queue_len(1, 0.5) - 0.5).abs() < 1e-12);
/// ```
pub fn expected_queue_len(servers: usize, offered: f64) -> f64 {
    let k = servers as f64;
    if offered >= k {
        return f64::INFINITY;
    }
    erlang_c(servers, offered) * offered / (k - offered)
}

/// Closed-form steady-state metrics of an M/M/k queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmK {
    /// Number of servers.
    pub servers: usize,
    /// Arrival rate λ (per second).
    pub lambda: f64,
    /// Per-server service rate µ (per second).
    pub mu: f64,
}

impl MmK {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics on non-positive rates or zero servers.
    pub fn new(servers: usize, lambda: f64, mu: f64) -> Self {
        assert!(servers > 0);
        assert!(lambda > 0.0 && lambda.is_finite());
        assert!(mu > 0.0 && mu.is_finite());
        MmK {
            servers,
            lambda,
            mu,
        }
    }

    /// Offered load in Erlangs: `A = λ/µ`.
    pub fn offered(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Per-server utilization `ρ = A/k`.
    pub fn utilization(&self) -> f64 {
        self.offered() / self.servers as f64
    }

    /// True iff the queue is stable (`ρ < 1`).
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Probability an arrival waits (Erlang-C).
    pub fn wait_probability(&self) -> f64 {
        erlang_c(self.servers, self.offered())
    }

    /// Mean number waiting, `E[Nq]`.
    pub fn mean_queue_len(&self) -> f64 {
        expected_queue_len(self.servers, self.offered())
    }

    /// Mean waiting time in seconds, `E[Wq] = E[Nq]/λ` (Little's law).
    pub fn mean_wait_secs(&self) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        self.mean_queue_len() / self.lambda
    }

    /// Mean sojourn time in seconds, `E[W] = E[Wq] + 1/µ`.
    pub fn mean_sojourn_secs(&self) -> f64 {
        self.mean_wait_secs() + 1.0 / self.mu
    }

    /// The `q`-quantile of waiting time in seconds, using the exact M/M/k
    /// waiting-time distribution: `P(Wq > t) = C_k(A)·e^{−(kµ−λ)t}`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0,1)`.
    pub fn wait_quantile_secs(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile must be in [0,1)");
        if !self.is_stable() {
            return f64::INFINITY;
        }
        let c = self.wait_probability();
        if 1.0 - q >= c {
            return 0.0; // the quantile falls in the no-wait mass
        }
        let rate = self.servers as f64 * self.mu - self.lambda;
        (c / (1.0 - q)).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_known_values() {
        // Published Erlang-B tables.
        assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);
        assert!((erlang_b(2, 1.0) - 0.2).abs() < 1e-12);
        assert!((erlang_b(5, 3.0) - 0.1101).abs() < 1e-3);
    }

    #[test]
    fn erlang_b_zero_load() {
        assert_eq!(erlang_b(4, 0.0), 0.0);
    }

    #[test]
    fn erlang_c_m_m_1_equals_rho() {
        for rho in [0.1, 0.5, 0.9, 0.99] {
            assert!((erlang_c(1, rho) - rho).abs() < 1e-12, "rho={rho}");
        }
    }

    #[test]
    fn erlang_c_overload_is_one() {
        assert_eq!(erlang_c(4, 4.0), 1.0);
        assert_eq!(erlang_c(4, 10.0), 1.0);
    }

    #[test]
    fn erlang_c_increases_with_load() {
        let mut last = 0.0;
        for i in 1..100 {
            let a = 64.0 * i as f64 / 100.0;
            let c = erlang_c(64, a);
            assert!(c >= last, "Erlang-C must be monotone in load");
            last = c;
        }
    }

    #[test]
    fn erlang_c_decreases_with_servers_at_fixed_utilization() {
        // Pooling effect: at the same rho, more servers queue less.
        let c16 = erlang_c(16, 16.0 * 0.9);
        let c64 = erlang_c(64, 64.0 * 0.9);
        let c256 = erlang_c(256, 256.0 * 0.9);
        assert!(c16 > c64 && c64 > c256);
    }

    #[test]
    fn queue_len_m_m_1_formula() {
        // E[Nq] = rho^2/(1-rho).
        for rho in [0.3, 0.6, 0.95] {
            let exact = rho * rho / (1.0 - rho);
            assert!((expected_queue_len(1, rho) - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn queue_len_overload_is_infinite() {
        assert!(expected_queue_len(8, 8.0).is_infinite());
    }

    #[test]
    fn paper_eq1_example_64_cores() {
        // §V-B: "the mean of E[Nq] for each group equals 11 when system load
        // is near 1". With k=16 workers per group... the paper's bound of 11
        // descriptors per MR corresponds to high load on a group. Sanity:
        // E[Nq] at k=16, rho=0.97 is around 11 (order of magnitude).
        let nq = expected_queue_len(16, 16.0 * 0.972);
        assert!((5.0..40.0).contains(&nq), "nq={nq}");
    }

    #[test]
    fn mmk_metrics_consistent() {
        let m = MmK::new(64, 60e6, 1e6); // A=60, rho~0.94
        assert!(m.is_stable());
        assert!((m.offered() - 60.0).abs() < 1e-9);
        assert!((m.utilization() - 60.0 / 64.0).abs() < 1e-12);
        // Little's law consistency.
        assert!((m.mean_wait_secs() * m.lambda - m.mean_queue_len()).abs() < 1e-9);
        assert!(m.mean_sojourn_secs() > m.mean_wait_secs());
    }

    #[test]
    fn mmk_unstable() {
        let m = MmK::new(4, 5e6, 1e6);
        assert!(!m.is_stable());
        assert!(m.mean_wait_secs().is_infinite());
    }

    #[test]
    fn wait_quantiles() {
        let m = MmK::new(1, 0.5e6, 1e6); // M/M/1, rho 0.5
                                         // Half the arrivals don't wait at all: p50 = 0.
        assert_eq!(m.wait_quantile_secs(0.5), 0.0);
        // p99 positive and larger than p90.
        let p90 = m.wait_quantile_secs(0.90);
        let p99 = m.wait_quantile_secs(0.99);
        assert!(p99 > p90 && p90 > 0.0);
        // Exact check: P(W > t) = rho * exp(-(mu-lambda) t).
        let t = m.wait_quantile_secs(0.99);
        let p = 0.5 * (-(1e6 - 0.5e6) * t).exp();
        assert!((p - 0.01).abs() < 1e-9, "p={p}");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn erlang_c_rejects_zero_servers() {
        erlang_c(0, 1.0);
    }
}
