//! # queueing — Erlang-C analytics and the Altocumulus threshold model
//!
//! Implements the queueing-theory machinery behind the paper's proactive
//! SLO-violation prediction (§IV):
//!
//! - [`erlang`]: numerically stable Erlang-B/C, M/M/k steady-state metrics
//!   and waiting-time quantiles.
//! - [`threshold`]: the `E[T̂] = a·E[c·N̂q + d] + b` threshold model (Eq. 2),
//!   the naive `k·L+1` bound, and least-squares calibration (the offline
//!   component of Fig. 5).
//!
//! # Examples
//!
//! ```
//! use queueing::{erlang_c, ThresholdModel};
//!
//! // At 99% utilization, a 64-core M/M/64 queues most arrivals...
//! assert!(erlang_c(64, 64.0 * 0.99) > 0.8);
//! // ...and the paper's fitted model produces a finite migration threshold.
//! let t = ThresholdModel::paper_fixed().threshold(64, 64.0 * 0.99);
//! assert!(t >= 1 && t < 641);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod erlang;
pub mod threshold;

pub use erlang::{erlang_b, erlang_c, expected_queue_len, MmK};
pub use threshold::{linear_fit, naive_upper_bound, r_squared, ThresholdModel};
