//! # rpcstack — RPC stack, NIC and transfer-mechanism models
//!
//! Models the non-scheduling parts of the RPC system stack (paper Fig. 2):
//!
//! - [`stack`]: on-CPU processing cost of TCP/IP, eRPC (~850 ns) and
//!   nanoRPC (~40 ns) stacks — the "Processing" bar of Fig. 1.
//! - [`nic`]: on-NIC MAC delay (~30 ns), steering policies
//!   (RSS connection-hash / random / round-robin, compared in Fig. 9) and
//!   NIC→core transfer mechanisms (PCIe, cache-coherent integrated NIC,
//!   nanoPU-style register file).
//!
//! # Examples
//!
//! ```
//! use rpcstack::stack::StackModel;
//! use rpcstack::nic::Transfer;
//!
//! // A 300B request over eRPC costs ~1us of processing...
//! let proc = StackModel::erpc().round_trip(300, 64);
//! assert!(proc.as_us_f64() < 2.0);
//! // ...and arrives over PCIe in 200-800ns.
//! let xfer = Transfer::pcie().latency(300);
//! assert!((200.0..=800.0).contains(&xfer.as_ns_f64()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod nic;
pub mod stack;

pub use nic::{NicModel, Steering, Transfer};
pub use stack::{StackKind, StackModel};
