//! RPC stack processing-cost models.
//!
//! "Processing" is everything a server does to extract an RPC request from a
//! network packet and to emit the response — transport protocol, RPC header
//! parsing, deserialization — as distinct from *scheduling* (mapping the
//! handler to a core), which the paper identifies as the new bottleneck
//! (Fig. 1). Three stacks are modeled with their published on-CPU costs:
//!
//! | stack   | request processing | source |
//! |---------|--------------------|--------|
//! | TCP/IP  | ~15 µs             | IX \[8\], Fig. 1 |
//! | eRPC    | ~850 ns            | Kalia et al., NSDI'19 (§IX-A) |
//! | nanoRPC | ~40 ns             | nanoPU, OSDI'21 (§IX-A) |

use simcore::time::SimDuration;
use std::fmt;

/// Which RPC stack terminates the network protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackKind {
    /// Kernel TCP/IP sockets.
    TcpIp,
    /// eRPC: optimized user-space UDP/RDMA stack, ~850 ns per RPC.
    Erpc,
    /// nanoRPC: hardware-terminated stack, ~40 ns per RPC.
    NanoRpc,
}

impl fmt::Display for StackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StackKind::TcpIp => "TCP/IP",
            StackKind::Erpc => "eRPC",
            StackKind::NanoRpc => "nanoRPC",
        })
    }
}

/// Per-request on-CPU processing cost model for one stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackModel {
    /// Which stack this models.
    pub kind: StackKind,
    /// Fixed receive-path processing (header parsing, protocol, RPC layer).
    pub rx_base: SimDuration,
    /// Fixed transmit-path processing (response marshalling, protocol).
    pub tx_base: SimDuration,
    /// Additional cost per payload byte (copies / checksums), ns per byte.
    pub ns_per_byte: f64,
}

impl StackModel {
    /// Kernel TCP/IP: tens of microseconds per small RPC.
    pub fn tcp_ip() -> Self {
        StackModel {
            kind: StackKind::TcpIp,
            rx_base: SimDuration::from_us(8),
            tx_base: SimDuration::from_us(7),
            ns_per_byte: 2.0,
        }
    }

    /// eRPC: ~850 ns total for a small RPC (the paper's §IX-A figure).
    pub fn erpc() -> Self {
        StackModel {
            kind: StackKind::Erpc,
            rx_base: SimDuration::from_ns(500),
            tx_base: SimDuration::from_ns(290),
            ns_per_byte: 0.2,
        }
    }

    /// nanoRPC: hardware-terminated, ~40 ns total.
    pub fn nano_rpc() -> Self {
        StackModel {
            kind: StackKind::NanoRpc,
            rx_base: SimDuration::from_ns(25),
            tx_base: SimDuration::from_ns(15),
            ns_per_byte: 0.0,
        }
    }

    /// Receive-path processing time for a `bytes`-byte request.
    pub fn rx(&self, bytes: u32) -> SimDuration {
        self.rx_base + SimDuration::from_ns_f64(bytes as f64 * self.ns_per_byte)
    }

    /// Transmit-path processing time for a `bytes`-byte response.
    pub fn tx(&self, bytes: u32) -> SimDuration {
        self.tx_base + SimDuration::from_ns_f64(bytes as f64 * self.ns_per_byte)
    }

    /// Total on-CPU processing (rx + tx) for a request/response pair of the
    /// given sizes — the "Processing" bar of Fig. 1.
    pub fn round_trip(&self, req_bytes: u32, resp_bytes: u32) -> SimDuration {
        self.rx(req_bytes) + self.tx(resp_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_ordering_matches_fig1() {
        // Fig. 1: TCP/IP >> eRPC >> nanoRPC for a 300B request.
        let tcp = StackModel::tcp_ip().round_trip(300, 64);
        let erpc = StackModel::erpc().round_trip(300, 64);
        let nano = StackModel::nano_rpc().round_trip(300, 64);
        assert!(tcp > erpc && erpc > nano);
        assert!(tcp.as_us_f64() > 10.0, "TCP/IP should be 10s of us");
        assert!(
            (0.5..2.0).contains(&erpc.as_us_f64()),
            "eRPC ~850ns+payload, got {erpc}"
        );
        assert!(nano.as_ns_f64() <= 50.0, "nanoRPC ~40ns, got {nano}");
    }

    #[test]
    fn erpc_small_rpc_near_850ns() {
        // A small (64B/64B) RPC should be within ~10% of the published 850ns.
        let t = StackModel::erpc().round_trip(64, 64).as_ns_f64();
        assert!((t - 850.0).abs() / 850.0 < 0.1, "erpc={t}ns");
    }

    #[test]
    fn payload_size_monotone() {
        let s = StackModel::erpc();
        assert!(s.rx(1024) > s.rx(64));
        assert_eq!(
            StackModel::nano_rpc().rx(64),
            StackModel::nano_rpc().rx(2048),
            "nanoRPC is size-independent (DMA into register file)"
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(StackKind::TcpIp.to_string(), "TCP/IP");
        assert_eq!(StackKind::Erpc.to_string(), "eRPC");
        assert_eq!(StackKind::NanoRpc.to_string(), "nanoRPC");
    }
}
