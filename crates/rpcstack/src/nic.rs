//! NIC models: on-NIC processing, steering policies and NIC→core transfer
//! mechanisms.
//!
//! The paper's NIC constants (§VII-B): Ethernet MAC + serial I/O + transport
//! interpretation ≈ 30 ns total on hardware-terminated NICs; RSS spreads
//! requests across per-core queues by connection hash; JBSQ NICs (Nebula /
//! nanoPU) push requests to cores whose local queue has < n entries.

use crate::stack::StackKind;
use interconnect::offchip::{MemoryModel, Pcie};
use rand::Rng;
use simcore::time::SimDuration;
use workload::request::ConnectionId;

/// Fixed on-NIC packet handling cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicModel {
    /// MAC + serial I/O + transport interpretation (paper: ~30 ns).
    pub mac_delay: SimDuration,
}

impl Default for NicModel {
    fn default() -> Self {
        NicModel {
            mac_delay: SimDuration::from_ns(30),
        }
    }
}

/// How request descriptors/payloads move from the NIC to a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transfer {
    /// Commodity discrete NIC over PCIe (200–800 ns size-dependent).
    Pcie(Pcie),
    /// Integrated NIC writing through the shared LLC (RPCValet / Nebula):
    /// a remote-cache access per message.
    Coherent(MemoryModel),
    /// nanoPU-style direct write into the core's register file.
    RegisterFile {
        /// Fixed per-message latency (a handful of ns).
        latency: SimDuration,
    },
}

impl Transfer {
    /// Default PCIe transfer.
    pub fn pcie() -> Self {
        Transfer::Pcie(Pcie::default())
    }

    /// Default cache-coherent integrated-NIC transfer.
    pub fn coherent() -> Self {
        Transfer::Coherent(MemoryModel::default())
    }

    /// Default register-file transfer (5 ns).
    pub fn register_file() -> Self {
        Transfer::RegisterFile {
            latency: SimDuration::from_ns(5),
        }
    }

    /// Latency to move a `bytes`-byte message NIC→core.
    pub fn latency(&self, bytes: u32) -> SimDuration {
        match self {
            Transfer::Pcie(p) => p.transfer(bytes),
            Transfer::Coherent(m) => m.remote_cache,
            Transfer::RegisterFile { latency } => *latency,
        }
    }

    /// The transfer used by convention with each RPC stack: TCP/IP and eRPC
    /// ride commodity PCIe NICs; nanoRPC implies the register-file path.
    pub fn for_stack(kind: StackKind) -> Self {
        match kind {
            StackKind::TcpIp | StackKind::Erpc => Transfer::pcie(),
            StackKind::NanoRpc => Transfer::register_file(),
        }
    }
}

/// NIC steering policy: which receive queue gets an arriving request.
/// These are the three policies compared in Fig. 9.
#[derive(Debug, Clone)]
pub enum Steering {
    /// RSS: hash the connection id to a queue (sticky per connection).
    ConnectionHash,
    /// Uniform random queue per packet.
    Random,
    /// Round-robin across queues.
    RoundRobin {
        /// Next queue to use.
        next: usize,
    },
}

impl Steering {
    /// Creates RSS connection-hash steering.
    pub fn rss() -> Self {
        Steering::ConnectionHash
    }

    /// Creates random steering.
    pub fn random() -> Self {
        Steering::Random
    }

    /// Creates round-robin steering.
    pub fn round_robin() -> Self {
        Steering::RoundRobin { next: 0 }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Steering::ConnectionHash => "connection",
            Steering::Random => "random",
            Steering::RoundRobin { .. } => "round-robin",
        }
    }

    /// Picks the destination queue among `queues` for a request on `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn steer<R: Rng + ?Sized>(
        &mut self,
        conn: ConnectionId,
        queues: usize,
        rng: &mut R,
    ) -> usize {
        assert!(queues > 0, "need at least one receive queue");
        match self {
            Steering::ConnectionHash => {
                // Toeplitz-ish: a cheap integer hash of the connection id,
                // fixed for the lifetime of the connection like real RSS.
                let mut h = conn.0 as u64;
                h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 29;
                h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                (h % queues as u64) as usize
            }
            Steering::Random => rng.random_range(0..queues),
            Steering::RoundRobin { next } => {
                let q = *next % queues;
                *next = (*next + 1) % queues;
                q
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn transfer_latencies_ordered() {
        let pcie = Transfer::pcie().latency(300);
        let coh = Transfer::coherent().latency(300);
        let reg = Transfer::register_file().latency(300);
        assert!(pcie > coh, "PCIe slower than coherent NIC");
        assert!(coh > reg, "coherent slower than register file");
        assert_eq!(coh, SimDuration::from_ns(35)); // 70 cycles @ 2GHz
    }

    #[test]
    fn stack_transfer_convention() {
        assert!(matches!(
            Transfer::for_stack(StackKind::Erpc),
            Transfer::Pcie(_)
        ));
        assert!(matches!(
            Transfer::for_stack(StackKind::NanoRpc),
            Transfer::RegisterFile { .. }
        ));
    }

    #[test]
    fn rss_is_sticky_per_connection() {
        let mut s = Steering::rss();
        let mut rng = StdRng::seed_from_u64(0);
        let q1 = s.steer(ConnectionId(42), 16, &mut rng);
        let q2 = s.steer(ConnectionId(42), 16, &mut rng);
        assert_eq!(q1, q2, "RSS must steer a connection consistently");
    }

    #[test]
    fn rss_spreads_connections() {
        let mut s = Steering::rss();
        let mut rng = StdRng::seed_from_u64(0);
        let mut used = std::collections::HashSet::new();
        for c in 0..256 {
            used.insert(s.steer(ConnectionId(c), 16, &mut rng));
        }
        assert_eq!(used.len(), 16, "256 connections should cover all 16 queues");
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = Steering::round_robin();
        let mut rng = StdRng::seed_from_u64(0);
        let picks: Vec<usize> = (0..8)
            .map(|_| s.steer(ConnectionId(0), 4, &mut rng))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn random_steering_in_range() {
        let mut s = Steering::random();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(s.steer(ConnectionId(0), 7, &mut rng) < 7);
        }
    }

    #[test]
    fn nic_default_mac_delay() {
        assert_eq!(NicModel::default().mac_delay, SimDuration::from_ns(30));
    }

    #[test]
    fn steering_labels() {
        assert_eq!(Steering::rss().label(), "connection");
        assert_eq!(Steering::random().label(), "random");
        assert_eq!(Steering::round_robin().label(), "round-robin");
    }
}
