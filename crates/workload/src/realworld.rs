//! "Real-world" traffic synthesis (paper §VII-B substitution).
//!
//! The paper drives its end-to-end experiments with arrival patterns from a
//! regression model trained on Microsoft Azure / Huawei Cloud traces
//! [Bergsma et al., SOSP'21]; that model and its data are proprietary. The
//! behaviours the evaluation actually depends on are (a) burstiness beyond
//! Poisson and (b) *temporal imbalance*: different connections/queues peak
//! at different times (Fig. 9), which static schedulers cannot follow.
//!
//! [`clustered_bursty`] reproduces both: it splits connections into
//! clusters, gives each cluster an independent [`MmppProcess`] phase, and
//! merges the streams. Aggregate load matches the target while individual
//! receive queues see desynchronized bursts.

use crate::arrival::MmppProcess;
use crate::dist::ServiceDistribution;
use crate::trace::{Trace, TraceBuilder};
use simcore::rng::derive_seed;

/// Builds a bursty, temporally-imbalanced trace: `clusters` independent
/// MMPP streams, each owning `connections_per_cluster` distinct connections,
/// merged by arrival time.
///
/// `total_rate` is the long-run aggregate rate (requests/second); each
/// cluster runs at `total_rate / clusters` with its own burst phase.
///
/// # Panics
///
/// Panics if `clusters` is zero or the per-cluster request share is zero.
///
/// # Examples
///
/// ```
/// use workload::realworld::clustered_bursty;
/// use workload::ServiceDistribution;
/// use simcore::time::SimDuration;
///
/// let dist = ServiceDistribution::Fixed(SimDuration::from_ns(850));
/// let trace = clustered_bursty(dist, 10.0e6, 8, 16, 8_000, 42);
/// assert_eq!(trace.len(), 8_000);
/// ```
pub fn clustered_bursty(
    dist: ServiceDistribution,
    total_rate: f64,
    clusters: u32,
    connections_per_cluster: u32,
    n_requests: usize,
    seed: u64,
) -> Trace {
    assert!(clusters > 0, "need at least one cluster");
    assert!(total_rate > 0.0);
    let per_cluster = n_requests / clusters as usize;
    assert!(per_cluster > 0, "too few requests for {clusters} clusters");
    let mut parts = Vec::with_capacity(clusters as usize);
    for c in 0..clusters {
        let proc = MmppProcess::bursty(total_rate / clusters as f64);
        let t = TraceBuilder::new(proc, dist)
            .requests(per_cluster)
            .connections(connections_per_cluster)
            .connection_offset(c * connections_per_cluster)
            .seed(derive_seed(seed, c as u64 + 1))
            .build();
        parts.push(t);
    }
    Trace::merge(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    fn dist() -> ServiceDistribution {
        ServiceDistribution::Fixed(SimDuration::from_ns(850))
    }

    #[test]
    fn aggregate_rate_near_target() {
        let t = clustered_bursty(dist(), 20e6, 8, 8, 160_000, 1);
        let measured = t.measured_rate();
        assert!(
            (measured - 20e6).abs() / 20e6 < 0.25,
            "rate={measured:.0} (clusters drift independently, wide tolerance)"
        );
    }

    #[test]
    fn connections_are_disjoint_per_cluster() {
        let t = clustered_bursty(dist(), 5e6, 4, 10, 4_000, 2);
        // All connections in [0, 40); each cluster's in its own decade.
        assert!(t.iter().all(|r| r.conn.0 < 40));
        let mut per_cluster = [false; 4];
        for r in t.iter() {
            per_cluster[(r.conn.0 / 10) as usize] = true;
        }
        assert!(per_cluster.iter().all(|&b| b), "every cluster contributes");
    }

    #[test]
    fn ids_sequential_in_arrival_order() {
        let t = clustered_bursty(dist(), 5e6, 4, 4, 4_000, 3);
        for (i, r) in t.iter().enumerate() {
            assert_eq!(r.id.0, i as u64);
        }
        for w in t.requests().windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn clusters_desynchronized() {
        // Within short windows, per-cluster counts should differ wildly at
        // least some of the time (temporal imbalance).
        let t = clustered_bursty(dist(), 50e6, 4, 4, 200_000, 4);
        let window = SimDuration::from_us(20);
        let mut max_imbalance = 0.0f64;
        let mut w_end = window;
        let mut counts = [0u32; 4];
        for r in t.iter() {
            while r.arrival.as_ps() > w_end.as_ps() {
                let total: u32 = counts.iter().sum();
                if total > 20 {
                    let max = *counts.iter().max().unwrap() as f64;
                    let min = *counts.iter().min().unwrap() as f64;
                    max_imbalance = max_imbalance.max((max - min) / (total as f64 / 4.0));
                }
                counts = [0; 4];
                w_end += window;
            }
            counts[(r.conn.0 / 4) as usize % 4] += 1;
        }
        assert!(
            max_imbalance > 0.5,
            "clusters should burst out of phase (imbalance={max_imbalance})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn rejects_zero_clusters() {
        clustered_bursty(dist(), 1e6, 0, 4, 100, 0);
    }
}
