//! Request arrival processes.
//!
//! The paper generates (a) Poisson synthetic traces and (b) "real-world"
//! traffic from a regression model trained on public-cloud traces [Bergsma
//! et al., SOSP'21]. That model and its training data are proprietary, so —
//! per the substitution documented in `DESIGN.md` — real-world traffic is
//! modeled as a Markov-modulated Poisson process ([`MmppProcess`]) whose
//! bursts and rate dispersion exercise the same adaptive-scheduling paths.

use crate::dist::sample_exponential;
use rand::Rng;
use simcore::time::SimDuration;

/// A stochastic process producing inter-arrival gaps.
///
/// Implementors are deterministic given the RNG stream, which keeps full
/// simulations reproducible.
pub trait ArrivalProcess {
    /// Draws the gap between the previous arrival and the next one.
    fn next_gap<R: Rng + ?Sized>(&mut self, rng: &mut R) -> SimDuration;

    /// Long-run average arrival rate, in requests per second.
    fn mean_rate(&self) -> f64;
}

/// Poisson arrivals at a fixed rate.
///
/// # Examples
///
/// ```
/// use workload::arrival::{ArrivalProcess, PoissonProcess};
/// use rand::SeedableRng;
///
/// let mut p = PoissonProcess::new(1_000_000.0); // 1 MRPS
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let gap = p.next_gap(&mut rng);
/// assert!(gap.as_ns_f64() > 0.0);
/// assert_eq!(p.mean_rate(), 1_000_000.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PoissonProcess {
    rate_per_sec: f64,
}

impl PoissonProcess {
    /// Creates a Poisson process with the given rate (requests/second).
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not strictly positive and finite.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive, got {rate_per_sec}"
        );
        PoissonProcess { rate_per_sec }
    }

    /// The rate at which a `k`-server system with mean service time `mean_service`
    /// is offered `load` (load = λ·E\[S\]/k).
    pub fn rate_for_load(load: f64, servers: usize, mean_service: SimDuration) -> f64 {
        assert!(load > 0.0, "load must be positive");
        assert!(servers > 0, "need at least one server");
        let s = mean_service.as_secs_f64();
        assert!(s > 0.0, "mean service time must be positive");
        load * servers as f64 / s
    }
}

impl ArrivalProcess for PoissonProcess {
    fn next_gap<R: Rng + ?Sized>(&mut self, rng: &mut R) -> SimDuration {
        SimDuration::from_ns_f64(sample_exponential(rng) / self.rate_per_sec * 1e9)
    }

    fn mean_rate(&self) -> f64 {
        self.rate_per_sec
    }
}

/// Deterministic (paced) arrivals with a constant gap — the smoothest
/// possible traffic, useful as a control.
#[derive(Debug, Clone, Copy)]
pub struct DeterministicProcess {
    gap: SimDuration,
}

impl DeterministicProcess {
    /// Creates a paced process with the given constant gap.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is zero.
    pub fn new(gap: SimDuration) -> Self {
        assert!(!gap.is_zero(), "gap must be positive");
        DeterministicProcess { gap }
    }
}

impl ArrivalProcess for DeterministicProcess {
    fn next_gap<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> SimDuration {
        self.gap
    }

    fn mean_rate(&self) -> f64 {
        1.0 / self.gap.as_secs_f64()
    }
}

/// One state of an [`MmppProcess`].
#[derive(Debug, Clone, Copy)]
pub struct MmppState {
    /// Poisson rate while in this state (requests/second).
    pub rate_per_sec: f64,
    /// Mean dwell time in this state before transitioning.
    pub mean_dwell: SimDuration,
}

/// A Markov-modulated Poisson process: the arrival rate switches among a set
/// of states with exponentially-distributed dwell times. This is the
/// "real-world traffic" substitute — states with widely different rates
/// produce the bursty, non-stationary pattern that breaks statically-tuned
/// schedulers (paper §VII-B, Fig. 13).
#[derive(Debug, Clone)]
pub struct MmppProcess {
    states: Vec<MmppState>,
    current: usize,
    /// Simulated time left before the next state transition.
    remaining_dwell: SimDuration,
}

impl MmppProcess {
    /// Creates an MMPP starting in state 0.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or any rate/dwell is non-positive.
    pub fn new(states: Vec<MmppState>) -> Self {
        assert!(!states.is_empty(), "MMPP needs at least one state");
        for s in &states {
            assert!(s.rate_per_sec > 0.0, "state rate must be positive");
            assert!(!s.mean_dwell.is_zero(), "state dwell must be positive");
        }
        MmppProcess {
            states,
            current: 0,
            remaining_dwell: SimDuration::ZERO,
        }
    }

    /// The paper-style bursty pattern around a target mean rate: a baseline
    /// state, a 1.8× burst and a 0.5× lull with tens-of-µs dwells, so a
    /// multi-millisecond run sees many phase changes. Bursts briefly exceed
    /// a system provisioned for the mean (stressing adaptive scheduling)
    /// without creating sustained overload that no scheduler could serve.
    pub fn bursty(mean_rate_per_sec: f64) -> Self {
        assert!(mean_rate_per_sec > 0.0);
        // Dwell weights chosen so the long-run mean equals mean_rate_per_sec:
        // states (r, w): (1.0x, .5), (1.8x, .2), (0.5x, .3) -> mean
        // multiplier = .5 + .36 + .15 = 1.01; normalize.
        let norm = 1.01;
        let mk = |mult: f64, dwell_us: u64| MmppState {
            rate_per_sec: mean_rate_per_sec * mult / norm,
            mean_dwell: SimDuration::from_us(dwell_us),
        };
        MmppProcess::new(vec![mk(1.0, 50), mk(1.8, 20), mk(0.5, 30)])
    }

    /// Index of the current state (for tests/telemetry).
    pub fn current_state(&self) -> usize {
        self.current
    }

    fn advance_state<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.states.len();
        if n > 1 {
            // Uniform jump to a different state.
            let step = rng.random_range(1..n);
            self.current = (self.current + step) % n;
        }
        let dwell = self.states[self.current].mean_dwell.as_ns_f64();
        self.remaining_dwell = SimDuration::from_ns_f64(sample_exponential(rng) * dwell);
    }
}

impl ArrivalProcess for MmppProcess {
    fn next_gap<R: Rng + ?Sized>(&mut self, rng: &mut R) -> SimDuration {
        let mut total = SimDuration::ZERO;
        loop {
            if self.remaining_dwell.is_zero() {
                self.advance_state(rng);
            }
            let rate = self.states[self.current].rate_per_sec;
            let candidate = SimDuration::from_ns_f64(sample_exponential(rng) / rate * 1e9);
            if candidate <= self.remaining_dwell {
                self.remaining_dwell = self.remaining_dwell.saturating_sub(candidate);
                return total + candidate;
            }
            // No arrival before the state switch: burn the dwell and retry in
            // the next state (memorylessness makes this exact).
            total += self.remaining_dwell;
            self.remaining_dwell = SimDuration::ZERO;
        }
    }

    fn mean_rate(&self) -> f64 {
        // Long-run: dwell-weighted mean (uniform jump chain => stationary
        // distribution proportional to mean dwell).
        let total_dwell: f64 = self.states.iter().map(|s| s.mean_dwell.as_ns_f64()).sum();
        self.states
            .iter()
            .map(|s| s.rate_per_sec * s.mean_dwell.as_ns_f64() / total_dwell)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn measured_rate<P: ArrivalProcess>(p: &mut P, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let total_ns: f64 = (0..n).map(|_| p.next_gap(&mut rng).as_ns_f64()).sum();
        n as f64 / (total_ns * 1e-9)
    }

    #[test]
    fn poisson_rate_matches() {
        let mut p = PoissonProcess::new(2_000_000.0);
        let r = measured_rate(&mut p, 200_000, 11);
        assert!((r - 2e6).abs() / 2e6 < 0.02, "rate={r}");
    }

    #[test]
    fn poisson_gaps_are_variable() {
        let mut p = PoissonProcess::new(1e6);
        let mut rng = StdRng::seed_from_u64(12);
        let gaps: Vec<f64> = (0..1000)
            .map(|_| p.next_gap(&mut rng).as_ns_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!((cv2 - 1.0).abs() < 0.2, "cv2={cv2}"); // exponential gaps
    }

    #[test]
    fn rate_for_load_formula() {
        // 64 cores, 1us mean service, load 0.5 => 32 MRPS.
        let r = PoissonProcess::rate_for_load(0.5, 64, SimDuration::from_us(1));
        assert!((r - 32e6).abs() < 1.0, "r={r}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn poisson_rejects_zero_rate() {
        PoissonProcess::new(0.0);
    }

    #[test]
    fn deterministic_is_constant() {
        let mut p = DeterministicProcess::new(SimDuration::from_ns(100));
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(p.next_gap(&mut rng), SimDuration::from_ns(100));
        }
        assert!((p.mean_rate() - 1e7).abs() < 1.0);
    }

    #[test]
    fn mmpp_long_run_rate() {
        let mut p = MmppProcess::bursty(1_000_000.0);
        let r = measured_rate(&mut p, 400_000, 13);
        let expect = p.mean_rate();
        assert!(
            (r - expect).abs() / expect < 0.08,
            "rate={r} expect={expect}"
        );
    }

    #[test]
    fn mmpp_bursty_mean_near_target() {
        let p = MmppProcess::bursty(5e6);
        let m = p.mean_rate();
        assert!((m - 5e6).abs() / 5e6 < 0.15, "mean={m}");
    }

    #[test]
    fn mmpp_switches_states() {
        let mut p = MmppProcess::bursty(1e6);
        let mut rng = StdRng::seed_from_u64(14);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50_000 {
            p.next_gap(&mut rng);
            seen.insert(p.current_state());
        }
        assert_eq!(seen.len(), 3, "all MMPP states should be visited");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Index of dispersion of counts over windows should exceed 1.
        let mut p = MmppProcess::bursty(1e6);
        let mut rng = StdRng::seed_from_u64(15);
        let window_ns = 100_000.0; // 100us
        let mut counts = Vec::new();
        let mut t = 0.0;
        let mut count = 0u64;
        for _ in 0..400_000 {
            t += p.next_gap(&mut rng).as_ns_f64();
            if t > window_ns {
                counts.push(count as f64);
                count = 0;
                t -= window_ns * (t / window_ns).floor();
            }
            count += 1;
        }
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<f64>() / n;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n;
        let iod = var / mean;
        assert!(
            iod > 1.5,
            "index of dispersion {iod} should exceed Poisson's 1"
        );
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn mmpp_rejects_empty() {
        MmppProcess::new(vec![]);
    }
}
