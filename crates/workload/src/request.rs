//! RPC request records flowing through simulated systems.

use simcore::time::{SimDuration, SimTime};
use std::fmt;

/// Unique identifier of a request within one trace/run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Network connection (flow) a request arrived on. RSS steers by connection
/// hash, so imbalance between connections becomes core imbalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnectionId(pub u32);

/// The operation a request asks for. `Generic` is used by synthetic
/// workloads; the KVS kinds drive the MICA end-to-end experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RequestKind {
    /// Synthetic request with an opaque handler.
    #[default]
    Generic,
    /// Key-value GET.
    Get,
    /// Key-value SET.
    Set,
    /// Long-running key-range SCAN.
    Scan,
}

impl RequestKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::Generic => "generic",
            RequestKind::Get => "get",
            RequestKind::Set => "set",
            RequestKind::Scan => "scan",
        }
    }
}

/// One RPC request: when it reaches the NIC, how long its handler runs, and
/// how it is classified.
///
/// The service time is pre-drawn at generation so that *every scheduler sees
/// the identical workload* — the paper's comparisons (Fig. 10, 14) depend on
/// this, and it makes runs reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Unique id within the trace.
    pub id: RequestId,
    /// Instant the request arrives at the NIC.
    pub arrival: SimTime,
    /// On-core handler execution time (excluding queueing/stack overheads).
    pub service: SimDuration,
    /// Operation class.
    pub kind: RequestKind,
    /// Originating connection (drives RSS steering).
    pub conn: ConnectionId,
    /// Wire size of the request message in bytes (drives PCIe/NoC transfer
    /// cost models). Paper: 75% of RPC requests < 512 B.
    pub size_bytes: u32,
}

impl Request {
    /// Creates a synthetic request with `Generic` kind and a 300 B payload
    /// (the message size of the paper's Fig. 1 experiment).
    pub fn synthetic(id: u64, arrival: SimTime, service: SimDuration, conn: u32) -> Self {
        Request {
            id: RequestId(id),
            arrival,
            service,
            kind: RequestKind::Generic,
            conn: ConnectionId(conn),
            size_bytes: 300,
        }
    }
}

/// Final accounting for a completed request, produced by every simulated
/// system. Latency is server-side, per §VII-B: from NIC arrival until the
/// response buffers are freed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Which request completed.
    pub id: RequestId,
    /// NIC arrival time.
    pub arrival: SimTime,
    /// Time the handler finished and buffers were freed.
    pub finish: SimTime,
    /// Core that executed the handler.
    pub core: usize,
    /// Whether the request was migrated between managers (Altocumulus only).
    pub migrated: bool,
}

impl Completion {
    /// Server-side latency: finish − arrival.
    pub fn latency(&self) -> SimDuration {
        self.finish.saturating_since(self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_finish_minus_arrival() {
        let c = Completion {
            id: RequestId(1),
            arrival: SimTime::from_ns(100),
            finish: SimTime::from_ns(350),
            core: 3,
            migrated: false,
        };
        assert_eq!(c.latency(), SimDuration::from_ns(250));
    }

    #[test]
    fn synthetic_defaults() {
        let r = Request::synthetic(7, SimTime::from_ns(5), SimDuration::from_ns(500), 2);
        assert_eq!(r.id, RequestId(7));
        assert_eq!(r.kind, RequestKind::Generic);
        assert_eq!(r.size_bytes, 300);
        assert_eq!(r.conn, ConnectionId(2));
    }

    #[test]
    fn kind_labels() {
        assert_eq!(RequestKind::Get.label(), "get");
        assert_eq!(RequestKind::Scan.label(), "scan");
        assert_eq!(RequestKind::default(), RequestKind::Generic);
    }

    #[test]
    fn ids_order() {
        assert!(RequestId(1) < RequestId(2));
        assert_eq!(RequestId(3).to_string(), "req#3");
    }
}
